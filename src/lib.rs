//! # sac-repro — umbrella crate
//!
//! Re-exports every crate of the reproduction of *"Scalable Linear Algebra
//! Programming for Big Data Analysis"* (Fegaras, EDBT 2021) so examples and
//! integration tests can `use sac_repro::...`.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use comp;
pub use diablo;
pub use mllib;
pub use planner;
pub use sac;
pub use service;
pub use sparkline;
pub use tiled;
