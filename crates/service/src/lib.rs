//! # service — a multi-tenant query service over one shared runtime
//!
//! The paper's programming model compiles comprehensions per query; this
//! crate is the serving layer above it: one [`QueryService`] hosts many
//! concurrent tenant sessions over a *single* [`sparkline::Context`]
//! (one executor pool, one block manager), providing
//!
//! * **admission control** — a [`sparkline::FairScheduler`] caps concurrent
//!   jobs and orders waiters by weighted virtual time, so a noisy neighbor
//!   queues behind well-behaved tenants instead of monopolizing the pool;
//! * **per-tenant memory quotas** — persisted blocks computed inside a
//!   tenant's jobs are attributed to the tenant by the block manager and
//!   evicted against the tenant's own budget first
//!   ([`QueryService::set_tenant_quota`]);
//! * **cooperative cancellation** — every job carries a
//!   [`sparkline::CancelToken`] checked at task boundaries; cancelling frees
//!   the admission slot and (once the tenant is idle) the tenant's cached
//!   blocks;
//! * **a plan cache** — queries are canonicalized ([`canon::canonicalize`]:
//!   normalization, commutative-generator reordering, alpha-renaming) and
//!   keyed together with the versions of the bindings they read, so
//!   alpha-equivalent queries over unchanged data reuse one compiled plan
//!   across sessions;
//! * **shared read-only datasets** — arrays registered with
//!   [`QueryService::register_shared_matrix`] are persisted once and handed
//!   to every session as zero-copy `Arc` views of the same cached blocks.
//!
//! [`net`] adds a line-oriented TCP protocol (`RUN` / `CANCEL` / `STATUS`)
//! so external closed-loop clients can drive the service.

pub mod canon;
pub mod net;

use planner::{DistArray, ExecResult};
use sac::Session;
use sparkline::{panic_is_cancelled, CancelToken, Context, Event, FairScheduler};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use tiled::LocalMatrix;

/// Errors surfaced to service clients.
#[derive(Debug)]
pub enum ServiceError {
    /// Parse, type, plan, or execution error from the compiler pipeline.
    Comp(comp::CompError),
    /// A tenant tried to (re)bind a name owned by the shared catalog, or a
    /// shared registration collided with an existing tenant-private name.
    SharedNameConflict(String),
    /// `cancel` named a tenant the service has never seen.
    UnknownTenant(String),
    /// `cancel` named a job that is not currently running.
    UnknownJob { tenant: String, job: u64 },
    /// The job was cancelled before it produced a result.
    Cancelled { tenant: String, job: u64 },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Comp(e) => write!(f, "{e}"),
            ServiceError::SharedNameConflict(name) => {
                write!(f, "name '{name}' conflicts with the shared catalog")
            }
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ServiceError::UnknownJob { tenant, job } => {
                write!(f, "tenant '{tenant}' has no running job {job}")
            }
            ServiceError::Cancelled { tenant, job } => {
                write!(f, "job {job} of tenant '{tenant}' was cancelled")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<comp::CompError> for ServiceError {
    fn from(e: comp::CompError) -> Self {
        ServiceError::Comp(e)
    }
}

/// The answer to one query.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Service-level job id (the handle `cancel` takes).
    pub job: u64,
    /// `"matrix"`, `"vector"`, or `"value"`.
    pub kind: String,
    /// Result dimensions (`rows = len, cols = 1` for vectors; `0 × 0` for
    /// driver-side values).
    pub rows: i64,
    pub cols: i64,
    /// Order-insensitive-free FNV-1a over the result's element bit patterns:
    /// equal fingerprints ⇔ bit-identical results, the property the load
    /// generator checks between solo and contended runs.
    pub fingerprint: u64,
    /// Rendered driver-side value, when `kind == "value"`.
    pub value: Option<String>,
    /// Wall-clock of planning-free execution (admission to result).
    pub wall_micros: u64,
    /// Wall-clock spent queued before admission.
    pub queue_micros: u64,
    /// Did the plan come from the cache?
    pub cache_hit: bool,
}

impl QueryReply {
    /// One-line JSON encoding for the wire protocol.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"job\":{},\"kind\":\"{}\",\"rows\":{},\"cols\":{},\"fingerprint\":{},\
             \"wall_micros\":{},\"queue_micros\":{},\"cache_hit\":{}",
            self.job,
            self.kind,
            self.rows,
            self.cols,
            self.fingerprint,
            self.wall_micros,
            self.queue_micros,
            self.cache_hit
        );
        if let Some(v) = &self.value {
            out.push_str(&format!(",\"value\":\"{}\"", escape_json(v)));
        }
        out.push('}');
        out
    }
}

/// Escape a string for embedding in a JSON literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for [`QueryService`].
pub struct ServiceBuilder {
    context: Option<Context>,
    workers: usize,
    executors: Option<usize>,
    storage_memory: Option<usize>,
    slots: Option<usize>,
    partitions: usize,
    tile_threads: usize,
    broadcast_budget: Option<u64>,
    chaos: Option<sparkline::ChaosPlan>,
    chaos_off: bool,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            context: None,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            executors: None,
            storage_memory: None,
            slots: None,
            partitions: 0,
            tile_threads: 1,
            broadcast_budget: None,
            chaos: None,
            chaos_off: false,
        }
    }
}

impl ServiceBuilder {
    /// Serve over an *existing* runtime context; the runtime-level knobs on
    /// this builder are then ignored.
    pub fn context(mut self, ctx: Context) -> Self {
        self.context = Some(ctx);
        self
    }

    /// Executor threads of the shared runtime.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Logical executors (fault domains) of the shared runtime.
    pub fn executors(mut self, n: usize) -> Self {
        self.executors = Some(n);
        self
    }

    /// Storage-memory budget (bytes) of the shared block manager.
    pub fn storage_memory(mut self, bytes: usize) -> Self {
        self.storage_memory = Some(bytes);
        self
    }

    /// Concurrently admitted jobs (default: the executor count).
    pub fn slots(mut self, n: usize) -> Self {
        self.slots = Some(n.max(1));
        self
    }

    /// Shuffle partition count for tenant sessions (0 = autotune).
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Threads per tile kernel for tenant sessions.
    pub fn tile_threads(mut self, n: usize) -> Self {
        self.tile_threads = n.max(1);
        self
    }

    /// Broadcast budget for tenant sessions.
    pub fn broadcast_budget(mut self, bytes: u64) -> Self {
        self.broadcast_budget = Some(bytes);
        self
    }

    /// Run the shared runtime under an explicit chaos schedule.
    pub fn chaos(mut self, plan: sparkline::ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self.chaos_off = false;
        self
    }

    /// Disable fault injection even when `SPARKLINE_CHAOS` is set.
    pub fn chaos_off(mut self) -> Self {
        self.chaos = None;
        self.chaos_off = true;
        self
    }

    pub fn build(self) -> QueryService {
        let ctx = match self.context {
            Some(ctx) => ctx,
            None => {
                let mut cb = Context::builder().workers(self.workers);
                if let Some(n) = self.executors {
                    cb = cb.executors(n);
                }
                if let Some(bytes) = self.storage_memory {
                    cb = cb.storage_memory(bytes);
                }
                if let Some(plan) = self.chaos {
                    cb = cb.chaos(plan);
                } else if self.chaos_off {
                    cb = cb.chaos_off();
                }
                cb.build()
            }
        };
        let slots = self.slots.unwrap_or_else(|| ctx.executors().max(1));
        let mut shared = Session::builder().context(ctx.clone()).build();
        shared.config_mut().partitions = self.partitions;
        shared.config_mut().tile_threads = self.tile_threads;
        if let Some(b) = self.broadcast_budget {
            shared.config_mut().broadcast_budget = b;
        }
        QueryService {
            inner: Arc::new(Inner {
                ctx,
                scheduler: FairScheduler::new(slots),
                state: Mutex::new(ServiceState {
                    shared,
                    shared_versions: HashMap::new(),
                    shared_scalars: HashSet::new(),
                    tenants: HashMap::new(),
                    plan_cache: HashMap::new(),
                }),
                next_job: AtomicU64::new(1),
                next_tenant: AtomicU32::new(1),
                next_version: AtomicU64::new(1),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
            }),
        }
    }
}

struct Tenant {
    id: u32,
    session: Session,
    /// Version of each tenant-private array binding (bumped on rebind, so
    /// stale plan-cache keys stop matching).
    versions: HashMap<String, u64>,
    /// Cancellation tokens of this tenant's in-flight jobs, by job id.
    running: HashMap<u64, CancelToken>,
}

struct ServiceState {
    /// The shared catalog: a session whose bindings every tenant inherits.
    shared: Session,
    /// Version of each shared array binding.
    shared_versions: HashMap<String, u64>,
    /// Names of shared scalars (their values live in the shared session).
    shared_scalars: HashSet<String>,
    tenants: HashMap<String, Tenant>,
    /// Compiled plans keyed on canonical query text + binding fingerprints.
    plan_cache: HashMap<String, Arc<planner::Planned>>,
}

struct Inner {
    ctx: Context,
    scheduler: Arc<FairScheduler>,
    state: Mutex<ServiceState>,
    next_job: AtomicU64,
    next_tenant: AtomicU32,
    next_version: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// The service handle. Cloning shares the service; clones are how server
/// threads and submitted jobs reach the shared state.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<Inner>,
}

/// A job started with [`QueryService::submit`]: cancellable while running,
/// joinable for the result.
pub struct JobHandle {
    job: u64,
    tenant: String,
    token: CancelToken,
    thread: std::thread::JoinHandle<Result<QueryReply, ServiceError>>,
}

impl JobHandle {
    /// Service-level job id (what `CANCEL` takes over the wire).
    pub fn job(&self) -> u64 {
        self.job
    }

    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Request cooperative cancellation; the job observes it at its next
    /// task boundary.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Wait for the job's result.
    pub fn wait(self) -> Result<QueryReply, ServiceError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(cause) => resume_unwind(cause),
        }
    }
}

/// Point-in-time service counters for `STATUS` replies and the bench driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStatus {
    pub tenant: String,
    pub id: u32,
    pub running_jobs: Vec<u64>,
    pub memory_used: u64,
    pub quota: Option<u64>,
}

#[derive(Debug, Clone)]
pub struct ServiceStatus {
    pub slots: usize,
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    pub plan_cache_entries: usize,
    pub memory_used: u64,
    pub budget: Option<u64>,
    pub tenants: Vec<TenantStatus>,
}

impl ServiceStatus {
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                let jobs: Vec<String> = t.running_jobs.iter().map(u64::to_string).collect();
                format!(
                    "{{\"tenant\":\"{}\",\"id\":{},\"running\":[{}],\"memory_used\":{},\"quota\":{}}}",
                    escape_json(&t.tenant),
                    t.id,
                    jobs.join(","),
                    t.memory_used,
                    t.quota.map_or("null".into(), |q| q.to_string())
                )
            })
            .collect();
        format!(
            "{{\"slots\":{},\"plan_cache\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},\
             \"storage\":{{\"memory_used\":{},\"budget\":{}}},\"tenants\":[{}]}}",
            self.slots,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_entries,
            self.memory_used,
            self.budget.map_or("null".into(), |b| b.to_string()),
            tenants.join(",")
        )
    }
}

impl Default for QueryService {
    fn default() -> Self {
        QueryService::builder().build()
    }
}

impl QueryService {
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The shared runtime context all sessions execute on.
    pub fn context(&self) -> &Context {
        &self.inner.ctx
    }

    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn next_version(&self) -> u64 {
        self.inner.next_version.fetch_add(1, Ordering::SeqCst)
    }

    /// Get-or-create the tenant entry, inheriting the shared catalog.
    fn tenant_entry<'a>(&self, st: &'a mut ServiceState, name: &str) -> &'a mut Tenant {
        if !st.tenants.contains_key(name) {
            let id = self.inner.next_tenant.fetch_add(1, Ordering::SeqCst);
            let mut session = Session::builder().context(self.inner.ctx.clone()).build();
            *session.config_mut() = st.shared.config().clone();
            for shared_name in st.shared_versions.keys() {
                if let Some(a) = st.shared.env().array(shared_name).cloned() {
                    let stats = st.shared.env().stats(shared_name).copied();
                    session.env_mut().set_array(shared_name.clone(), a);
                    if let Some(s) = stats {
                        session.env_mut().set_stats(shared_name.clone(), s);
                    }
                }
            }
            for scalar in &st.shared_scalars {
                if let Some(v) = st.shared.env().scalar(scalar).cloned() {
                    session.env_mut().set_scalar(scalar.clone(), v);
                }
            }
            st.tenants.insert(
                name.to_string(),
                Tenant {
                    id,
                    session,
                    versions: HashMap::new(),
                    running: HashMap::new(),
                },
            );
        }
        st.tenants.get_mut(name).unwrap()
    }

    /// Relative admission share of a tenant (default 1; higher = more pool
    /// time under contention).
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) {
        let mut st = self.lock();
        let id = self.tenant_entry(&mut st, tenant).id;
        drop(st);
        self.inner.scheduler.set_weight(id, weight);
    }

    /// Per-tenant cap on bytes of cached blocks attributed to the tenant.
    pub fn set_tenant_quota(&self, tenant: &str, bytes: usize) {
        let mut st = self.lock();
        let id = self.tenant_entry(&mut st, tenant).id;
        drop(st);
        self.inner.ctx.storage().set_tenant_quota(id, bytes);
    }

    /// Runtime tenant id (block-manager attribution key) of a tenant.
    pub fn tenant_id(&self, tenant: &str) -> u32 {
        let mut st = self.lock();
        self.tenant_entry(&mut st, tenant).id
    }

    /// Register a shared read-only matrix: ingested once, persisted through
    /// the shared block manager, and bound (as an `Arc` view of the same
    /// cached blocks) into every current and future tenant session.
    pub fn register_shared_matrix(
        &self,
        name: impl Into<String>,
        m: &LocalMatrix,
        tile_size: usize,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        let mut st = self.lock();
        if st.tenants.values().any(|t| t.versions.contains_key(&name)) {
            return Err(ServiceError::SharedNameConflict(name));
        }
        st.shared.register_local_matrix(name.clone(), m, tile_size);
        st.shared.persist(&name);
        st.shared_versions.insert(name.clone(), self.next_version());
        let array = st.shared.env().array(&name).cloned();
        let stats = st.shared.env().stats(&name).copied();
        for t in st.tenants.values_mut() {
            if let Some(a) = array.clone() {
                t.session.env_mut().set_array(name.clone(), a);
            }
            if let Some(s) = stats {
                t.session.env_mut().set_stats(name.clone(), s);
            }
        }
        drop(st);
        // Materialize the persisted blocks now, on the (tenant-less) caller
        // thread: shared blocks must stay tenant-neutral so one tenant's
        // quota eviction or cancellation cleanup never drops them.
        if let Some(DistArray::Matrix(m)) = array {
            m.tiles().count();
        }
        Ok(())
    }

    /// Register a shared scalar, visible to every tenant.
    pub fn register_shared_int(&self, name: impl Into<String>, v: i64) {
        let name = name.into();
        let mut st = self.lock();
        st.shared.set_int(name.clone(), v);
        st.shared_scalars.insert(name.clone());
        for t in st.tenants.values_mut() {
            t.session.set_int(name.clone(), v);
        }
    }

    /// Register a tenant-private matrix. Rebinding bumps the binding's
    /// version, invalidating every cached plan that read the old binding.
    pub fn register_matrix_for(
        &self,
        tenant: &str,
        name: impl Into<String>,
        m: &LocalMatrix,
        tile_size: usize,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        let mut st = self.lock();
        if st.shared_versions.contains_key(&name) || st.shared_scalars.contains(&name) {
            return Err(ServiceError::SharedNameConflict(name));
        }
        let version = self.next_version();
        let t = self.tenant_entry(&mut st, tenant);
        t.session.register_local_matrix(name.clone(), m, tile_size);
        t.versions.insert(name, version);
        Ok(())
    }

    /// Bind a tenant-private integer scalar.
    pub fn set_int_for(
        &self,
        tenant: &str,
        name: impl Into<String>,
        v: i64,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        let mut st = self.lock();
        if st.shared_versions.contains_key(&name) || st.shared_scalars.contains(&name) {
            return Err(ServiceError::SharedNameConflict(name));
        }
        self.tenant_entry(&mut st, tenant).session.set_int(name, v);
        Ok(())
    }

    /// Bind a tenant-private float scalar.
    pub fn set_float_for(
        &self,
        tenant: &str,
        name: impl Into<String>,
        v: f64,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        let mut st = self.lock();
        if st.shared_versions.contains_key(&name) || st.shared_scalars.contains(&name) {
            return Err(ServiceError::SharedNameConflict(name));
        }
        self.tenant_entry(&mut st, tenant)
            .session
            .set_float(name, v);
        Ok(())
    }

    /// Mutate a tenant's planner configuration (e.g. flip elementwise
    /// fusion, pin a matmul strategy). The plan-cache key covers the full
    /// config signature, so a change here can never resurrect a plan
    /// compiled under the previous configuration.
    pub fn configure_tenant(&self, tenant: &str, f: impl FnOnce(&mut planner::plan::PlanConfig)) {
        let mut st = self.lock();
        f(self.tenant_entry(&mut st, tenant).session.config_mut());
    }

    /// Request cooperative cancellation of a running job.
    pub fn cancel(&self, tenant: &str, job: u64) -> Result<(), ServiceError> {
        let st = self.lock();
        let t = st
            .tenants
            .get(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))?;
        let token = t.running.get(&job).ok_or(ServiceError::UnknownJob {
            tenant: tenant.to_string(),
            job,
        })?;
        token.cancel();
        Ok(())
    }

    /// Plan-cache counters: `(hits, misses, entries)`.
    pub fn plan_cache_stats(&self) -> (u64, u64, usize) {
        (
            self.inner.cache_hits.load(Ordering::SeqCst),
            self.inner.cache_misses.load(Ordering::SeqCst),
            self.lock().plan_cache.len(),
        )
    }

    /// Point-in-time counters across tenants, cache, and storage.
    pub fn status(&self) -> ServiceStatus {
        let storage = self.inner.ctx.storage_status();
        let st = self.lock();
        let mut tenants: Vec<TenantStatus> = st
            .tenants
            .iter()
            .map(|(name, t)| {
                let per_tenant = storage.tenants.iter().find(|s| s.tenant == t.id);
                let mut running: Vec<u64> = t.running.keys().copied().collect();
                running.sort_unstable();
                TenantStatus {
                    tenant: name.clone(),
                    id: t.id,
                    running_jobs: running,
                    memory_used: per_tenant.map_or(0, |s| s.memory_used),
                    quota: per_tenant.and_then(|s| s.quota),
                }
            })
            .collect();
        tenants.sort_by_key(|t| t.id);
        ServiceStatus {
            slots: self.inner.scheduler.slots(),
            plan_cache_hits: self.inner.cache_hits.load(Ordering::SeqCst),
            plan_cache_misses: self.inner.cache_misses.load(Ordering::SeqCst),
            plan_cache_entries: st.plan_cache.len(),
            memory_used: storage.memory_used,
            budget: storage.budget,
            tenants,
        }
    }

    /// Run a query for a tenant, blocking until the result (or failure).
    pub fn run(&self, tenant: &str, query: &str) -> Result<QueryReply, ServiceError> {
        let (job, token) = self.register_job(tenant);
        self.run_registered(tenant, job, token, query)
    }

    /// Start a query on a background thread; the returned handle can cancel
    /// it and join its result.
    pub fn submit(&self, tenant: &str, query: &str) -> JobHandle {
        let (job, token) = self.register_job(tenant);
        let service = self.clone();
        let tenant_owned = tenant.to_string();
        let query = query.to_string();
        let thread_token = token.clone();
        let thread = std::thread::spawn(move || {
            service.run_registered(&tenant_owned, job, thread_token, &query)
        });
        JobHandle {
            job,
            tenant: tenant.to_string(),
            token,
            thread,
        }
    }

    /// Allocate a job id + cancellation token and register it as running.
    fn register_job(&self, tenant: &str) -> (u64, CancelToken) {
        let job = self.inner.next_job.fetch_add(1, Ordering::SeqCst);
        let token = CancelToken::new(tenant, job);
        let mut st = self.lock();
        self.tenant_entry(&mut st, tenant)
            .running
            .insert(job, token.clone());
        (job, token)
    }

    fn run_registered(
        &self,
        tenant: &str,
        job: u64,
        token: CancelToken,
        query: &str,
    ) -> Result<QueryReply, ServiceError> {
        let outcome = self.execute_job(tenant, job, &token, query);
        // Deregister in every outcome; a cancelled tenant going idle also
        // releases its attributed cached blocks.
        let mut st = self.lock();
        let (tid, idle) = match st.tenants.get_mut(tenant) {
            Some(t) => {
                t.running.remove(&job);
                (t.id, t.running.is_empty())
            }
            None => (0, false),
        };
        drop(st);
        match outcome {
            Outcome::Reply(reply) => Ok(reply),
            Outcome::Error(e) => Err(e),
            Outcome::Cancelled => {
                if idle {
                    self.inner.ctx.storage().remove_tenant(tid);
                }
                Err(ServiceError::Cancelled {
                    tenant: tenant.to_string(),
                    job,
                })
            }
            Outcome::Panic(cause) => resume_unwind(cause),
        }
    }

    fn execute_job(&self, tenant: &str, job: u64, token: &CancelToken, query: &str) -> Outcome {
        let expr = match comp::parse_expr(query) {
            Ok(e) => e,
            Err(e) => return Outcome::Error(e.into()),
        };
        let canon = canon::canonicalize(expr);
        let (tid, key, env, config) = {
            let mut st = self.lock();
            let tenant_entry = self.tenant_entry(&mut st, tenant);
            let tid = tenant_entry.id;
            let env = tenant_entry.session.env().clone();
            let config = tenant_entry.session.config().clone();
            let versions = tenant_entry.versions.clone();
            // Cache key: canonical text + a fingerprint per free variable.
            // Shared arrays key on their global version (cross-tenant hits);
            // tenant arrays on tenant id + version (rebind invalidates);
            // scalars on their value (plans bake dimensions in).
            let mut key = format!("{canon}");
            for v in canon.free_vars() {
                if let Some(ver) = st.shared_versions.get(&v) {
                    key.push_str(&format!("|s:{v}={ver}"));
                } else if let Some(ver) = versions.get(&v) {
                    key.push_str(&format!("|p:{tid}:{v}={ver}"));
                } else if let Some(val) = env.scalar(&v) {
                    key.push_str(&format!("|k:{v}={val:?}"));
                } else {
                    key.push_str(&format!("|u:{v}"));
                }
            }
            // The config signature must cover every knob that changes the
            // *compiled plan*, not just its execution: flipping elementwise
            // fusion (or the kernel backend via `SAC_KERNEL`) between two
            // alpha-equivalent compiles must produce distinct keys, or one
            // tenant's cached plan leaks the other configuration's kernels.
            // `adaptive` is part of the signature too so a frozen tenant
            // never shares an adaptive tenant's entry; runtime re-decisions
            // themselves are made per-execution from measured stats and are
            // never written back into this cache.
            key.push_str(&format!(
                "|c:{}:{:?}:{}:{}:{}:{}:{}:{}",
                config.partitions,
                config.matmul,
                config.broadcast_budget,
                config.tile_threads,
                config.auto_persist,
                config.fuse_eltwise,
                config.adaptive,
                tiled::kernel::signature(),
            ));
            (tid, key, env, config)
        };
        let cached = self.lock().plan_cache.get(&key).cloned();
        let (planned, cache_hit) = match cached {
            Some(planned) => {
                self.inner.cache_hits.fetch_add(1, Ordering::SeqCst);
                let key_hash = canon::key_hash(&key);
                let tenant_owned = tenant.to_string();
                self.inner.ctx.emit_event(|at| Event::PlanCacheHit {
                    tenant: tenant_owned,
                    key: key_hash,
                    at_micros: at,
                });
                (planned, true)
            }
            None => {
                self.inner.cache_misses.fetch_add(1, Ordering::SeqCst);
                let planned = match planner::plan::plan(&canon, &env, &config) {
                    Ok(p) => Arc::new(p),
                    Err(e) => return Outcome::Error(e.into()),
                };
                self.lock().plan_cache.insert(key, planned.clone());
                (planned, false)
            }
        };
        let slot = self.inner.scheduler.admit(tid);
        let queue_micros = slot.queue_micros();
        let tenant_owned = tenant.to_string();
        self.inner.ctx.emit_event(|at| Event::JobAdmitted {
            tenant: tenant_owned,
            job,
            queue_micros,
            at_micros: at,
        });
        let started = Instant::now();
        let ctx = &self.inner.ctx;
        let run_token = token.clone();
        let run = catch_unwind(AssertUnwindSafe(|| {
            ctx.scoped_tenant(tid, || {
                ctx.scoped_cancel(run_token, || {
                    let result = planner::execute(&planned, &env, ctx, &config)?;
                    result.force();
                    Ok::<ExecResult, comp::CompError>(result)
                })
            })
        }));
        let wall_micros = started.elapsed().as_micros() as u64;
        drop(slot);
        match run {
            Ok(Ok(result)) => Outcome::Reply(reply_from(
                job,
                &result,
                wall_micros,
                queue_micros,
                cache_hit,
            )),
            Ok(Err(e)) => Outcome::Error(e.into()),
            Err(cause) if panic_is_cancelled(&cause) => Outcome::Cancelled,
            Err(cause) => Outcome::Panic(cause),
        }
    }
}

enum Outcome {
    Reply(QueryReply),
    Error(ServiceError),
    Cancelled,
    Panic(Box<dyn std::any::Any + Send>),
}

/// FNV-1a over a stream of u64 words.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn reply_from(
    job: u64,
    result: &ExecResult,
    wall_micros: u64,
    queue_micros: u64,
    cache_hit: bool,
) -> QueryReply {
    let (kind, rows, cols, fingerprint, value) = match result {
        ExecResult::Matrix(m) => {
            let local = m.to_local();
            let fp = fnv1a(
                [local.rows as u64, local.cols as u64]
                    .into_iter()
                    .chain(local.data().iter().map(|x| x.to_bits())),
            );
            ("matrix", m.rows(), m.cols(), fp, None)
        }
        ExecResult::Vector(v) => {
            let local = v.to_local();
            let fp = fnv1a(
                [local.len() as u64, 1]
                    .into_iter()
                    .chain(local.iter().map(|x| x.to_bits())),
            );
            ("vector", v.len(), 1, fp, None)
        }
        ExecResult::Local(v) => {
            let rendered = format!("{v:?}");
            let fp = fnv1a(rendered.bytes().map(u64::from));
            ("value", 0, 0, fp, Some(rendered))
        }
    };
    QueryReply {
        job,
        kind: kind.to_string(),
        rows,
        cols,
        fingerprint,
        value,
        wall_micros,
        queue_micros,
        cache_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_service() -> QueryService {
        QueryService::builder()
            .workers(4)
            .executors(4)
            .storage_memory(64 << 20)
            .slots(2)
            .chaos_off()
            .build()
    }

    fn random_matrix(n: usize, seed: u64) -> LocalMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LocalMatrix::random(n, n, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn shared_matrix_serves_multiple_tenants_identically() {
        let svc = small_service();
        let a = random_matrix(8, 1);
        svc.register_shared_matrix("A", &a, 4).unwrap();
        svc.register_shared_int("n", 8);
        let q = "tiled(n,n)[ ((i,j), a*2.0) | ((i,j),a) <- A ]";
        let r1 = svc.run("alice", q).unwrap();
        let r2 = svc.run("bob", q).unwrap();
        assert_eq!(r1.kind, "matrix");
        assert_eq!((r1.rows, r1.cols), (8, 8));
        assert_eq!(
            r1.fingerprint, r2.fingerprint,
            "tenants over shared data must agree bit-for-bit"
        );
    }

    #[test]
    fn alpha_equivalent_queries_hit_the_plan_cache_across_tenants() {
        let svc = small_service();
        svc.register_shared_matrix("A", &random_matrix(8, 2), 4)
            .unwrap();
        svc.register_shared_int("n", 8);
        let r1 = svc
            .run("alice", "tiled(n,n)[ ((i,j), a+a) | ((i,j),a) <- A ]")
            .unwrap();
        assert!(!r1.cache_hit, "first execution must compile");
        // Alpha-renamed: same canonical key, same plan, even from another
        // tenant (the binding is shared).
        let r2 = svc
            .run("bob", "tiled(n,n)[ ((r,c), x+x) | ((r,c),x) <- A ]")
            .unwrap();
        assert!(r2.cache_hit, "alpha-renamed query must hit the cache");
        assert_eq!(r1.fingerprint, r2.fingerprint);
        let (hits, misses, entries) = svc.plan_cache_stats();
        assert_eq!((hits, misses, entries), (1, 1, 1));
    }

    #[test]
    fn fusion_config_changes_never_share_compiled_plans() {
        let svc = small_service();
        svc.register_shared_matrix("A", &random_matrix(8, 3), 4)
            .unwrap();
        svc.register_shared_matrix("B", &random_matrix(8, 4), 4)
            .unwrap();
        svc.register_shared_int("n", 8);
        let q_alice = "tiled(n,n)[ ((i,j), a + b*0.5) | ((i,j),a) <- A, ((r,c),b) <- B, \
                       r == i, c == j ]";
        // Alpha-equivalent rename, submitted by another tenant.
        let q_bob = "tiled(n,n)[ ((p,q), x + y*0.5) | ((p,q),x) <- A, ((s,t),y) <- B, \
                     s == p, t == q ]";
        let fused = svc.run("alice", q_alice).unwrap();
        assert!(!fused.cache_hit);
        // Bob compiles the same canonical query with fusion disabled: the
        // config signatures differ, so the cached fused plan must NOT be
        // shared — this is the before/after-config-change audit case.
        svc.configure_tenant("bob", |c| c.fuse_eltwise = false);
        let unfused = svc.run("bob", q_bob).unwrap();
        assert!(
            !unfused.cache_hit,
            "a fusion-flipped config must never reuse a fused compiled plan"
        );
        assert_eq!(
            fused.fingerprint, unfused.fingerprint,
            "fused and unfused plans must stay bit-identical"
        );
        let (_, misses, entries) = svc.plan_cache_stats();
        assert_eq!((misses, entries), (2, 2), "two distinct cache entries");
        // Same config, same canonical query → now it may share.
        svc.configure_tenant("bob", |c| c.fuse_eltwise = true);
        let refused = svc.run("bob", q_bob).unwrap();
        assert!(refused.cache_hit, "restored config hits alice's entry");
    }

    #[test]
    fn reordered_generators_hit_and_mutated_bindings_invalidate() {
        let svc = small_service();
        svc.register_shared_int("n", 6);
        svc.register_matrix_for("alice", "X", &random_matrix(6, 3), 3)
            .unwrap();
        svc.register_matrix_for("alice", "Y", &random_matrix(6, 4), 3)
            .unwrap();
        let q1 = "+/[ x*y | ((i,j),x) <- X, ((k,l),y) <- Y ]";
        let q2 = "+/[ b*a | ((k,l),a) <- Y, ((i,j),b) <- X ]";
        let r1 = svc.run("alice", q1).unwrap();
        let r2 = svc.run("alice", q2).unwrap();
        assert!(!r1.cache_hit);
        assert!(
            r2.cache_hit,
            "reordered commutative generators must reuse the plan"
        );
        assert_eq!(r1.value, r2.value);
        // Rebinding X bumps its version: the cached plan no longer matches.
        svc.register_matrix_for("alice", "X", &random_matrix(6, 5), 3)
            .unwrap();
        let r3 = svc.run("alice", q1).unwrap();
        assert!(!r3.cache_hit, "rebinding must invalidate the cache entry");
        assert_ne!(r3.value, r1.value);
        // Tenant-private bindings do not leak across tenants.
        svc.register_matrix_for("bob", "X", &random_matrix(6, 3), 3)
            .unwrap();
        svc.register_matrix_for("bob", "Y", &random_matrix(6, 4), 3)
            .unwrap();
        let rb = svc.run("bob", q1).unwrap();
        assert!(
            !rb.cache_hit,
            "a private binding's plan must not be shared across tenants"
        );
    }

    #[test]
    fn scalar_changes_invalidate_cached_plans() {
        let svc = small_service();
        svc.register_matrix_for("alice", "A", &random_matrix(8, 6), 4)
            .unwrap();
        svc.set_float_for("alice", "c", 2.0).unwrap();
        let q = "+/[ a*c | ((i,j),a) <- A ]";
        let r1 = svc.run("alice", q).unwrap();
        assert!(!r1.cache_hit);
        assert!(svc.run("alice", q).unwrap().cache_hit);
        // Same text, different scalar value: the plan bakes `c` in.
        svc.set_float_for("alice", "c", 3.0).unwrap();
        let r = svc.run("alice", q).unwrap();
        assert!(!r.cache_hit, "scalar rebind must miss the cache");
        assert_ne!(r.value, r1.value);
    }

    #[test]
    fn tenants_cannot_shadow_the_shared_catalog() {
        let svc = small_service();
        svc.register_shared_matrix("A", &random_matrix(6, 7), 3)
            .unwrap();
        svc.register_shared_int("n", 6);
        let m = random_matrix(6, 8);
        assert!(matches!(
            svc.register_matrix_for("alice", "A", &m, 3),
            Err(ServiceError::SharedNameConflict(_))
        ));
        assert!(matches!(
            svc.set_int_for("alice", "n", 9),
            Err(ServiceError::SharedNameConflict(_))
        ));
        // And the reverse: a shared registration cannot clobber an existing
        // tenant-private binding.
        svc.register_matrix_for("alice", "B", &m, 3).unwrap();
        assert!(matches!(
            svc.register_shared_matrix("B", &m, 3),
            Err(ServiceError::SharedNameConflict(_))
        ));
    }

    #[test]
    fn cancellation_frees_the_slot_and_the_tenants_memory() {
        let svc = QueryService::builder()
            .workers(2)
            .executors(2)
            .storage_memory(64 << 20)
            .slots(1)
            .chaos_off()
            .build();
        svc.register_shared_int("n", 24);
        svc.register_matrix_for("mallory", "M", &random_matrix(24, 9), 4)
            .unwrap();
        // A self-join forces auto-persist: mallory's job caches M's tiles
        // under mallory's tenant id.
        let heavy = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- M, kk == k, \
                     let v = a*b, group by (i,j) ]";
        // Warm up so blocks exist, then cancel a fresh run mid-flight.
        svc.run("mallory", heavy).unwrap();
        let mallory_id = svc.tenant_id("mallory");
        let handle = svc.submit("mallory", heavy);
        handle.cancel();
        match handle.wait() {
            Err(ServiceError::Cancelled { tenant, .. }) => assert_eq!(tenant, "mallory"),
            other => panic!(
                "expected cancellation, got {other:?}",
                other = other.map(|r| r.kind)
            ),
        }
        // The tenant went idle: its attributed blocks were released...
        let status = svc.context().storage_status();
        assert!(
            !status
                .tenants
                .iter()
                .any(|t| t.tenant == mallory_id && t.memory_used > 0),
            "cancelled idle tenant must hold no storage: {:?}",
            status.tenants
        );
        // ...and the slot was freed: another tenant's job runs to completion.
        svc.register_shared_matrix("A", &random_matrix(8, 10), 4)
            .unwrap();
        let r = svc
            .run("alice", "tiled(8,8)[ ((i,j), a+1.0) | ((i,j),a) <- A ]")
            .unwrap();
        assert_eq!(r.kind, "matrix");
    }

    #[test]
    fn cancel_by_job_id_and_unknown_targets() {
        let svc = small_service();
        assert!(matches!(
            svc.cancel("ghost", 1),
            Err(ServiceError::UnknownTenant(_))
        ));
        svc.register_shared_int("n", 6);
        svc.register_shared_matrix("A", &random_matrix(6, 11), 3)
            .unwrap();
        svc.run("alice", "+/[ a | ((i,j),a) <- A ]").unwrap();
        assert!(matches!(
            svc.cancel("alice", 999),
            Err(ServiceError::UnknownJob { .. })
        ));
    }

    #[test]
    fn status_reports_tenants_cache_and_storage() {
        let svc = small_service();
        svc.register_shared_matrix("A", &random_matrix(8, 12), 4)
            .unwrap();
        svc.register_shared_int("n", 8);
        svc.set_tenant_quota("alice", 1 << 20);
        let q = "tiled(n,n)[ ((i,j), a) | ((i,j),a) <- A ]";
        svc.run("alice", q).unwrap();
        svc.run("alice", q).unwrap();
        let status = svc.status();
        assert_eq!(status.slots, 2);
        assert_eq!(status.plan_cache_hits, 1);
        assert_eq!(status.plan_cache_misses, 1);
        assert_eq!(status.plan_cache_entries, 1);
        let alice = status.tenants.iter().find(|t| t.tenant == "alice").unwrap();
        assert_eq!(alice.quota, Some(1 << 20));
        assert!(alice.running_jobs.is_empty());
        let json = status.to_json();
        assert!(json.contains("\"slots\":2"), "{json}");
        assert!(json.contains("\"tenant\":\"alice\""), "{json}");
    }

    #[test]
    fn service_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryService>();
        assert_send_sync::<QueryReply>();
        assert_send_sync::<ServiceError>();
    }
}
