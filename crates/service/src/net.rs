//! Line-oriented TCP protocol for [`QueryService`].
//!
//! Fields are tab-separated (queries contain spaces); one request and one
//! reply per line:
//!
//! ```text
//! RUN\t<tenant>\t<query>     ->  OK\t<reply json>   |  ERR\t<message>
//! CANCEL\t<tenant>\t<job>    ->  OK\tcancelled      |  ERR\t<message>
//! STATUS                     ->  OK\t<status json>
//! QUIT                       ->  (connection closes)
//! ```
//!
//! Each connection is served by its own thread; a `RUN` blocks its
//! connection until the job finishes, so cancellation is issued from a
//! *different* connection using the job ids visible in `STATUS`.

use crate::QueryService;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running server; dropping it (or calling [`Server::shutdown`]) stops the
/// accept loop.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. Connections
    /// already being served run their current request to completion.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve `service` until shutdown.
pub fn serve(service: QueryService, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Nonblocking accept so the loop can observe the shutdown flag.
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let accept_thread = std::thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let svc = service.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(svc, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });
    Ok(Server {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(service: QueryService, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let reply = match dispatch(&service, &line) {
            Dispatch::Reply(r) => r,
            Dispatch::Quit => break,
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

enum Dispatch {
    Reply(String),
    Quit,
}

/// Error messages must stay one line for the wire format.
fn one_line(msg: String) -> String {
    msg.replace(['\n', '\r'], " ")
}

fn dispatch(service: &QueryService, line: &str) -> Dispatch {
    let mut parts = line.splitn(3, '\t');
    let verb = parts.next().unwrap_or("").trim();
    match verb {
        "RUN" => {
            let (tenant, query) = (parts.next(), parts.next());
            match (tenant, query) {
                (Some(tenant), Some(query)) if !tenant.is_empty() => {
                    match service.run(tenant, query) {
                        Ok(reply) => Dispatch::Reply(format!("OK\t{}", reply.to_json())),
                        Err(e) => Dispatch::Reply(format!("ERR\t{}", one_line(e.to_string()))),
                    }
                }
                _ => Dispatch::Reply("ERR\tusage: RUN\\t<tenant>\\t<query>".to_string()),
            }
        }
        "CANCEL" => {
            let (tenant, job) = (parts.next(), parts.next());
            match (tenant, job.and_then(|j| j.trim().parse::<u64>().ok())) {
                (Some(tenant), Some(job)) if !tenant.is_empty() => {
                    match service.cancel(tenant, job) {
                        Ok(()) => Dispatch::Reply("OK\tcancelled".to_string()),
                        Err(e) => Dispatch::Reply(format!("ERR\t{}", one_line(e.to_string()))),
                    }
                }
                _ => Dispatch::Reply("ERR\tusage: CANCEL\\t<tenant>\\t<job>".to_string()),
            }
        }
        "STATUS" => Dispatch::Reply(format!("OK\t{}", service.status().to_json())),
        "QUIT" => Dispatch::Quit,
        "" => Dispatch::Reply("ERR\tempty request".to_string()),
        other => Dispatch::Reply(format!(
            "ERR\tunknown verb '{}'",
            one_line(other.to_string())
        )),
    }
}

/// A tiny blocking client for tests and the load generator.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw request line; return the raw reply line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// `RUN` a query; `Ok(json)` on success, `Err(message)` on an `ERR` reply.
    pub fn run(&mut self, tenant: &str, query: &str) -> std::io::Result<Result<String, String>> {
        let reply = self.request(&format!("RUN\t{tenant}\t{query}"))?;
        Ok(split_reply(&reply))
    }

    pub fn cancel(&mut self, tenant: &str, job: u64) -> std::io::Result<Result<String, String>> {
        let reply = self.request(&format!("CANCEL\t{tenant}\t{job}"))?;
        Ok(split_reply(&reply))
    }

    pub fn status(&mut self) -> std::io::Result<Result<String, String>> {
        let reply = self.request("STATUS")?;
        Ok(split_reply(&reply))
    }
}

fn split_reply(reply: &str) -> Result<String, String> {
    match reply.split_once('\t') {
        Some(("OK", rest)) => Ok(rest.to_string()),
        Some(("ERR", rest)) => Err(rest.to_string()),
        _ => Err(format!("malformed reply: {reply}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiled::LocalMatrix;

    fn served() -> (QueryService, Server) {
        let svc = QueryService::builder()
            .workers(4)
            .executors(4)
            .storage_memory(64 << 20)
            .slots(2)
            .chaos_off()
            .build();
        let mut rng = StdRng::seed_from_u64(42);
        let a = LocalMatrix::random(8, 8, -1.0, 1.0, &mut rng);
        svc.register_shared_matrix("A", &a, 4).unwrap();
        svc.register_shared_int("n", 8);
        let server = serve(svc.clone(), ("127.0.0.1", 0)).unwrap();
        (svc, server)
    }

    #[test]
    fn run_status_and_errors_over_tcp() {
        let (_svc, server) = served();
        let mut c = Client::connect(server.addr()).unwrap();
        let json = c
            .run("alice", "tiled(n,n)[ ((i,j), a*3.0) | ((i,j),a) <- A ]")
            .unwrap()
            .expect("query should succeed");
        assert!(json.contains("\"kind\":\"matrix\""), "{json}");
        assert!(json.contains("\"rows\":8"), "{json}");
        // Same query again: served from the plan cache.
        let json2 = c
            .run("alice", "tiled(n,n)[ ((i,j), a*3.0) | ((i,j),a) <- A ]")
            .unwrap()
            .unwrap();
        assert!(json2.contains("\"cache_hit\":true"), "{json2}");
        let status = c.status().unwrap().unwrap();
        assert!(status.contains("\"tenant\":\"alice\""), "{status}");
        // Errors come back as one-line ERR replies, connection stays usable.
        let err = c.run("alice", "tiled(n,n)[ oops").unwrap().unwrap_err();
        assert!(!err.is_empty());
        let err = c.request("FROB\tx").unwrap();
        assert!(err.starts_with("ERR\t"), "{err}");
        assert!(c.cancel("ghost", 1).unwrap().is_err());
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_isolated_tenants() {
        let (_svc, server) = served();
        let addr = server.addr();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let tenant = format!("t{i}");
                    c.run(&tenant, "+/[ a | ((i,j),a) <- A ]")
                        .unwrap()
                        .expect("shared data query should succeed")
                })
            })
            .collect();
        let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All tenants read the same shared matrix: identical fingerprints.
        let fp = |s: &str| {
            s.split("\"fingerprint\":")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .unwrap()
                .to_string()
        };
        assert_eq!(fp(&replies[0]), fp(&replies[1]));
        assert_eq!(fp(&replies[1]), fp(&replies[2]));
        server.shutdown();
    }
}
