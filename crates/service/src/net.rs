//! Line-oriented TCP protocol for [`QueryService`].
//!
//! Fields are tab-separated (queries contain spaces); one request and one
//! reply per line:
//!
//! ```text
//! RUN\t<tenant>\t<query>     ->  OK\t<reply json>   |  ERR\t<message>
//! CANCEL\t<tenant>\t<job>    ->  OK\tcancelled      |  ERR\t<message>
//! STATUS                     ->  OK\t<status json>
//! QUIT                       ->  (connection closes)
//! ```
//!
//! Each connection is served by its own thread; a `RUN` blocks its
//! connection until the job finishes, so cancellation is issued from a
//! *different* connection using the job ids visible in `STATUS`.
//!
//! Connections are defensive: request lines are length-capped (an oversized
//! line gets one `ERR` and the connection closes, since the stream is no
//! longer line-synchronized), stalled sockets are hung up after the
//! configured read timeout, and slow readers are abandoned after the write
//! timeout — a misbehaving client can never wedge its server thread, and a
//! mid-`RUN` disconnect only kills that connection's thread, never the
//! accept loop.

use crate::QueryService;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Socket-robustness knobs for [`serve_with`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// How long to wait for the next request line before hanging up the
    /// connection. `None` waits forever (the [`serve`] default).
    pub read_timeout: Option<Duration>,
    /// How long a reply write may block on a slow reader before the
    /// connection is abandoned.
    pub write_timeout: Option<Duration>,
    /// Longest accepted request line in bytes. Longer lines get one
    /// `ERR\tline too long` reply and the connection closes.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout: None,
            write_timeout: None,
            max_line_bytes: 1 << 20,
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops the
/// accept loop.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. Connections
    /// already being served run their current request to completion.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve `service` until shutdown, with the default (fully
/// patient) socket configuration.
pub fn serve(service: QueryService, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
    serve_with(service, addr, ServeConfig::default())
}

/// Bind `addr` and serve `service` until shutdown with explicit socket
/// timeouts and line caps.
pub fn serve_with(
    service: QueryService,
    addr: impl ToSocketAddrs,
    cfg: ServeConfig,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Nonblocking accept so the loop can observe the shutdown flag.
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let accept_thread = std::thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let svc = service.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(svc, stream, cfg);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });
    Ok(Server {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// One capped request-line read.
enum LineRead {
    Line(Vec<u8>),
    TooLong,
    Eof,
}

/// Read up to (and consuming) the next `\n`, refusing to buffer more than
/// `cap` bytes of line: the protocol is line-oriented, so an unbounded line
/// is either a broken client or an attack, not a query.
fn read_line_capped<R: BufRead>(r: &mut R, cap: usize) -> std::io::Result<LineRead> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(line)
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(idx) => {
                let too_long = line.len() + idx > cap;
                if !too_long {
                    line.extend_from_slice(&buf[..idx]);
                }
                r.consume(idx + 1);
                return Ok(if too_long {
                    LineRead::TooLong
                } else {
                    LineRead::Line(line)
                });
            }
            None => {
                let n = buf.len();
                if line.len() + n > cap {
                    r.consume(n);
                    return Ok(LineRead::TooLong);
                }
                line.extend_from_slice(buf);
                r.consume(n);
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn write_reply(writer: &mut TcpStream, reply: &str) -> std::io::Result<()> {
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(
    service: QueryService,
    stream: TcpStream,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_write_timeout(cfg.write_timeout)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_capped(&mut reader, cfg.max_line_bytes) {
            Ok(LineRead::Line(bytes)) => match String::from_utf8(bytes) {
                Ok(s) => s.trim_end_matches('\r').to_string(),
                Err(_) => {
                    write_reply(&mut writer, "ERR\trequest is not utf-8")?;
                    continue;
                }
            },
            Ok(LineRead::TooLong) => {
                // The stream is no longer line-synchronized: reply once,
                // then hang up rather than misparse the overflow as the
                // next request.
                let _ = write_reply(&mut writer, "ERR\tline too long");
                return Ok(());
            }
            Ok(LineRead::Eof) => return Ok(()),
            Err(e) if is_timeout(&e) => {
                // Stalled socket: tell the client (best-effort) and free
                // the thread.
                let _ = write_reply(&mut writer, "ERR\tread timed out");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let reply = match dispatch(&service, &line) {
            Dispatch::Reply(r) => r,
            Dispatch::Quit => break,
        };
        write_reply(&mut writer, &reply)?;
    }
    Ok(())
}

enum Dispatch {
    Reply(String),
    Quit,
}

/// Error messages must stay one line for the wire format.
fn one_line(msg: String) -> String {
    msg.replace(['\n', '\r'], " ")
}

fn dispatch(service: &QueryService, line: &str) -> Dispatch {
    let mut parts = line.splitn(3, '\t');
    let verb = parts.next().unwrap_or("").trim();
    match verb {
        "RUN" => {
            let (tenant, query) = (parts.next(), parts.next());
            match (tenant, query) {
                (Some(tenant), Some(query)) if !tenant.is_empty() => {
                    match service.run(tenant, query) {
                        Ok(reply) => Dispatch::Reply(format!("OK\t{}", reply.to_json())),
                        Err(e) => Dispatch::Reply(format!("ERR\t{}", one_line(e.to_string()))),
                    }
                }
                _ => Dispatch::Reply("ERR\tusage: RUN\\t<tenant>\\t<query>".to_string()),
            }
        }
        "CANCEL" => {
            let (tenant, job) = (parts.next(), parts.next());
            match (tenant, job.and_then(|j| j.trim().parse::<u64>().ok())) {
                (Some(tenant), Some(job)) if !tenant.is_empty() => {
                    match service.cancel(tenant, job) {
                        Ok(()) => Dispatch::Reply("OK\tcancelled".to_string()),
                        Err(e) => Dispatch::Reply(format!("ERR\t{}", one_line(e.to_string()))),
                    }
                }
                _ => Dispatch::Reply("ERR\tusage: CANCEL\\t<tenant>\\t<job>".to_string()),
            }
        }
        "STATUS" => Dispatch::Reply(format!("OK\t{}", service.status().to_json())),
        "QUIT" => Dispatch::Quit,
        "" => Dispatch::Reply("ERR\tempty request".to_string()),
        other => Dispatch::Reply(format!(
            "ERR\tunknown verb '{}'",
            one_line(other.to_string())
        )),
    }
}

/// Client-side socket timeouts for [`Client::connect_with`]. `None` fields
/// wait forever (the [`Client::connect`] default).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientTimeouts {
    pub connect: Option<Duration>,
    pub read: Option<Duration>,
    pub write: Option<Duration>,
}

/// A tiny blocking client for tests and the load generator.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientTimeouts::default())
    }

    /// Connect with explicit connect/read/write timeouts, so a dead or
    /// wedged server surfaces as a timed-out `Err` instead of a hang.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeouts: ClientTimeouts,
    ) -> std::io::Result<Client> {
        let mut last_err = None;
        for a in addr.to_socket_addrs()? {
            let connected = match timeouts.connect {
                Some(t) => TcpStream::connect_timeout(&a, t),
                None => TcpStream::connect(a),
            };
            match connected {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(timeouts.read)?;
                    stream.set_write_timeout(timeouts.write)?;
                    let writer = stream.try_clone()?;
                    return Ok(Client {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no addresses to connect to",
            )
        }))
    }

    /// Send one raw request line; return the raw reply line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// `RUN` a query; `Ok(json)` on success, `Err(message)` on an `ERR` reply.
    pub fn run(&mut self, tenant: &str, query: &str) -> std::io::Result<Result<String, String>> {
        let reply = self.request(&format!("RUN\t{tenant}\t{query}"))?;
        Ok(split_reply(&reply))
    }

    pub fn cancel(&mut self, tenant: &str, job: u64) -> std::io::Result<Result<String, String>> {
        let reply = self.request(&format!("CANCEL\t{tenant}\t{job}"))?;
        Ok(split_reply(&reply))
    }

    pub fn status(&mut self) -> std::io::Result<Result<String, String>> {
        let reply = self.request("STATUS")?;
        Ok(split_reply(&reply))
    }
}

fn split_reply(reply: &str) -> Result<String, String> {
    match reply.split_once('\t') {
        Some(("OK", rest)) => Ok(rest.to_string()),
        Some(("ERR", rest)) => Err(rest.to_string()),
        _ => Err(format!("malformed reply: {reply}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiled::LocalMatrix;

    fn served() -> (QueryService, Server) {
        let svc = QueryService::builder()
            .workers(4)
            .executors(4)
            .storage_memory(64 << 20)
            .slots(2)
            .chaos_off()
            .build();
        let mut rng = StdRng::seed_from_u64(42);
        let a = LocalMatrix::random(8, 8, -1.0, 1.0, &mut rng);
        svc.register_shared_matrix("A", &a, 4).unwrap();
        svc.register_shared_int("n", 8);
        let server = serve(svc.clone(), ("127.0.0.1", 0)).unwrap();
        (svc, server)
    }

    #[test]
    fn run_status_and_errors_over_tcp() {
        let (_svc, server) = served();
        let mut c = Client::connect(server.addr()).unwrap();
        let json = c
            .run("alice", "tiled(n,n)[ ((i,j), a*3.0) | ((i,j),a) <- A ]")
            .unwrap()
            .expect("query should succeed");
        assert!(json.contains("\"kind\":\"matrix\""), "{json}");
        assert!(json.contains("\"rows\":8"), "{json}");
        // Same query again: served from the plan cache.
        let json2 = c
            .run("alice", "tiled(n,n)[ ((i,j), a*3.0) | ((i,j),a) <- A ]")
            .unwrap()
            .unwrap();
        assert!(json2.contains("\"cache_hit\":true"), "{json2}");
        let status = c.status().unwrap().unwrap();
        assert!(status.contains("\"tenant\":\"alice\""), "{status}");
        // Errors come back as one-line ERR replies, connection stays usable.
        let err = c.run("alice", "tiled(n,n)[ oops").unwrap().unwrap_err();
        assert!(!err.is_empty());
        let err = c.request("FROB\tx").unwrap();
        assert!(err.starts_with("ERR\t"), "{err}");
        assert!(c.cancel("ghost", 1).unwrap().is_err());
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_isolated_tenants() {
        let (_svc, server) = served();
        let addr = server.addr();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let tenant = format!("t{i}");
                    c.run(&tenant, "+/[ a | ((i,j),a) <- A ]")
                        .unwrap()
                        .expect("shared data query should succeed")
                })
            })
            .collect();
        let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All tenants read the same shared matrix: identical fingerprints.
        let fp = |s: &str| {
            s.split("\"fingerprint\":")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .unwrap()
                .to_string()
        };
        assert_eq!(fp(&replies[0]), fp(&replies[1]));
        assert_eq!(fp(&replies[1]), fp(&replies[2]));
        server.shutdown();
    }

    fn served_with(cfg: ServeConfig) -> (QueryService, Server) {
        let svc = QueryService::builder()
            .workers(2)
            .executors(2)
            .storage_memory(64 << 20)
            .slots(2)
            .chaos_off()
            .build();
        let mut rng = StdRng::seed_from_u64(42);
        let a = LocalMatrix::random(8, 8, -1.0, 1.0, &mut rng);
        svc.register_shared_matrix("A", &a, 4).unwrap();
        svc.register_shared_int("n", 8);
        let server = serve_with(svc.clone(), ("127.0.0.1", 0), cfg).unwrap();
        (svc, server)
    }

    #[test]
    fn malformed_command_lines_get_err_replies_without_killing_the_connection() {
        let (_svc, server) = served();
        let mut c = Client::connect(server.addr()).unwrap();
        for bad in [
            "RUN",                  // missing tenant and query
            "RUN\t\tq",             // empty tenant
            "RUN\talice",           // missing query
            "CANCEL\talice\tnope",  // non-numeric job id
            "CANCEL",               // nothing at all
            "\t\t\t",               // no verb
            "",                     // empty line
            "STATUS\textra\tstuff", // trailing fields on a 0-arg verb are ignored or refused, never a crash
        ] {
            let reply = c.request(bad).unwrap();
            assert!(
                reply.starts_with("ERR\t") || reply.starts_with("OK\t"),
                "line {bad:?} must get a protocol reply, got {reply:?}"
            );
        }
        // The connection is still line-synchronized and usable.
        assert!(c.status().unwrap().is_ok());
        server.shutdown();
    }

    #[test]
    fn non_utf8_request_gets_an_err_reply() {
        let (_svc, server) = served();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"RUN\t\xFF\xFE\tq\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        assert!(reply.starts_with("ERR\t"), "{reply:?}");
        server.shutdown();
    }

    #[test]
    fn stalled_socket_is_hung_up_after_the_read_timeout() {
        let (_svc, server) = served_with(ServeConfig {
            read_timeout: Some(Duration::from_millis(80)),
            write_timeout: Some(Duration::from_secs(5)),
            max_line_bytes: 1 << 20,
        });
        // Connect and send nothing: the server must hang up, not leak a
        // blocked thread.
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ERR\tread timed out");
        reply.clear();
        let n = reader.read_line(&mut reply).unwrap();
        assert_eq!(n, 0, "connection must be closed after the timeout");
        // The listener is unaffected: a live client still gets served.
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.status().unwrap().is_ok());
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected_and_the_connection_closed() {
        let (_svc, server) = served_with(ServeConfig {
            max_line_bytes: 1024,
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let huge = vec![b'x'; 64 << 10];
        stream.write_all(b"RUN\talice\t").unwrap();
        stream.write_all(&huge).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ERR\tline too long");
        reply.clear();
        // Closing with the overflow still unread may surface as a clean EOF
        // or a connection reset; both mean "hung up".
        match reader.read_line(&mut reply) {
            Ok(0) => {}
            Ok(n) => panic!("connection must be closed, read {n} bytes: {reply:?}"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ),
                "unexpected error: {e:?}"
            ),
        }
        // Fresh connections keep working.
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.status().unwrap().is_ok());
        server.shutdown();
    }

    #[test]
    fn disconnect_mid_run_does_not_poison_the_listener() {
        let (_svc, server) = served();
        // Fire a RUN and slam the connection shut without reading the reply:
        // the serving thread's write fails and the thread exits; nothing
        // else must notice.
        for _ in 0..3 {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .write_all(b"RUN\tghost\t+/[ a | ((i,j),a) <- A ]\n")
                .unwrap();
            stream.flush().unwrap();
            drop(stream);
        }
        let mut c = Client::connect(server.addr()).unwrap();
        let json = c
            .run("alice", "+/[ a | ((i,j),a) <- A ]")
            .unwrap()
            .expect("service must still run queries after abandoned RUNs");
        assert!(!json.is_empty());
        server.shutdown();
    }

    #[test]
    fn client_read_timeout_surfaces_a_wedged_server_as_an_error() {
        // A listener that accepts and never replies.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut c = Client::connect_with(
            addr,
            ClientTimeouts {
                connect: Some(Duration::from_secs(2)),
                read: Some(Duration::from_millis(80)),
                write: Some(Duration::from_secs(2)),
            },
        )
        .unwrap();
        let err = c.request("STATUS").expect_err("read must time out");
        assert!(is_timeout(&err), "unexpected error kind: {err:?}");
        drop(hold);
    }
}
