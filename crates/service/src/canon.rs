//! Query canonicalization for the plan cache.
//!
//! Two textually different queries should share one cache entry when they
//! are the *same program*: alpha-renamed bound variables and reordered
//! independent generators change the text but not the plan. The cache key is
//! the pretty-printed [`canonicalize`]d expression, built in three passes:
//!
//! 1. [`comp::normalize::normalize`] — the planner's own source-to-source
//!    rules (comprehension flattening, index removal, group-by elimination),
//!    so the cached plan is compiled from exactly the key expression.
//! 2. Generator reordering — within each run of consecutive generators,
//!    adjacent pairs are bubble-sorted by a name-insensitive key, swapping
//!    only when neither generator binds a variable the other's source reads
//!    (commutative qualifiers, rule (3) of the paper permits any order).
//! 3. Alpha-renaming — every bound variable is renamed to `%c0`, `%c1`, ...
//!    in binding order, so user-chosen names vanish from the key.

use comp::ast::{Comprehension, Expr, Pattern, Qualifier};
use std::collections::HashMap;

/// Canonical form of a query: normalize, reorder commutative generators,
/// then alpha-rename bound variables. Alpha-equivalent queries (and
/// reorderings of independent generators) map to equal expressions, hence
/// equal pretty-printed cache keys.
pub fn canonicalize(expr: Expr) -> Expr {
    let expr = comp::normalize::normalize(expr);
    let expr = reorder(expr);
    Renamer::default().rename(&expr)
}

/// The canonical cache-key text of a query.
pub fn canonical_key(expr: Expr) -> String {
    format!("{}", canonicalize(expr))
}

/// FNV-1a over the key text — the `key` field of `plan_cache_hit` events.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Pass 2: generator reordering.

fn reorder(expr: Expr) -> Expr {
    match expr {
        Expr::Comprehension(c) => Expr::Comprehension(reorder_comp(c)),
        Expr::Tuple(es) => Expr::Tuple(es.into_iter().map(reorder).collect()),
        Expr::Call(f, es) => Expr::Call(f, es.into_iter().map(reorder).collect()),
        Expr::Reduce(m, e) => Expr::Reduce(m, Box::new(reorder(*e))),
        Expr::UnOp(op, e) => Expr::UnOp(op, Box::new(reorder(*e))),
        Expr::Field(e, f) => Expr::Field(Box::new(reorder(*e)), f),
        Expr::BinOp(op, a, b) => Expr::BinOp(op, Box::new(reorder(*a)), Box::new(reorder(*b))),
        Expr::Index(e, idx) => Expr::Index(
            Box::new(reorder(*e)),
            idx.into_iter().map(reorder).collect(),
        ),
        Expr::Range { lo, hi, inclusive } => Expr::Range {
            lo: Box::new(reorder(*lo)),
            hi: Box::new(reorder(*hi)),
            inclusive,
        },
        Expr::If(c, t, e) => Expr::If(
            Box::new(reorder(*c)),
            Box::new(reorder(*t)),
            Box::new(reorder(*e)),
        ),
        Expr::Build {
            builder,
            args,
            body,
        } => Expr::Build {
            builder,
            args: args.into_iter().map(reorder).collect(),
            body: Box::new(reorder(*body)),
        },
        leaf => leaf,
    }
}

fn reorder_comp(c: Comprehension) -> Comprehension {
    let mut qualifiers: Vec<Qualifier> = c
        .qualifiers
        .into_iter()
        .map(|q| match q {
            Qualifier::Generator(p, e) => Qualifier::Generator(p, reorder(e)),
            Qualifier::Let(p, e) => Qualifier::Let(p, reorder(e)),
            Qualifier::Guard(e) => Qualifier::Guard(reorder(e)),
            Qualifier::GroupBy(p, k) => Qualifier::GroupBy(p, k.map(reorder)),
        })
        .collect();
    // Bubble-sort adjacent generator pairs within each consecutive run; a
    // swap needs both independence (neither side reads what the other
    // binds) and a strict key ordering. Dependent chains keep their order.
    let mut swapped = true;
    while swapped {
        swapped = false;
        for i in 0..qualifiers.len().saturating_sub(1) {
            let (a, b) = (&qualifiers[i], &qualifiers[i + 1]);
            let (Qualifier::Generator(p1, e1), Qualifier::Generator(p2, e2)) = (a, b) else {
                continue;
            };
            if !independent(p1, e2) || !independent(p2, e1) {
                continue;
            }
            if sort_key(p2, e2) < sort_key(p1, e1) {
                qualifiers.swap(i, i + 1);
                swapped = true;
            }
        }
    }
    Comprehension {
        head: Box::new(reorder(*c.head)),
        qualifiers,
    }
}

/// Does `source` avoid every variable `pattern` binds?
fn independent(pattern: &Pattern, source: &Expr) -> bool {
    let free = source.free_vars();
    !pattern.vars().iter().any(|v| free.contains(v))
}

/// Name-insensitive ordering key of a generator: the source's pretty text
/// with *bound-looking* occurrences left as-is (sources of independent
/// generators only read outer/free names, which alpha-renaming preserves),
/// plus the pattern's structural shape.
fn sort_key(pattern: &Pattern, source: &Expr) -> (String, String) {
    (format!("{source}"), pattern_shape(pattern))
}

fn pattern_shape(p: &Pattern) -> String {
    match p {
        Pattern::Var(_) => "v".into(),
        Pattern::Wildcard => "_".into(),
        Pattern::Tuple(ps) => {
            let inner: Vec<String> = ps.iter().map(pattern_shape).collect();
            format!("({})", inner.join(","))
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: alpha-renaming.

#[derive(Default)]
struct Renamer {
    /// Scope stack of `user name -> canonical name` maps.
    scopes: Vec<HashMap<String, String>>,
    counter: usize,
}

impl Renamer {
    fn fresh(&mut self) -> String {
        let name = format!("%c{}", self.counter);
        self.counter += 1;
        name
    }

    fn lookup(&self, name: &str) -> Option<&String> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind_pattern(&mut self, p: &Pattern) -> Pattern {
        match p {
            Pattern::Var(v) => {
                let fresh = self.fresh();
                self.scopes
                    .last_mut()
                    .expect("binding outside any scope")
                    .insert(v.clone(), fresh.clone());
                Pattern::Var(fresh)
            }
            Pattern::Tuple(ps) => Pattern::Tuple(ps.iter().map(|p| self.bind_pattern(p)).collect()),
            Pattern::Wildcard => Pattern::Wildcard,
        }
    }

    /// Rewrite a pattern whose variables *reference* existing bindings (the
    /// `group by p` form, where `p` re-binds already-bound names to the key).
    fn reference_pattern(&self, p: &Pattern) -> Pattern {
        match p {
            Pattern::Var(v) => Pattern::Var(self.lookup(v).cloned().unwrap_or_else(|| v.clone())),
            Pattern::Tuple(ps) => {
                Pattern::Tuple(ps.iter().map(|p| self.reference_pattern(p)).collect())
            }
            Pattern::Wildcard => Pattern::Wildcard,
        }
    }

    fn rename(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Str(_) => e.clone(),
            Expr::Var(v) => Expr::Var(self.lookup(v).cloned().unwrap_or_else(|| v.clone())),
            Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| self.rename(e)).collect()),
            Expr::Call(f, es) => Expr::Call(f.clone(), es.iter().map(|e| self.rename(e)).collect()),
            Expr::Reduce(m, e) => Expr::Reduce(*m, Box::new(self.rename(e))),
            Expr::UnOp(op, e) => Expr::UnOp(*op, Box::new(self.rename(e))),
            Expr::Field(e, f) => Expr::Field(Box::new(self.rename(e)), f.clone()),
            Expr::BinOp(op, a, b) => {
                Expr::BinOp(*op, Box::new(self.rename(a)), Box::new(self.rename(b)))
            }
            Expr::Index(e, idx) => Expr::Index(
                Box::new(self.rename(e)),
                idx.iter().map(|i| self.rename(i)).collect(),
            ),
            Expr::Range { lo, hi, inclusive } => Expr::Range {
                lo: Box::new(self.rename(lo)),
                hi: Box::new(self.rename(hi)),
                inclusive: *inclusive,
            },
            Expr::If(c, t, e) => Expr::If(
                Box::new(self.rename(c)),
                Box::new(self.rename(t)),
                Box::new(self.rename(e)),
            ),
            Expr::Build {
                builder,
                args,
                body,
            } => Expr::Build {
                builder: builder.clone(),
                args: args.iter().map(|a| self.rename(a)).collect(),
                body: Box::new(self.rename(body)),
            },
            Expr::Comprehension(c) => {
                self.scopes.push(HashMap::new());
                let qualifiers = c
                    .qualifiers
                    .iter()
                    .map(|q| match q {
                        Qualifier::Generator(p, e) => {
                            let e = self.rename(e);
                            Qualifier::Generator(self.bind_pattern(p), e)
                        }
                        Qualifier::Let(p, e) => {
                            let e = self.rename(e);
                            Qualifier::Let(self.bind_pattern(p), e)
                        }
                        Qualifier::Guard(e) => Qualifier::Guard(self.rename(e)),
                        Qualifier::GroupBy(p, Some(k)) => {
                            let k = self.rename(k);
                            Qualifier::GroupBy(self.bind_pattern(p), Some(k))
                        }
                        Qualifier::GroupBy(p, None) => {
                            Qualifier::GroupBy(self.reference_pattern(p), None)
                        }
                    })
                    .collect();
                let head = Box::new(self.rename(&c.head));
                self.scopes.pop();
                Expr::Comprehension(Comprehension { head, qualifiers })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: &str) -> String {
        canonical_key(comp::parse_expr(src).unwrap())
    }

    #[test]
    fn alpha_renamed_queries_share_a_key() {
        let a =
            key("tiled(n,n)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]");
        let b =
            key("tiled(n,n)[ ((r,c), x+y) | ((r,c),x) <- A, ((rr,cc),y) <- B, rr == r, cc == c ]");
        assert_eq!(a, b, "alpha-renaming must not change the key");
    }

    #[test]
    fn reordered_independent_generators_share_a_key() {
        let a = key("[ a*b | ((i,j),a) <- A, ((k,l),b) <- B ]");
        let b = key("[ a*b | ((k,l),b) <- B, ((i,j),a) <- A ]");
        assert_eq!(a, b, "commutative generator order must not change the key");
    }

    #[test]
    fn reordering_composes_with_alpha_renaming() {
        let a = key("[ a*b | ((i,j),a) <- A, ((k,l),b) <- B ]");
        let b = key("[ x*y | ((p,q),y) <- B, ((r,s),x) <- A ]");
        assert_eq!(a, b);
    }

    #[test]
    fn dependent_generators_keep_their_order() {
        // The second generator ranges over a variable the first binds; the
        // pair is not commutative and must not be reordered.
        let a = key("[ y | x <- A, y <- x ]");
        let b = key("[ y | x <- B, y <- x ]");
        assert_ne!(a, b);
        // Canonical text still renames the bound variables.
        assert!(a.contains("%c0"), "{a}");
    }

    #[test]
    fn different_sources_get_different_keys() {
        assert_ne!(key("[ a | (i,a) <- A ]"), key("[ a | (i,a) <- B ]"));
        assert_ne!(key("[ a+1 | (i,a) <- A ]"), key("[ a+2 | (i,a) <- A ]"));
    }

    #[test]
    fn group_by_and_matmul_queries_canonicalize() {
        let a = key(
            "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
             let v = a*b, group by (i,j) ]",
        );
        let b = key(
            "tiled(n,n)[ ((r,c), +/w) | ((r,m),x) <- A, ((mm,c),y) <- B, mm == m, \
             let w = x*y, group by (r,c) ]",
        );
        assert_eq!(a, b);
        assert!(!a.contains("kk"), "user names must not leak into keys: {a}");
    }

    #[test]
    fn key_hash_is_stable_and_discriminating() {
        let k = key("[ a | (i,a) <- A ]");
        assert_eq!(key_hash(&k), key_hash(&k));
        assert_ne!(key_hash("x"), key_hash("y"));
    }
}
