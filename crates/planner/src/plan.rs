//! Plan selection — the paper's translation rules as pattern matches over
//! the decomposed comprehension.
//!
//! Dispatch order for `tiled(n,m)[ e | q ]`:
//!
//! 1. **Eltwise** (§5.1, rule 17) — every generator ranges over a tiled
//!    matrix, generators are equated on both indices (rule 14 join
//!    detection), and the head key is those indices (possibly swapped →
//!    transpose). No shuffle beyond co-partitioning; tile kernels do the
//!    work.
//! 2. **Contraction** (§5.3 / §5.4) — two tiled generators joined on one
//!    index, group-by over the two free indices, head `⊕/v` with
//!    `v = f(a, b)`: matrix-multiplication-like. Translated to join +
//!    tile-level `reduceByKey` (rule 13) or to the **group-by-join** /
//!    SUMMA plan (§5.4), per configuration.
//! 3. **IndexRemap** (§5.2, rule 19) — one tiled generator, head key is an
//!    arbitrary index map: tiles are replicated to the output tiles their
//!    elements land in (the `I_f(K)` image sets), then regrouped.
//! 4. **GroupByAggregate** (§5.3 general) — one tiled generator plus range
//!    generators/guards and a group-by: the generic
//!    replicate-and-`reduceByKey` translation with one accumulator plane per
//!    aggregate (the product-of-monoids of §3). Covers stencils such as the
//!    paper's smoothing example.
//!
//! `tiled_vector(n)[ e | q ]` dispatches to **AxisReduce** (Fig. 1 row
//! sums) or GroupByAggregate. Anything else falls back to the reference
//! interpreter over sparsified arrays (`LocalFallback`), preserving
//! semantics at the cost of distribution.

use crate::analysis::{
    decompose, extract_aggregates, inline_lets, Aggregate, Decomposed, GenKind, VarClasses,
};
use crate::env::{ArrayStats, DistArray, PlanEnv};
use crate::scalar::{IdxFn, ScalarFn};
use comp::ast::{Expr, Monoid, Pattern, Qualifier};
use comp::errors::CompError;
use comp::normalize::normalize;

/// How to execute a contraction (matrix multiplication).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatMulStrategy {
    /// §4's unoptimized translation: join on the contracted index, tile
    /// products, then `groupByKey` collecting all partial products into
    /// lists before reducing — the "SAC (join + group-by)" series of
    /// Fig. 4.B.
    JoinGroupBy,
    /// §5.3: join on the contracted index, tile products, `reduceByKey`
    /// (map-side combined).
    ReduceByKey,
    /// §5.4: group-by-join (SUMMA) — replicate tiles to result coordinates,
    /// cogroup once, reduce locally.
    GroupByJoin,
    /// MLlib-style broadcast join: collect the smaller operand on the
    /// driver, [`sparkline::Context::broadcast`] it, and compute partial
    /// output tiles map-side — a single combine round, no join shuffle.
    /// Only sensible when one side fits the broadcast budget.
    Broadcast,
    /// Pick the cheapest of the above from registered array statistics
    /// (estimated shuffle bytes per candidate). This is the default.
    Auto,
}

/// The planner's record of one cost-based physical choice, carried on the
/// plan node so execution can emit it as a `plan.chosen` event.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// Chosen strategy tag, e.g. `contraction/broadcast`.
    pub chosen: &'static str,
    /// False when the strategy was pinned by configuration.
    pub auto: bool,
    /// Estimated shuffle bytes of the chosen strategy.
    pub est_shuffle_bytes: u64,
    /// Every candidate considered, with its estimated shuffle bytes
    /// (ineligible candidates — e.g. broadcast over budget — are absent).
    pub candidates: Vec<(&'static str, u64)>,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Shuffle partition count; `0` (the default) derives the count from
    /// the context's worker pool and the estimated output size at execution
    /// time. Any non-zero value pins it.
    pub partitions: usize,
    /// Strategy for contraction plans ([`MatMulStrategy::Auto`] picks from
    /// statistics).
    pub matmul: MatMulStrategy,
    /// Largest operand (estimated bytes) the broadcast contraction path may
    /// ship to every executor.
    pub broadcast_budget: u64,
    /// Threads for intra-tile kernels (the paper's `.par`); 1 = sequential.
    pub tile_threads: usize,
    /// Permit falling back to the driver-side reference interpreter.
    pub allow_local_fallback: bool,
    /// Automatically persist inputs a plan references more than once (e.g.
    /// both sides of `A*A`) through the block manager, so their lineage is
    /// computed once per execution instead of once per reference.
    pub auto_persist: bool,
    /// Collapse elementwise regions into single fused tile programs
    /// ([`Plan::FusedEltwise`]); `false` keeps the per-node interpreter
    /// ([`Plan::Eltwise`], the bit-identical oracle).
    pub fuse_eltwise: bool,
    /// Re-plan at stage boundaries from measured statistics: probe the
    /// materialized inputs of an auto-chosen shuffling strategy, overlay the
    /// observed [`crate::env::ArrayStats`], and re-run the candidate cost
    /// model on the not-yet-lowered remainder (Spark-AQE shape). `false`
    /// freezes the registration-time plan — the bit-exactness oracle.
    /// Defaults to on; env `SAC_ADAPTIVE=0` opts out process-wide.
    pub adaptive: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            partitions: 0,
            matmul: MatMulStrategy::Auto,
            broadcast_budget: 1 << 20,
            tile_threads: 1,
            allow_local_fallback: true,
            auto_persist: true,
            fuse_eltwise: true,
            adaptive: std::env::var("SAC_ADAPTIVE")
                .map(|v| v != "0")
                .unwrap_or(true),
        }
    }
}

/// Output shape of a planned comprehension.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputKind {
    Matrix { rows: i64, cols: i64 },
    Vector { len: i64 },
    Local,
}

/// Key shape for the generic group-by plan.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupKey {
    /// 2-D key `(k1, k2)` — matrix output.
    Cell(String, String),
    /// 1-D key — vector output.
    Index(String),
}

/// A selected physical plan.
#[derive(Clone)]
pub enum Plan {
    /// §5.1 element-wise over co-indexed tiled matrices.
    Eltwise {
        /// Input matrix names, in value-slot order.
        inputs: Vec<String>,
        /// Head key is `(col, row)` — transpose the output.
        transposed: bool,
        /// Value over slots `[val_0, ..., val_{k-1}, row, col]`.
        value: ScalarFn,
        /// Optional guard (same slots); failing elements become 0.
        guard: Option<ScalarFn>,
    },
    /// §5.1 elementwise after the trace-and-fuse pass: the whole region
    /// (value, guard masking, scalar constants) collapsed into one postfix
    /// tile program, executed as a single kernel pass per tile by
    /// `tiled::kernel::fused_eltwise`. Bit-identical to the unfused
    /// [`Plan::Eltwise`] oracle.
    FusedEltwise {
        /// Input matrix names, in slot order.
        inputs: Vec<String>,
        /// Head key is `(col, row)` — transpose the output.
        transposed: bool,
        /// Constant-folded program over slots `[val_0, ..., val_{k-1}]`
        /// (index-reading regions do not fuse).
        program: tiled::fused::FusedProgram,
        /// Post-order operator tags of the source region (from the
        /// normalized comprehension head), for the `region_fused` event.
        region_ops: Vec<String>,
    },
    /// §5.3/§5.4 contraction (matrix multiplication shaped).
    Contraction {
        left: String,
        right: String,
        /// The contracted index of the left input is its **row** (so the
        /// left operand must be transposed tile-wise first).
        left_contract_row: bool,
        /// The contracted index of the right input is its **column**.
        right_contract_col: bool,
        /// Head key is `(right_free, left_free)` — transpose the result.
        swap_output: bool,
        /// Element combine over slots `[a, b]` (must reduce with `+`).
        value: ScalarFn,
        /// Resolved physical strategy (never [`MatMulStrategy::Auto`]).
        strategy: MatMulStrategy,
        /// How the strategy was chosen (candidate cost estimates).
        decision: PlanDecision,
    },
    /// Fig. 1 row/column reduction to a tiled vector.
    AxisReduce {
        input: String,
        /// Group by the row index (true) or the column index (false).
        by_row: bool,
        monoid: Monoid,
        /// Per-element input over slots `[val, row, col]`.
        value: ScalarFn,
    },
    /// §5.2 rule 19: element-wise index remap with tile replication.
    IndexRemap {
        input: String,
        /// Destination row index over slots `[i, j]`.
        fi: IdxFn,
        /// Destination column index over slots `[i, j]`.
        fj: IdxFn,
        /// Value over slots `[val, i, j]`.
        value: ScalarFn,
    },
    /// §5.3 generic single-input group-by with aggregate planes.
    GroupByAggregate {
        input: String,
        /// The matrix generator's bound names `(row, col, val)`.
        gen_vars: (String, String, String),
        /// Qualifiers between the generator and the group-by (ranges,
        /// lets, guards), evaluated per element by the reference evaluator.
        inner_quals: Vec<Qualifier>,
        key: GroupKey,
        /// Optional key expression (`group by p: e`).
        key_expr: Option<Expr>,
        aggregates: Vec<Aggregate>,
        /// Finalizer over `%aggN` slots.
        finalizer: Expr,
    },
    /// Matrix–vector contraction `y_i = Σ_k f(A_ik, x_k)` (and the
    /// transposed orientation): join tiles with vector blocks on the
    /// contracted block index, partial block products, `reduceByKey`.
    MatVec {
        matrix: String,
        vector: String,
        /// The contracted index of the matrix is its **row** (computes
        /// `Aᵀ·x`).
        contract_row: bool,
        /// Element combine over slots `[a, x]` (reduced with `+`).
        value: ScalarFn,
        /// Ship the vector to every task via [`sparkline::Context::broadcast`]
        /// instead of joining — zero shuffle stages.
        broadcast: bool,
        /// How the physical path was chosen.
        decision: PlanDecision,
    },
    /// Element-wise over co-indexed tiled vectors (rule 17, 1-D).
    VectorEltwise {
        /// Input vector names, in value-slot order.
        inputs: Vec<String>,
        /// Value over slots `[val_0, ..., val_{k-1}, idx]`.
        value: ScalarFn,
        /// Optional guard (same slots); failing elements become 0.
        guard: Option<ScalarFn>,
    },
    /// Reference interpreter over sparsified arrays.
    LocalFallback { expr: Expr },
}

/// A plan plus its output shape.
#[derive(Clone)]
pub struct Planned {
    pub plan: Plan,
    pub output: OutputKind,
}

impl Plan {
    /// Names of the distributed arrays this plan reads, one entry per
    /// reference (a name appearing twice means the plan evaluates that
    /// input's lineage twice — the signal the auto-persist pass looks for).
    pub fn input_names(&self) -> Vec<&str> {
        match self {
            Plan::Eltwise { inputs, .. }
            | Plan::FusedEltwise { inputs, .. }
            | Plan::VectorEltwise { inputs, .. } => inputs.iter().map(String::as_str).collect(),
            Plan::Contraction { left, right, .. } => vec![left, right],
            Plan::AxisReduce { input, .. }
            | Plan::IndexRemap { input, .. }
            | Plan::GroupByAggregate { input, .. } => vec![input],
            Plan::MatVec { matrix, vector, .. } => vec![matrix, vector],
            Plan::LocalFallback { .. } => vec![],
        }
    }

    /// Human-readable strategy name (used by plan-shape tests and explain).
    pub fn strategy_name(&self) -> &'static str {
        match self {
            Plan::Eltwise { .. } => "eltwise",
            // Contains "eltwise" so shape assertions on the logical
            // operation hold whether or not fusion is enabled.
            Plan::FusedEltwise { .. } => "eltwise/fused",
            Plan::Contraction { strategy, .. } => contraction_tag(*strategy),
            Plan::AxisReduce { .. } => "axisReduce",
            Plan::MatVec {
                broadcast: true, ..
            } => "matVec/broadcast",
            Plan::MatVec { .. } => "matVec",
            Plan::VectorEltwise { .. } => "vectorEltwise",
            Plan::IndexRemap { .. } => "indexRemap",
            Plan::GroupByAggregate { .. } => "groupByAggregate",
            Plan::LocalFallback { .. } => "localFallback",
        }
    }

    /// The cost-based decision record, for plans that make one.
    pub fn decision(&self) -> Option<&PlanDecision> {
        match self {
            Plan::Contraction { decision, .. } | Plan::MatVec { decision, .. } => Some(decision),
            _ => None,
        }
    }
}

/// Strategy tag of a resolved contraction strategy.
///
/// # Panics
/// On [`MatMulStrategy::Auto`], which plan selection always resolves away.
pub(crate) fn contraction_tag(strategy: MatMulStrategy) -> &'static str {
    match strategy {
        MatMulStrategy::JoinGroupBy => "contraction/joinGroupBy",
        MatMulStrategy::ReduceByKey => "contraction/reduceByKey",
        MatMulStrategy::GroupByJoin => "contraction/groupByJoin",
        MatMulStrategy::Broadcast => "contraction/broadcast",
        MatMulStrategy::Auto => unreachable!("Auto must be resolved at plan time"),
    }
}

impl Planned {
    /// One-line plan explanation.
    pub fn explain(&self) -> String {
        let shape = match &self.output {
            OutputKind::Matrix { rows, cols } => format!("matrix {rows}x{cols}"),
            OutputKind::Vector { len } => format!("vector {len}"),
            OutputKind::Local => "local value".to_string(),
        };
        format!("{} -> {}", self.plan.strategy_name(), shape)
    }
}

/// Plan a (possibly unnormalized) comprehension expression.
pub fn plan(expr: &Expr, env: &PlanEnv, config: &PlanConfig) -> Result<Planned, CompError> {
    let expr = normalize(expr.clone());
    let planned = match &expr {
        Expr::Build {
            builder,
            args,
            body,
        } if builder == "tiled" && args.len() == 2 => {
            let rows = eval_int_arg(&args[0], env)?;
            let cols = eval_int_arg(&args[1], env)?;
            let output = OutputKind::Matrix { rows, cols };
            match plan_matrix_body(body, env, config) {
                Ok(plan) => Planned { plan, output },
                Err(e) => fallback(&expr, output, env, config, e)?,
            }
        }
        Expr::Build {
            builder,
            args,
            body,
        } if builder == "tiled_vector" && args.len() == 1 => {
            let len = eval_int_arg(&args[0], env)?;
            let output = OutputKind::Vector { len };
            match plan_vector_body(body, env, config) {
                Ok(plan) => Planned { plan, output },
                Err(e) => fallback(&expr, output, env, config, e)?,
            }
        }
        other => {
            let output = OutputKind::Local;
            fallback(
                other,
                output,
                env,
                config,
                CompError::plan("not a tiled builder"),
            )?
        }
    };
    Ok(planned)
}

fn fallback(
    expr: &Expr,
    output: OutputKind,
    _env: &PlanEnv,
    config: &PlanConfig,
    cause: CompError,
) -> Result<Planned, CompError> {
    if !config.allow_local_fallback {
        return Err(CompError::plan(format!(
            "no distributed plan applies and local fallback is disabled: {}",
            cause.message
        )));
    }
    Ok(Planned {
        plan: Plan::LocalFallback { expr: expr.clone() },
        output,
    })
}

fn eval_int_arg(e: &Expr, env: &PlanEnv) -> Result<i64, CompError> {
    let mut cenv = comp::Env::new();
    for name in e.free_vars() {
        if let Some(v) = env.scalar(&name) {
            cenv.bind(name.clone(), v.clone());
        }
    }
    comp::eval(e, &mut cenv)?.as_i64()
}

fn body_comprehension(body: &Expr) -> Result<&comp::Comprehension, CompError> {
    match body {
        Expr::Comprehension(c) => Ok(c),
        _ => Err(CompError::plan("builder body must be a comprehension")),
    }
}

/// Head must be `(key, value)`.
fn split_head(head: &Expr) -> Result<(&Expr, &Expr), CompError> {
    match head {
        Expr::Tuple(items) if items.len() == 2 => Ok((&items[0], &items[1])),
        other => Err(CompError::plan(format!(
            "head must be a (key, value) pair: {other}"
        ))),
    }
}

fn gen_kind(env: &PlanEnv) -> impl Fn(&str) -> GenKind + '_ {
    |n: &str| match env.array(n) {
        Some(DistArray::Matrix(_)) => GenKind::Matrix,
        Some(DistArray::Vector(_)) => GenKind::Vector,
        _ => GenKind::Unknown,
    }
}

fn plan_matrix_body(body: &Expr, env: &PlanEnv, config: &PlanConfig) -> Result<Plan, CompError> {
    let c = body_comprehension(body)?;
    let d = decompose(&c.head, &c.qualifiers, &gen_kind(env))?;
    if d.post_group_quals > 0 {
        return Err(CompError::plan(
            "qualifiers after group-by are not supported by distributed plans",
        ));
    }
    if d.group_by.is_none() {
        if let Ok(p) = plan_eltwise(&d, env, config) {
            return Ok(p);
        }
        return plan_index_remap(&d, env);
    }
    if let Ok(p) = plan_contraction(&d, env, config) {
        return Ok(p);
    }
    plan_group_by_aggregate(&d, env, GroupShape::Matrix)
}

fn plan_vector_body(body: &Expr, env: &PlanEnv, config: &PlanConfig) -> Result<Plan, CompError> {
    let c = body_comprehension(body)?;
    let d = decompose(&c.head, &c.qualifiers, &gen_kind(env))?;
    if d.post_group_quals > 0 {
        return Err(CompError::plan(
            "qualifiers after group-by are not supported by distributed plans",
        ));
    }
    if let Ok(p) = plan_axis_reduce(&d, env) {
        return Ok(p);
    }
    if let Ok(p) = plan_mat_vec(&d, env, config) {
        return Ok(p);
    }
    if let Ok(p) = plan_vector_eltwise(&d, env) {
        return Ok(p);
    }
    plan_group_by_aggregate(&d, env, GroupShape::Vector)
}

/// §5.1 rule 17 (plus the trace-and-fuse pass when the region qualifies).
fn plan_eltwise(d: &Decomposed, env: &PlanEnv, config: &PlanConfig) -> Result<Plan, CompError> {
    if d.matrix_gens.is_empty()
        || !d.vector_gens.is_empty()
        || !d.range_gens.is_empty()
        || d.group_by.is_some()
    {
        return Err(CompError::plan("not an element-wise comprehension"));
    }
    let classes = VarClasses::from_equalities(&d.var_equalities);
    let row_class = classes.find(&d.matrix_gens[0].row);
    let col_class = classes.find(&d.matrix_gens[0].col);
    if row_class == col_class {
        return Err(CompError::plan("row and column indices equated (diagonal)"));
    }
    for g in &d.matrix_gens {
        if classes.find(&g.row) != row_class || classes.find(&g.col) != col_class {
            return Err(CompError::plan("generators are not joined on both indices"));
        }
    }
    // Equalities between non-index (value) variables are filters, not join
    // keys — keep them as guards.
    let index_vars: Vec<&String> = d
        .matrix_gens
        .iter()
        .flat_map(|g| [&g.row, &g.col])
        .collect();
    let mut extra_guards: Vec<Expr> = Vec::new();
    for (x, y) in &d.var_equalities {
        if !index_vars.contains(&x) || !index_vars.contains(&y) {
            extra_guards.push(Expr::BinOp(
                comp::BinOp::Eq,
                Box::new(Expr::Var(x.clone())),
                Box::new(Expr::Var(y.clone())),
            ));
        }
    }
    let head = inline_lets(&d.head, &d.lets);
    let (key, value_expr) = split_head(&head)?;
    let Expr::Tuple(kij) = key else {
        return Err(CompError::plan("matrix head key must be (i, j)"));
    };
    let [Expr::Var(ka), Expr::Var(kb)] = kij.as_slice() else {
        return Err(CompError::plan("matrix head key must be index variables"));
    };
    let transposed = if classes.find(ka) == row_class && classes.find(kb) == col_class {
        false
    } else if classes.find(ka) == col_class && classes.find(kb) == row_class {
        true
    } else {
        return Err(CompError::plan("head key is not the generator indices"));
    };

    // Slots: all value vars (and their equality aliases resolve to the same
    // slot via class representatives), then row, then col.
    let mut slots: Vec<String> = d.matrix_gens.iter().map(|g| g.val.clone()).collect();
    slots.push(d.matrix_gens[0].row.clone());
    slots.push(d.matrix_gens[0].col.clone());
    // Rewrite index aliases to the canonical generator's names.
    let canon = |e: &Expr| canonicalize_vars(e, d, &classes);
    let consts = |v: &str| env.float_scalar(v);
    let value = ScalarFn::compile(&canon(value_expr), &slots, &consts)?;
    let all_guards: Vec<Expr> = d.other_guards.iter().cloned().chain(extra_guards).collect();
    let guard_expr = match all_guards.as_slice() {
        [] => None,
        guards => {
            let mut conj = canon(&guards[0]);
            for g in &guards[1..] {
                conj = Expr::BinOp(comp::BinOp::And, Box::new(conj), Box::new(canon(g)));
            }
            Some(conj)
        }
    };
    let guard = guard_expr
        .as_ref()
        .map(|c| ScalarFn::compile(c, &slots, &consts))
        .transpose()?;
    let inputs: Vec<String> = d.matrix_gens.iter().map(|g| g.name.clone()).collect();
    if config.fuse_eltwise {
        if let Some(program) = crate::fuse::fuse_region(inputs.len(), &value, guard.as_ref()) {
            // Source op tags (post-order over the canonicalized head value,
            // then the guard region) for the `region_fused` event.
            let mut region_ops: Vec<String> = canon(value_expr)
                .op_sequence()
                .into_iter()
                .map(str::to_string)
                .collect();
            if let Some(conj) = &guard_expr {
                region_ops.extend(conj.op_sequence().into_iter().map(str::to_string));
                region_ops.push("select".to_string());
            }
            return Ok(Plan::FusedEltwise {
                inputs,
                transposed,
                program,
                region_ops,
            });
        }
    }
    Ok(Plan::Eltwise {
        inputs,
        transposed,
        value,
        guard,
    })
}

/// Rewrite each index variable to its class representative (the first
/// generator's index with that class, in generator order) so slot lookup
/// finds it.
fn canonicalize_vars(e: &Expr, d: &Decomposed, classes: &VarClasses) -> Expr {
    let all_idx: Vec<String> = d
        .matrix_gens
        .iter()
        .flat_map(|g| [g.row.clone(), g.col.clone()])
        .collect();
    let mut reps: Vec<(String, String)> = Vec::new();
    for idx in &all_idx {
        let class = classes.find(idx);
        if !reps.iter().any(|(c, _)| *c == class) {
            reps.push((class, idx.clone()));
        }
    }
    let mut out = e.clone();
    for idx in &all_idx {
        let class = classes.find(idx);
        let rep = &reps
            .iter()
            .find(|(c, _)| *c == class)
            .expect("representative registered")
            .1;
        if idx != rep {
            out = crate::analysis::substitute(&out, idx, &Expr::Var(rep.clone()));
        }
    }
    out
}

/// §5.3/§5.4 contraction.
fn plan_contraction(d: &Decomposed, env: &PlanEnv, config: &PlanConfig) -> Result<Plan, CompError> {
    if d.matrix_gens.len() != 2
        || !d.vector_gens.is_empty()
        || !d.range_gens.is_empty()
        || !d.other_guards.is_empty()
    {
        return Err(CompError::plan("not a contraction comprehension"));
    }
    if d.var_equalities.len() != 1 {
        return Err(CompError::plan(
            "contraction requires exactly the contracted-index equality",
        ));
    }
    let Some((Pattern::Tuple(kp), None)) = &d.group_by else {
        return Err(CompError::plan("contraction requires `group by (i,j)`"));
    };
    let [Pattern::Var(kx), Pattern::Var(ky)] = kp.as_slice() else {
        return Err(CompError::plan("contraction key must be two variables"));
    };
    let classes = VarClasses::from_equalities(&d.var_equalities);
    let (a, b) = (&d.matrix_gens[0], &d.matrix_gens[1]);

    // Find the contracted pair: one index of a equated with one index of b.
    let mut contracted: Option<(bool, bool)> = None; // (a_row_contracted, b_col_contracted)
    for (a_idx, a_is_row) in [(&a.row, true), (&a.col, false)] {
        for (b_idx, b_is_row) in [(&b.row, true), (&b.col, false)] {
            if classes.same(a_idx, b_idx) {
                if contracted.is_some() {
                    return Err(CompError::plan("more than one contracted index pair"));
                }
                contracted = Some((a_is_row, !b_is_row));
            }
        }
    }
    let Some((left_contract_row, right_contract_col)) = contracted else {
        return Err(CompError::plan("no contracted index pair"));
    };
    let a_free = if left_contract_row { &a.col } else { &a.row };
    let b_free = if right_contract_col { &b.row } else { &b.col };

    let swap_output = if classes.same(kx, a_free) && classes.same(ky, b_free) {
        false
    } else if classes.same(kx, b_free) && classes.same(ky, a_free) {
        true
    } else {
        return Err(CompError::plan(
            "group-by key is not the pair of free indices",
        ));
    };

    let head = inline_lets(&d.head, &d.lets);
    let (_key, value) = split_head(&head)?;
    let Expr::Reduce(Monoid::Sum, inner) = value else {
        return Err(CompError::plan(
            "contraction head must be a sum reduction `+/v`",
        ));
    };
    let slots = vec![a.val.clone(), b.val.clone()];
    let value = ScalarFn::compile(inner, &slots, &|v| env.float_scalar(v))?;
    let (strategy, decision) = choose_contraction_strategy(
        env,
        config,
        &a.name,
        &b.name,
        left_contract_row,
        right_contract_col,
    );
    Ok(Plan::Contraction {
        left: a.name.clone(),
        right: b.name.clone(),
        left_contract_row,
        right_contract_col,
        swap_output,
        value,
        strategy,
        decision,
    })
}

// ---------------------------------------------------------------------------
// Cost-based strategy selection.
// ---------------------------------------------------------------------------

/// Fixed per-shuffle-round cost, in byte equivalents. A pure byte model
/// never prefers the fewer-round group-by-join on small grids (its
/// replicated join input weighs at least as much as reduceByKey's combined
/// output there), so each shuffle barrier also pays this latency proxy.
const ROUND_COST: u64 = 16 << 10;

/// Nominal partition count for cost estimation when autotuning defers the
/// real choice to execution time.
pub(crate) fn nominal_partitions(config: &PlanConfig) -> u64 {
    if config.partitions > 0 {
        config.partitions as u64
    } else {
        8
    }
}

/// Estimated costs (shuffle bytes + round latency) of every eligible
/// contraction strategy, in tie-break preference order. Also re-invoked by
/// the adaptive stage driver with measured stats overlaid on `env`.
pub(crate) fn contraction_candidates(
    env: &PlanEnv,
    config: &PlanConfig,
    left: &str,
    right: &str,
    left_contract_row: bool,
    right_contract_col: bool,
) -> Vec<(MatMulStrategy, u64)> {
    let (Some(sa), Some(sb)) = (env.stats(left), env.stats(right)) else {
        return Vec::new();
    };
    // Block-grid shape after orienting the contraction: `bra` free blocks on
    // the left, `bcb` on the right, `k` contracted blocks.
    let (bra, k) = if left_contract_row {
        (sa.block_cols as u64, sa.block_rows as u64)
    } else {
        (sa.block_rows as u64, sa.block_cols as u64)
    };
    let bcb = if right_contract_col {
        sb.block_rows as u64
    } else {
        sb.block_cols as u64
    };
    let out_tiles = bra * bcb;
    let tile = ArrayStats::dense_tile_bytes(sa.tile_size.max(sb.tile_size));
    let (tiles_a, wa) = (sa.num_tiles(), sa.tile_wire_bytes());
    let (tiles_b, wb) = (sb.num_tiles(), sb.tile_wire_bytes());
    let p = nominal_partitions(config);

    let mut out = Vec::new();
    // Broadcast: ship the small side everywhere, partial tiles map-side,
    // one combine round. Eligible only under the byte budget.
    let small = sa.estimated_bytes.min(sb.estimated_bytes);
    if small <= config.broadcast_budget {
        out.push((
            MatMulStrategy::Broadcast,
            small + out_tiles * tile + ROUND_COST,
        ));
    }
    // Group-by-join (§5.4): each side replicated across the other's free
    // blocks, one cogroup round.
    out.push((
        MatMulStrategy::GroupByJoin,
        tiles_a * wa * bcb + tiles_b * wb * bra + 2 * ROUND_COST,
    ));
    // Join + reduceByKey (§5.3): both sides shuffled once for the join,
    // partial products map-side combined down to at most min(p, k) partial
    // tiles per output coordinate.
    out.push((
        MatMulStrategy::ReduceByKey,
        tiles_a * wa + tiles_b * wb + out_tiles * p.min(k) * tile + 3 * ROUND_COST,
    ));
    // Join + groupByKey (§4): every elementary tile product crosses the wire
    // uncombined.
    out.push((
        MatMulStrategy::JoinGroupBy,
        tiles_a * wa + tiles_b * wb + bra * k * bcb * tile + 3 * ROUND_COST,
    ));
    out
}

/// Resolve the configured contraction strategy: pinned configs are honored
/// verbatim; [`MatMulStrategy::Auto`] picks the cheapest candidate.
fn choose_contraction_strategy(
    env: &PlanEnv,
    config: &PlanConfig,
    left: &str,
    right: &str,
    left_contract_row: bool,
    right_contract_col: bool,
) -> (MatMulStrategy, PlanDecision) {
    let candidates = contraction_candidates(
        env,
        config,
        left,
        right,
        left_contract_row,
        right_contract_col,
    );
    let (strategy, auto) = match config.matmul {
        MatMulStrategy::Auto => {
            // First strictly-cheapest candidate wins; the preference order of
            // `contraction_candidates` breaks ties toward fewer rounds.
            let best = candidates
                .iter()
                .copied()
                .min_by_key(|&(_, cost)| cost)
                .map(|(s, _)| s)
                .unwrap_or(MatMulStrategy::GroupByJoin);
            (best, true)
        }
        pinned => (pinned, false),
    };
    let est = candidates
        .iter()
        .find(|(s, _)| *s == strategy)
        .map(|&(_, c)| c)
        .unwrap_or(0);
    let decision = PlanDecision {
        chosen: contraction_tag(strategy),
        auto,
        est_shuffle_bytes: est,
        candidates: candidates
            .into_iter()
            .map(|(s, c)| (contraction_tag(s), c))
            .collect(),
    };
    (strategy, decision)
}

/// Fig. 1 axis reduction.
fn plan_axis_reduce(d: &Decomposed, env: &PlanEnv) -> Result<Plan, CompError> {
    if d.matrix_gens.len() != 1
        || !d.vector_gens.is_empty()
        || !d.range_gens.is_empty()
        || !d.other_guards.is_empty()
        || !d.var_equalities.is_empty()
    {
        return Err(CompError::plan("not an axis reduction"));
    }
    let Some((Pattern::Var(k), None)) = &d.group_by else {
        return Err(CompError::plan("axis reduction requires `group by i`"));
    };
    let g = &d.matrix_gens[0];
    let by_row = if k == &g.row {
        true
    } else if k == &g.col {
        false
    } else {
        return Err(CompError::plan("group-by key is not a generator index"));
    };
    let head = inline_lets(&d.head, &d.lets);
    let (key, value) = split_head(&head)?;
    if key != &Expr::Var(k.clone()) {
        return Err(CompError::plan("head key must be the group-by index"));
    }
    let Expr::Reduce(monoid, inner) = value else {
        return Err(CompError::plan("head value must be a reduction"));
    };
    let slots = vec![g.val.clone(), g.row.clone(), g.col.clone()];
    let value = ScalarFn::compile(inner, &slots, &|v| env.float_scalar(v))?;
    Ok(Plan::AxisReduce {
        input: g.name.clone(),
        by_row,
        monoid: *monoid,
        value,
    })
}

/// §5.2 rule 19.
fn plan_index_remap(d: &Decomposed, env: &PlanEnv) -> Result<Plan, CompError> {
    if d.matrix_gens.len() != 1
        || !d.vector_gens.is_empty()
        || !d.range_gens.is_empty()
        || d.group_by.is_some()
        || !d.other_guards.is_empty()
    {
        return Err(CompError::plan("not an index remap"));
    }
    let g = &d.matrix_gens[0];
    let head = inline_lets(&d.head, &d.lets);
    let (key, value) = split_head(&head)?;
    let Expr::Tuple(kij) = key else {
        return Err(CompError::plan("matrix head key must be a pair"));
    };
    let [e1, e2] = kij.as_slice() else {
        return Err(CompError::plan("matrix head key must be a pair"));
    };
    let idx_slots = vec![g.row.clone(), g.col.clone()];
    let iconsts = |v: &str| env.int_scalar(v);
    let fi = IdxFn::compile(e1, &idx_slots, &iconsts)?;
    let fj = IdxFn::compile(e2, &idx_slots, &iconsts)?;
    let val_slots = vec![g.val.clone(), g.row.clone(), g.col.clone()];
    let value = ScalarFn::compile(value, &val_slots, &|v| env.float_scalar(v))?;
    Ok(Plan::IndexRemap {
        input: g.name.clone(),
        fi,
        fj,
        value,
    })
}

/// Matrix–vector contraction: one matrix generator, one vector generator,
/// joined on one matrix index, grouped by the other.
fn plan_mat_vec(d: &Decomposed, env: &PlanEnv, config: &PlanConfig) -> Result<Plan, CompError> {
    if d.matrix_gens.len() != 1
        || d.vector_gens.len() != 1
        || !d.range_gens.is_empty()
        || !d.other_guards.is_empty()
        || d.var_equalities.len() != 1
    {
        return Err(CompError::plan("not a matrix-vector contraction"));
    }
    let Some((Pattern::Var(g), None)) = &d.group_by else {
        return Err(CompError::plan("matrix-vector requires `group by i`"));
    };
    let m = &d.matrix_gens[0];
    let v = &d.vector_gens[0];
    let classes = VarClasses::from_equalities(&d.var_equalities);
    let contract_row = if classes.same(&m.col, &v.idx) {
        false
    } else if classes.same(&m.row, &v.idx) {
        true
    } else {
        return Err(CompError::plan(
            "vector index is not joined with the matrix",
        ));
    };
    let free = if contract_row { &m.col } else { &m.row };
    if !classes.same(g, free) {
        return Err(CompError::plan("group-by key is not the free matrix index"));
    }
    let head = inline_lets(&d.head, &d.lets);
    let (key, value) = split_head(&head)?;
    if key != &Expr::Var(g.clone()) {
        return Err(CompError::plan("head key must be the group-by index"));
    }
    let Expr::Reduce(Monoid::Sum, inner) = value else {
        return Err(CompError::plan("matrix-vector head must be `+/v`"));
    };
    let slots = vec![m.val.clone(), v.val.clone()];
    let value = ScalarFn::compile(inner, &slots, &|x| env.float_scalar(x))?;
    let (broadcast, decision) = choose_mat_vec_path(env, config, &m.name, &v.name, contract_row);
    Ok(Plan::MatVec {
        matrix: m.name.clone(),
        vector: v.name.clone(),
        contract_row,
        value,
        broadcast,
        decision,
    })
}

/// Estimated costs of both mat-vec paths, in tie-break preference order
/// (broadcast first when it fits the budget). Also re-invoked by the
/// adaptive stage driver with measured stats overlaid on `env`.
pub(crate) fn mat_vec_candidates(
    env: &PlanEnv,
    config: &PlanConfig,
    matrix: &str,
    vector: &str,
    contract_row: bool,
) -> Vec<(&'static str, u64)> {
    let mut candidates: Vec<(&'static str, u64)> = Vec::new();
    if let (Some(sm), Some(sv)) = (env.stats(matrix), env.stats(vector)) {
        let out_blocks = if contract_row {
            sm.block_cols as u64
        } else {
            sm.block_rows as u64
        };
        let k = if contract_row {
            sm.block_rows as u64
        } else {
            sm.block_cols as u64
        };
        let block = 8 + 4 + 8 * sm.tile_size as u64;
        if sv.estimated_bytes <= config.broadcast_budget {
            // Collect + broadcast the vector, merge partials on the driver:
            // zero shuffle rounds.
            candidates.push(("matVec/broadcast", sv.estimated_bytes + out_blocks * block));
        }
        candidates.push((
            "matVec",
            sm.num_tiles() * sm.tile_wire_bytes()
                + sv.estimated_bytes
                + out_blocks * nominal_partitions(config).min(k) * block
                + 3 * ROUND_COST,
        ));
    }
    candidates
}

/// Physical path for a matrix–vector contraction: broadcast the vector when
/// it fits the budget (no shuffle at all), else join + reduceByKey. A pinned
/// `matmul` strategy pins the analogous mat-vec path.
fn choose_mat_vec_path(
    env: &PlanEnv,
    config: &PlanConfig,
    matrix: &str,
    vector: &str,
    contract_row: bool,
) -> (bool, PlanDecision) {
    let candidates = mat_vec_candidates(env, config, matrix, vector, contract_row);
    let (broadcast, auto) = match config.matmul {
        MatMulStrategy::Auto => {
            let best = candidates.iter().copied().min_by_key(|&(_, c)| c);
            (matches!(best, Some(("matVec/broadcast", _))), true)
        }
        MatMulStrategy::Broadcast => (true, false),
        _ => (false, false),
    };
    let chosen = if broadcast {
        "matVec/broadcast"
    } else {
        "matVec"
    };
    let est = candidates
        .iter()
        .find(|(tag, _)| *tag == chosen)
        .map(|&(_, c)| c)
        .unwrap_or(0);
    (
        broadcast,
        PlanDecision {
            chosen,
            auto,
            est_shuffle_bytes: est,
            candidates,
        },
    )
}

/// Element-wise over vectors joined on their index.
fn plan_vector_eltwise(d: &Decomposed, env: &PlanEnv) -> Result<Plan, CompError> {
    if d.vector_gens.is_empty()
        || !d.matrix_gens.is_empty()
        || !d.range_gens.is_empty()
        || d.group_by.is_some()
    {
        return Err(CompError::plan("not a vector element-wise comprehension"));
    }
    let classes = VarClasses::from_equalities(&d.var_equalities);
    let idx_class = classes.find(&d.vector_gens[0].idx);
    for g in &d.vector_gens {
        if classes.find(&g.idx) != idx_class {
            return Err(CompError::plan("vector generators are not joined on index"));
        }
    }
    let head = inline_lets(&d.head, &d.lets);
    let (key, value) = split_head(&head)?;
    let Expr::Var(k) = key else {
        return Err(CompError::plan(
            "vector head key must be the index variable",
        ));
    };
    if classes.find(k) != idx_class {
        return Err(CompError::plan("head key is not the generator index"));
    }
    // Canonicalize index aliases to the first generator's name.
    let canon_idx = d.vector_gens[0].idx.clone();
    let canon = |e: &Expr| {
        let mut out = e.clone();
        for g in &d.vector_gens[1..] {
            out = crate::analysis::substitute(&out, &g.idx, &Expr::Var(canon_idx.clone()));
        }
        out
    };
    let mut slots: Vec<String> = d.vector_gens.iter().map(|g| g.val.clone()).collect();
    slots.push(canon_idx.clone());
    let consts = |x: &str| env.float_scalar(x);
    let value = ScalarFn::compile(&canon(value), &slots, &consts)?;
    let guard = match d.other_guards.as_slice() {
        [] => None,
        guards => {
            let mut conj = canon(&guards[0]);
            for g in &guards[1..] {
                conj = Expr::BinOp(comp::BinOp::And, Box::new(conj), Box::new(canon(g)));
            }
            Some(ScalarFn::compile(&conj, &slots, &consts)?)
        }
    };
    Ok(Plan::VectorEltwise {
        inputs: d.vector_gens.iter().map(|g| g.name.clone()).collect(),
        value,
        guard,
    })
}

enum GroupShape {
    Matrix,
    Vector,
}

/// §5.3 generic group-by aggregation (stencils, histograms).
fn plan_group_by_aggregate(
    d: &Decomposed,
    _env: &PlanEnv,
    shape: GroupShape,
) -> Result<Plan, CompError> {
    if d.matrix_gens.len() != 1 || !d.vector_gens.is_empty() {
        return Err(CompError::plan(
            "generic group-by plan requires exactly one tiled matrix generator",
        ));
    }
    let g = &d.matrix_gens[0];
    let Some((key_pat, key_expr)) = &d.group_by else {
        return Err(CompError::plan("generic group-by plan requires a group-by"));
    };
    let key = match (shape, key_pat) {
        (GroupShape::Matrix, Pattern::Tuple(kp)) => {
            let [Pattern::Var(k1), Pattern::Var(k2)] = kp.as_slice() else {
                return Err(CompError::plan("matrix group key must be two variables"));
            };
            GroupKey::Cell(k1.clone(), k2.clone())
        }
        (GroupShape::Vector, Pattern::Var(k)) => GroupKey::Index(k.clone()),
        _ => return Err(CompError::plan("group key shape does not match builder")),
    };
    let head = inline_lets(&d.head, &d.lets);
    let (_key_part, value_part) = split_head(&head)?;
    let (finalizer, aggregates) = extract_aggregates(value_part);
    if aggregates.is_empty() {
        return Err(CompError::plan("group-by head has no aggregates"));
    }
    // Reconstruct the inner qualifiers between the generator and group-by:
    // range generators, lets, and guards, in a deterministic order (ranges,
    // lets, then guards — ranges and lets only depend on earlier bindings in
    // well-formed comprehensions).
    let mut inner_quals: Vec<Qualifier> = Vec::new();
    for r in &d.range_gens {
        inner_quals.push(Qualifier::Generator(
            Pattern::Var(r.var.clone()),
            Expr::Range {
                lo: Box::new(r.lo.clone()),
                hi: Box::new(r.hi.clone()),
                inclusive: r.inclusive,
            },
        ));
    }
    for (n, e) in &d.lets {
        inner_quals.push(Qualifier::Let(Pattern::Var(n.clone()), e.clone()));
    }
    for (x, y) in &d.var_equalities {
        inner_quals.push(Qualifier::Guard(Expr::BinOp(
            comp::BinOp::Eq,
            Box::new(Expr::Var(x.clone())),
            Box::new(Expr::Var(y.clone())),
        )));
    }
    for gd in &d.other_guards {
        inner_quals.push(Qualifier::Guard(gd.clone()));
    }
    Ok(Plan::GroupByAggregate {
        input: g.name.clone(),
        gen_vars: (g.row.clone(), g.col.clone(), g.val.clone()),
        inner_quals,
        key,
        key_expr: key_expr.clone(),
        aggregates,
        finalizer,
    })
}
