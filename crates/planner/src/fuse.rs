//! Trace-and-fuse: collapse an elementwise plan region into one tile
//! program.
//!
//! `plan_eltwise` compiles the head value and guard of an elementwise
//! comprehension into [`ScalarFn`] trees; executed directly, every tree
//! node costs one scratch vector per tile (`eval_batch`). This pass traces
//! the whole region — value, guard masking, scalar constants — into a
//! single postfix [`FusedProgram`] executed by `tiled::kernel::fused_eltwise`
//! in one pass per tile.
//!
//! # Region rules
//!
//! A region fuses when every slot it reads is a tile-value slot. Reading the
//! global row/column index planes (slots `>= n_inputs`) breaks the region:
//! the unfused path materializes those planes lazily per tile, and fusing
//! them would re-introduce exactly the buffers fusion exists to remove. Such
//! plans stay on [`Plan::Eltwise`](crate::plan::Plan). Guards do not break a
//! region — masking folds into the program as `select(guard, value, 0.0)`,
//! which is bit-identical to the unfused evaluate-then-mask (both produce
//! `+0.0` for failing elements).
//!
//! # Determinism
//!
//! Constant folding at trace time performs the same IEEE-754 operation the
//! unfused oracle performs per element, so a folded constant is bit-equal to
//! the value every element would have computed. The emitted program contains
//! the identical per-element op chain as `ScalarFn::eval_batch` — plain
//! `+ - * /`, no FMA contraction, no reassociation — so fused output is
//! bit-identical to the unfused plan on every backend and thread count.

use crate::scalar::ScalarFn;
use comp::ast::BinOp;
use tiled::fused::{CmpOp, ElemwiseOp, FusedProgram};

/// Trace an elementwise region (value + optional guard over `n_inputs` tile
/// slots) into a fused program. Returns `None` when the region does not
/// qualify: it reads the row/col index planes, or contains an operator with
/// no fused equivalent.
pub fn fuse_region(
    n_inputs: usize,
    value: &ScalarFn,
    guard: Option<&ScalarFn>,
) -> Option<FusedProgram> {
    let max_slot = value.max_slot().max(guard.and_then(ScalarFn::max_slot));
    if max_slot.is_some_and(|s| s >= n_inputs) {
        return None;
    }
    let mut ops = Vec::new();
    match guard {
        Some(g) => {
            // select(guard, value, 0.0): postfix order cond, then, else.
            let folded = trace(g, &mut ops).ok()?;
            if let Some(gv) = folded {
                // Constant guard: the mask is uniform; emit only the taken
                // side.
                ops.clear();
                if gv != 0.0 {
                    trace(value, &mut ops).ok()?;
                } else {
                    ops.push(ElemwiseOp::Const(0.0));
                }
            } else {
                trace(value, &mut ops).ok()?;
                ops.push(ElemwiseOp::Const(0.0));
                ops.push(ElemwiseOp::Select);
            }
        }
        None => {
            trace(value, &mut ops).ok()?;
        }
    }
    FusedProgram::new(ops).ok()
}

/// Post-order linearization with constant folding. Returns the constant
/// value when the traced subtree folded to a single `Const` op, so parents
/// can fold further. Folding uses the same f64 arithmetic the runtime would
/// — a folded subtree's constant is bit-equal to its per-element result.
fn trace(f: &ScalarFn, ops: &mut Vec<ElemwiseOp>) -> Result<Option<f64>, ()> {
    match f {
        ScalarFn::Const(x) => {
            ops.push(ElemwiseOp::Const(*x));
            Ok(Some(*x))
        }
        ScalarFn::Var(i) => {
            ops.push(ElemwiseOp::Slot(*i));
            Ok(None)
        }
        ScalarFn::Add(a, b) => bin(a, b, ElemwiseOp::Add, |x, y| x + y, ops),
        ScalarFn::Sub(a, b) => bin(a, b, ElemwiseOp::Sub, |x, y| x - y, ops),
        ScalarFn::Mul(a, b) => bin(a, b, ElemwiseOp::Mul, |x, y| x * y, ops),
        ScalarFn::Div(a, b) => bin(a, b, ElemwiseOp::Div, |x, y| x / y, ops),
        ScalarFn::Neg(a) => un(a, ElemwiseOp::Neg, |x| -x, ops),
        ScalarFn::Abs(a) => un(a, ElemwiseOp::Abs, f64::abs, ops),
        ScalarFn::Sqrt(a) => un(a, ElemwiseOp::Sqrt, f64::sqrt, ops),
        ScalarFn::If(c, t, e) => {
            let start = ops.len();
            if let Some(cv) = trace(c, ops)? {
                // Constant condition: selection is by value, so emitting
                // only the taken branch yields the same bits per element.
                ops.truncate(start);
                return trace(if cv != 0.0 { t } else { e }, ops);
            }
            trace(t, ops)?;
            trace(e, ops)?;
            ops.push(ElemwiseOp::Select);
            Ok(None)
        }
        ScalarFn::Cmp(op, a, b) => {
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Ne => CmpOp::Ne,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Le => CmpOp::Le,
                BinOp::Gt => CmpOp::Gt,
                BinOp::Ge => CmpOp::Ge,
                // ScalarFn::compile never emits other operators here.
                _ => return Err(()),
            };
            let ca = trace(a, ops)?;
            let cb = trace(b, ops)?;
            if let (Some(x), Some(y)) = (ca, cb) {
                ops.pop();
                ops.pop();
                let r = match cmp {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                let v = if r { 1.0 } else { 0.0 };
                ops.push(ElemwiseOp::Const(v));
                return Ok(Some(v));
            }
            ops.push(ElemwiseOp::Cmp(cmp));
            Ok(None)
        }
    }
}

fn bin(
    a: &ScalarFn,
    b: &ScalarFn,
    op: ElemwiseOp,
    fold: impl Fn(f64, f64) -> f64,
    ops: &mut Vec<ElemwiseOp>,
) -> Result<Option<f64>, ()> {
    let ca = trace(a, ops)?;
    let cb = trace(b, ops)?;
    if let (Some(x), Some(y)) = (ca, cb) {
        // Constant subtrees linearize to exactly one Const op each.
        ops.pop();
        ops.pop();
        let v = fold(x, y);
        ops.push(ElemwiseOp::Const(v));
        return Ok(Some(v));
    }
    ops.push(op);
    Ok(None)
}

fn un(
    a: &ScalarFn,
    op: ElemwiseOp,
    fold: impl Fn(f64) -> f64,
    ops: &mut Vec<ElemwiseOp>,
) -> Result<Option<f64>, ()> {
    if let Some(x) = trace(a, ops)? {
        ops.pop();
        let v = fold(x);
        ops.push(ElemwiseOp::Const(v));
        return Ok(Some(v));
    }
    ops.push(op);
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(f: ScalarFn) -> Box<ScalarFn> {
        Box::new(f)
    }

    #[test]
    fn traces_value_to_postfix() {
        // a + b * 0.5
        let value = ScalarFn::Add(
            b(ScalarFn::Var(0)),
            b(ScalarFn::Mul(b(ScalarFn::Var(1)), b(ScalarFn::Const(0.5)))),
        );
        let p = fuse_region(2, &value, None).expect("fuses");
        assert_eq!(p.signature(), "s0;s1;c0.5;mul;add");
    }

    #[test]
    fn constant_folding_collapses_scalar_subtrees() {
        // a * (2 * 3)  →  s0; c6; mul
        let value = ScalarFn::Mul(
            b(ScalarFn::Var(0)),
            b(ScalarFn::Mul(
                b(ScalarFn::Const(2.0)),
                b(ScalarFn::Const(3.0)),
            )),
        );
        let p = fuse_region(1, &value, None).expect("fuses");
        assert_eq!(p.signature(), "s0;c6.0;mul");
    }

    #[test]
    fn guard_folds_to_select() {
        let value = ScalarFn::Var(0);
        let guard = ScalarFn::Cmp(BinOp::Gt, b(ScalarFn::Var(1)), b(ScalarFn::Const(0.0)));
        let p = fuse_region(2, &value, Some(&guard)).expect("fuses");
        assert_eq!(p.signature(), "s1;c0.0;gt;s0;c0.0;select");
        assert_eq!(p.eval_scalar(&[7.0, 1.0]).to_bits(), 7.0f64.to_bits());
        assert_eq!(p.eval_scalar(&[7.0, -1.0]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn index_reading_regions_do_not_fuse() {
        // value reads slot 2 == row plane with 2 inputs.
        let value = ScalarFn::Add(b(ScalarFn::Var(0)), b(ScalarFn::Var(2)));
        assert!(fuse_region(2, &value, None).is_none());
        // the same slot index is fine when it is a tile slot.
        assert!(fuse_region(3, &value, None).is_some());
    }

    #[test]
    fn fused_matches_scalar_fn_bitwise() {
        // select(a > b, a - b, b / a) + abs(a) * 0.25
        let value = ScalarFn::Add(
            b(ScalarFn::If(
                b(ScalarFn::Cmp(
                    BinOp::Gt,
                    b(ScalarFn::Var(0)),
                    b(ScalarFn::Var(1)),
                )),
                b(ScalarFn::Sub(b(ScalarFn::Var(0)), b(ScalarFn::Var(1)))),
                b(ScalarFn::Div(b(ScalarFn::Var(1)), b(ScalarFn::Var(0)))),
            )),
            b(ScalarFn::Mul(
                b(ScalarFn::Abs(b(ScalarFn::Var(0)))),
                b(ScalarFn::Const(0.25)),
            )),
        );
        let p = fuse_region(2, &value, None).expect("fuses");
        for i in 0..100 {
            let a = (i as f64) * 0.37 - 18.0;
            let x = (i as f64) * -0.11 + 2.0;
            let want = value.eval(&[a, x]);
            let got = p.eval_scalar(&[a, x]);
            assert_eq!(got.to_bits(), want.to_bits(), "case {i}");
        }
    }
}
