//! # planner — comprehension-to-dataflow translation
//!
//! This crate implements the paper's §4–§5: it takes a (parsed, normalized)
//! array comprehension over **tiled** arrays and selects a distributed plan:
//!
//! | Paper rule | Plan |
//! |---|---|
//! | §5.1 rule (17), tiling-preserving | [`Plan::Eltwise`] |
//! | §5.2 rule (19), index remap with tile replication | [`Plan::IndexRemap`] |
//! | §5.3 group-by → tile `reduceByKey` (rule 13) | [`Plan::Contraction`] (ReduceByKey), [`Plan::AxisReduce`], [`Plan::GroupByAggregate`] |
//! | §5.4 group-by-join (SUMMA) | [`Plan::Contraction`] (GroupByJoin) |
//! | rule (14) join detection | [`analysis::VarClasses`] over equality guards |
//! | rule (15) injective group-by elimination | applied in `comp::normalize` before planning |
//!
//! Comprehensions outside every rule fall back to the reference interpreter
//! over sparsified arrays ([`Plan::LocalFallback`]) — semantics always win.

pub mod analysis;
pub mod env;
pub mod exec;
pub mod fuse;
pub mod plan;
pub mod scalar;
mod stage;

pub use env::{DistArray, PlanEnv};
pub use exec::{execute, ExecResult};
pub use plan::{MatMulStrategy, OutputKind, Plan, PlanConfig, Planned};
pub use scalar::{IdxFn, ScalarFn};

use comp::ast::Expr;
use comp::errors::CompError;
use sparkline::Context;

/// Plan and execute a comprehension in one call.
pub fn run(
    expr: &Expr,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
) -> Result<ExecResult, CompError> {
    let planned = plan::plan(expr, env, config)?;
    execute(&planned, env, ctx, config)
}

/// Parse, plan, and execute comprehension source text.
pub fn run_text(
    src: &str,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
) -> Result<ExecResult, CompError> {
    let expr = comp::parse_expr(src)?;
    run(&expr, env, ctx, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiled::{LocalMatrix, TiledMatrix};

    fn ctx() -> Context {
        Context::builder().workers(4).default_parallelism(4).build()
    }

    fn setup(
        ctx: &Context,
        names: &[(&str, usize, usize, u64)],
        tile: usize,
    ) -> (PlanEnv, Vec<LocalMatrix>) {
        let mut env = PlanEnv::new();
        let mut locals = Vec::new();
        for (name, r, c, seed) in names {
            let mut rng = StdRng::seed_from_u64(*seed);
            let m = LocalMatrix::random(*r, *c, -1.0, 1.0, &mut rng);
            env.set_array(
                *name,
                DistArray::Matrix(TiledMatrix::from_local(ctx, &m, tile, 4)),
            );
            locals.push(m.clone());
        }
        (env, locals)
    }

    fn config() -> PlanConfig {
        PlanConfig {
            partitions: 4,
            ..Default::default()
        }
    }

    fn planned_strategy(src: &str, env: &PlanEnv) -> String {
        plan::plan(&comp::parse_expr(src).unwrap(), env, &config())
            .unwrap()
            .plan
            .strategy_name()
            .to_string()
    }

    #[test]
    fn matrix_addition_plans_eltwise_and_matches_oracle() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 9, 7, 1), ("B", 9, 7, 2)], 4);
        env.set_int("n", 9);
        env.set_int("m", 7);
        let src = "tiled(n,m)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, \
                    ii == i, jj == j ]";
        assert_eq!(planned_strategy(src, &env), "eltwise/fused");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        assert!(got.approx_eq(&ms[0].add(&ms[1]), 1e-12));
    }

    #[test]
    fn scalar_map_plans_eltwise() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 6, 6, 3)], 4);
        env.set_int("n", 6);
        env.set_float("gamma", 2.5);
        let src = "tiled(n,n)[ ((i,j), a * gamma) | ((i,j),a) <- A ]";
        assert_eq!(planned_strategy(src, &env), "eltwise/fused");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        assert!(got.approx_eq(&ms[0].scale(2.5), 1e-12));
    }

    #[test]
    fn fusion_off_keeps_the_unfused_oracle_and_matches_bitwise() {
        let c = ctx();
        let (mut env, _ms) = setup(&c, &[("A", 9, 7, 1), ("B", 9, 7, 2)], 4);
        env.set_int("n", 9);
        env.set_int("m", 7);
        let src = "tiled(n,m)[ ((i,j), a + b*0.5) | ((i,j),a) <- A, ((ii,jj),b) <- B, \
                    ii == i, jj == j ]";
        let unfused_cfg = PlanConfig {
            partitions: 4,
            fuse_eltwise: false,
            ..Default::default()
        };
        let expr = comp::parse_expr(src).unwrap();
        let unfused_plan = plan::plan(&expr, &env, &unfused_cfg).unwrap();
        assert_eq!(unfused_plan.plan.strategy_name(), "eltwise");
        let fused = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        let unfused = execute(&unfused_plan, &env, &c, &unfused_cfg)
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        for (f, u) in fused.data().iter().zip(unfused.data()) {
            assert_eq!(f.to_bits(), u.to_bits(), "fused must be bit-identical");
        }
    }

    #[test]
    fn transpose_plans_eltwise_swapped() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 5, 8, 4)], 4);
        env.set_int("n", 5);
        env.set_int("m", 8);
        let src = "tiled(m,n)[ ((j,i), a) | ((i,j),a) <- A ]";
        assert_eq!(planned_strategy(src, &env), "eltwise/fused");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        assert!(got.approx_eq(&ms[0].transpose(), 1e-12));
    }

    #[test]
    fn matmul_both_strategies_match_oracle() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 9, 6, 5), ("B", 6, 7, 6)], 4);
        env.set_int("n", 9);
        env.set_int("m", 7);
        let src = "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, \
                    kk == k, let v = a*b, group by (i,j) ]";
        let expected = ms[0].multiply(&ms[1]);
        for strategy in [MatMulStrategy::ReduceByKey, MatMulStrategy::GroupByJoin] {
            let cfg = PlanConfig {
                partitions: 4,
                matmul: strategy,
                ..Default::default()
            };
            let planned = plan::plan(&comp::parse_expr(src).unwrap(), &env, &cfg).unwrap();
            assert!(planned.plan.strategy_name().starts_with("contraction"));
            let got = execute(&planned, &env, &c, &cfg)
                .unwrap()
                .into_matrix()
                .unwrap()
                .to_local();
            assert!(
                got.max_abs_diff(&expected) < 1e-9,
                "strategy {strategy:?} wrong"
            );
        }
    }

    #[test]
    fn matmul_transposed_operand_orientations() {
        // C = Aᵀ·B expressed by contracting A's row index.
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 6, 9, 7), ("B", 6, 7, 8)], 4);
        env.set_int("n", 9);
        env.set_int("m", 7);
        let src = "tiled(n,m)[ ((i,j), +/v) | ((k,i),a) <- A, ((kk,j),b) <- B, \
                    kk == k, let v = a*b, group by (i,j) ]";
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        let expected = ms[0].transpose().multiply(&ms[1]);
        assert!(got.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn row_sums_plans_axis_reduce() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("M", 9, 7, 9)], 4);
        env.set_int("n", 9);
        let src = "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]";
        assert_eq!(planned_strategy(src, &env), "axisReduce");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_vector()
            .unwrap()
            .to_local();
        let expected = ms[0].row_sums();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expected:?}");
        }
    }

    #[test]
    fn rotation_plans_index_remap() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("X", 9, 6, 10)], 4);
        env.set_int("n", 9);
        env.set_int("m", 6);
        let src = "tiled(n,m)[ (((i+1)%n, j), v) | ((i,j),v) <- X ]";
        assert_eq!(planned_strategy(src, &env), "indexRemap");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        let expected = LocalMatrix::from_fn(9, 6, |i, j| {
            // Row r of the output comes from row (r-1)%9 of the input.
            ms[0].get(((i as i64 - 1).rem_euclid(9)) as usize, j)
        });
        assert!(got.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn smoothing_plans_group_by_aggregate() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("M", 7, 7, 11)], 4);
        env.set_int("n", 7);
        env.set_int("m", 7);
        let src = "tiled(n,m)[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- M, \
                    ii <- (i-1) to (i+1), jj <- (j-1) to (j+1), \
                    ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]";
        assert_eq!(planned_strategy(src, &env), "groupByAggregate");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        assert!(got.approx_eq(&ms[0].smooth(), 1e-9));
    }

    #[test]
    fn gbj_uses_single_shuffle_round_rbk_uses_two() {
        let c = ctx();
        let (mut env, _) = setup(&c, &[("A", 8, 8, 12), ("B", 8, 8, 13)], 4);
        env.set_int("n", 8);
        let src = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, \
                    kk == k, let v = a*b, group by (i,j) ]";
        let count_shuffles = |strategy| {
            let cfg = PlanConfig {
                partitions: 4,
                matmul: strategy,
                ..Default::default()
            };
            let before = c.metrics().snapshot();
            run_text(src, &env, &c, &cfg)
                .unwrap()
                .into_matrix()
                .unwrap()
                .to_local();
            c.metrics().snapshot().since(&before)
        };
        let gbj = count_shuffles(MatMulStrategy::GroupByJoin);
        let rbk = count_shuffles(MatMulStrategy::ReduceByKey);
        // GBJ: cogroup shuffles the two replicated sides. RBK: join shuffles
        // both sides + reduceByKey shuffles partial products.
        assert!(gbj.shuffle_count <= 2, "gbj: {gbj:?}");
        assert!(rbk.shuffle_count >= 3, "rbk: {rbk:?}");
    }

    #[test]
    fn unknown_shape_falls_back_to_local() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 5, 5, 14)], 4);
        env.set_int("n", 5);
        // Diagonal extraction: not covered by a distributed rule.
        let src = "tiled_vector(n)[ (i, a) | ((i,j),a) <- A, i == j ]";
        assert_eq!(planned_strategy(src, &env), "localFallback");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_vector()
            .unwrap()
            .to_local();
        for (i, g) in got.iter().enumerate() {
            assert!((g - ms[0].get(i, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn fallback_can_be_disabled() {
        let c = ctx();
        let (mut env, _) = setup(&c, &[("A", 5, 5, 15)], 4);
        env.set_int("n", 5);
        let src = "tiled_vector(n)[ (i, a) | ((i,j),a) <- A, i == j ]";
        let cfg = PlanConfig {
            allow_local_fallback: false,
            ..config()
        };
        assert!(run_text(src, &env, &c, &cfg).is_err());
    }

    #[test]
    fn eltwise_with_value_guard_zeroes_failing_elements() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 6, 6, 16)], 4);
        env.set_int("n", 6);
        let src = "tiled(n,n)[ ((i,j), a + 1.0) | ((i,j),a) <- A, a > 0.0 ]";
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_matrix()
            .unwrap()
            .to_local();
        let expected = LocalMatrix::from_fn(6, 6, |i, j| {
            let a = ms[0].get(i, j);
            if a > 0.0 {
                a + 1.0
            } else {
                0.0
            }
        });
        assert!(got.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn mat_vec_plans_and_matches_oracle() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 9, 6, 20)], 4);
        let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.5 - 1.0).collect();
        env.set_array(
            "V",
            DistArray::Vector(tiled::TiledVector::from_local(&c, &x, 4, 2)),
        );
        env.set_int("n", 9);
        let src = "tiled_vector(n)[ (i, +/v) | ((i,k),a) <- A, (kk,x) <- V, kk == k,                     let v = a*x, group by i ]";
        // A small registered vector fits the broadcast budget, so the
        // adaptive planner picks the zero-shuffle mat-vec path.
        assert_eq!(planned_strategy(src, &env), "matVec/broadcast");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_vector()
            .unwrap()
            .to_local();
        let want = ms[0].to_dense().matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn transposed_mat_vec_contracts_rows() {
        let c = ctx();
        let (mut env, ms) = setup(&c, &[("A", 6, 9, 21)], 4);
        let x: Vec<f64> = (0..6).map(|i| i as f64 + 1.0).collect();
        env.set_array(
            "V",
            DistArray::Vector(tiled::TiledVector::from_local(&c, &x, 4, 2)),
        );
        env.set_int("n", 9);
        // y_j = Σ_i A_ij x_i  (Aᵀ·x)
        let src = "tiled_vector(n)[ (j, +/v) | ((k,j),a) <- A, (kk,x) <- V, kk == k,                     let v = a*x, group by j ]";
        assert_eq!(planned_strategy(src, &env), "matVec/broadcast");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_vector()
            .unwrap()
            .to_local();
        let want = ms[0].transpose().to_dense().matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn vector_eltwise_plans_and_matches() {
        let c = ctx();
        let mut env = PlanEnv::new();
        let x: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..11).map(|i| (i * i) as f64).collect();
        env.set_array(
            "X",
            DistArray::Vector(tiled::TiledVector::from_local(&c, &x, 4, 2)),
        );
        env.set_array(
            "Y",
            DistArray::Vector(tiled::TiledVector::from_local(&c, &y, 4, 2)),
        );
        env.set_int("n", 11);
        env.set_float("alpha", 0.5);
        let src = "tiled_vector(n)[ (i, alpha*x + y) | (i,x) <- X, (ii,y) <- Y, ii == i ]";
        assert_eq!(planned_strategy(src, &env), "vectorEltwise");
        let got = run_text(src, &env, &c, &config())
            .unwrap()
            .into_vector()
            .unwrap()
            .to_local();
        for i in 0..11 {
            assert!((got[i] - (0.5 * x[i] + y[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn explain_names_strategy_and_shape() {
        let c = ctx();
        let (mut env, _) = setup(&c, &[("A", 4, 4, 17), ("B", 4, 4, 18)], 2);
        env.set_int("n", 4);
        let _ = c;
        let src = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, \
                    kk == k, let v = a*b, group by (i,j) ]";
        // Auto resolves to broadcast for these tiny inputs; a pinned strategy
        // is named verbatim.
        let planned = plan::plan(&comp::parse_expr(src).unwrap(), &env, &config()).unwrap();
        assert_eq!(planned.explain(), "contraction/broadcast -> matrix 4x4");
        let pinned = PlanConfig {
            matmul: MatMulStrategy::GroupByJoin,
            ..config()
        };
        let planned = plan::plan(&comp::parse_expr(src).unwrap(), &env, &pinned).unwrap();
        assert_eq!(planned.explain(), "contraction/groupByJoin -> matrix 4x4");
    }
}
