//! The planning environment: what each free variable of a comprehension is
//! bound to — a distributed array, or a driver-side scalar.

use comp::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tiled::{CooMatrix, TiledMatrix, TiledVector};

/// A distributed array a comprehension can range over or produce.
#[derive(Clone)]
pub enum DistArray {
    /// A block (tiled) matrix — the paper's main storage (§5).
    Matrix(TiledMatrix),
    /// A block vector (Fig. 1).
    Vector(TiledVector),
    /// A coordinate-format matrix (§4 / DIABLO storage).
    Coo(CooMatrix),
}

impl DistArray {
    /// Short kind name for plan explanations.
    pub fn kind(&self) -> &'static str {
        match self {
            DistArray::Matrix(_) => "tiled matrix",
            DistArray::Vector(_) => "tiled vector",
            DistArray::Coo(_) => "coo matrix",
        }
    }

    pub fn as_matrix(&self) -> Option<&TiledMatrix> {
        match self {
            DistArray::Matrix(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_vector(&self) -> Option<&TiledVector> {
        match self {
            DistArray::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Identity of the underlying dataset lineage (thin pointer of the root
    /// operator's `Arc`). Two arrays share an identity iff they wrap the
    /// same operator DAG node, so a persisted overlay built for one is valid
    /// for the other.
    fn lineage_identity(&self) -> Option<usize> {
        match self {
            DistArray::Matrix(m) => Some(Arc::as_ptr(m.tiles().op()) as *const () as usize),
            DistArray::Vector(v) => Some(Arc::as_ptr(v.blocks().op()) as *const () as usize),
            DistArray::Coo(_) => None,
        }
    }

    /// A persisted (block-manager backed) variant of this array, or a plain
    /// clone for kinds that do not support persistence.
    fn persisted(&self) -> DistArray {
        match self {
            DistArray::Matrix(m) => DistArray::Matrix(m.persist()),
            DistArray::Vector(v) => DistArray::Vector(v.persist()),
            DistArray::Coo(c) => DistArray::Coo(c.clone()),
        }
    }

    /// Is the root operator already a persist node?
    fn is_persisted(&self) -> bool {
        match self {
            DistArray::Matrix(m) => m.tiles().op().cache_id().is_some(),
            DistArray::Vector(v) => v.blocks().op().cache_id().is_some(),
            DistArray::Coo(_) => false,
        }
    }
}

/// Free-variable bindings available while planning a comprehension.
#[derive(Clone, Default)]
pub struct PlanEnv {
    arrays: HashMap<String, DistArray>,
    scalars: HashMap<String, Value>,
    /// Auto-persist overlays: name -> (lineage identity of the source
    /// array, its persisted wrapper). Shared across clones so repeated
    /// executions (iterative algorithms) reuse the same cached blocks.
    persist_cache: Arc<Mutex<HashMap<String, (usize, DistArray)>>>,
}

impl PlanEnv {
    pub fn new() -> Self {
        PlanEnv::default()
    }

    /// Register a distributed array under a name. Rebinding a name to a
    /// different lineage drops the superseded auto-persist overlay's blocks
    /// from the block manager.
    pub fn set_array(&mut self, name: impl Into<String>, array: DistArray) {
        let name = name.into();
        let mut cache = self.lock_persist_cache();
        if let Some((id, old)) = cache.get(&name) {
            if array.lineage_identity() != Some(*id) {
                unpersist_array(old);
                cache.remove(&name);
            }
        }
        drop(cache);
        self.arrays.insert(name, array);
    }

    /// Bind `name` directly, without touching the auto-persist cache. Used
    /// by the executor to substitute a persisted overlay for its source in a
    /// transient clone of the environment ([`PlanEnv::set_array`] would
    /// treat the overlay as a rebind and drop its own cache entry).
    pub(crate) fn overlay_array(&mut self, name: &str, array: DistArray) {
        self.arrays.insert(name.to_string(), array);
    }

    /// A block-manager-persisted overlay of the array bound to `name`,
    /// built on first use and cached for subsequent executions. Returns
    /// `None` when the name is unbound or its kind cannot be persisted.
    pub fn persisted_array(&self, name: &str) -> Option<DistArray> {
        let array = self.arrays.get(name)?;
        if array.is_persisted() {
            // Already bound to a persist node (e.g. via `persist_array`);
            // wrapping again would stack caches for no benefit.
            return Some(array.clone());
        }
        let identity = array.lineage_identity()?;
        let mut cache = self.lock_persist_cache();
        match cache.get(name) {
            Some((id, overlay)) if *id == identity => Some(overlay.clone()),
            _ => {
                let overlay = array.persisted();
                if let Some((_, old)) = cache.insert(name.to_string(), (identity, overlay.clone()))
                {
                    unpersist_array(&old);
                }
                Some(overlay)
            }
        }
    }

    /// Persist the array bound to `name` in place: the binding is replaced
    /// by a block-manager-backed overlay, so *every* later plan referencing
    /// the name (not just those that reference it twice) reads cached
    /// blocks. Returns false when the name is unbound or not persistable.
    pub fn persist_array(&mut self, name: &str) -> bool {
        match self.persisted_array(name) {
            Some(overlay) => {
                self.overlay_array(name, overlay);
                true
            }
            None => false,
        }
    }

    /// Drop the persisted blocks associated with `name` (both the
    /// auto-persist overlay and an explicitly persisted binding); returns
    /// the number of blocks removed from the block manager.
    pub fn unpersist_array(&mut self, name: &str) -> usize {
        let mut dropped = 0;
        let mut cache = self.lock_persist_cache();
        if let Some((_, old)) = cache.remove(name) {
            dropped += unpersist_array(&old);
        }
        drop(cache);
        if let Some(a) = self.arrays.get(name) {
            dropped += unpersist_array(a);
        }
        dropped
    }

    /// Drop every auto-persist overlay's blocks; returns the number of
    /// blocks removed from the block manager.
    pub fn unpersist_all(&self) -> usize {
        let mut cache = self.lock_persist_cache();
        let dropped = cache.values().map(|(_, a)| unpersist_array(a)).sum();
        cache.clear();
        dropped
    }

    fn lock_persist_cache(&self) -> std::sync::MutexGuard<'_, HashMap<String, (usize, DistArray)>> {
        // A poisoned lock only means another thread panicked mid-update of
        // this advisory cache; the map itself is still usable.
        self.persist_cache
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Register a driver-side scalar (dimension, learning rate, ...).
    pub fn set_scalar(&mut self, name: impl Into<String>, value: Value) {
        self.scalars.insert(name.into(), value);
    }

    pub fn set_int(&mut self, name: impl Into<String>, value: i64) {
        self.set_scalar(name, Value::Int(value));
    }

    pub fn set_float(&mut self, name: impl Into<String>, value: f64) {
        self.set_scalar(name, Value::Float(value));
    }

    pub fn array(&self, name: &str) -> Option<&DistArray> {
        self.arrays.get(name)
    }

    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.scalars.get(name)
    }

    /// Integer scalar lookup for index-expression compilation.
    pub fn int_scalar(&self, name: &str) -> Option<i64> {
        match self.scalars.get(name) {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// Float scalar lookup for scalar-expression compilation (ints coerce).
    pub fn float_scalar(&self, name: &str) -> Option<f64> {
        match self.scalars.get(name) {
            Some(Value::Int(n)) => Some(*n as f64),
            Some(Value::Float(x)) => Some(*x),
            _ => None,
        }
    }

    pub fn array_names(&self) -> impl Iterator<Item = &String> {
        self.arrays.keys()
    }
}

/// Drop a persisted overlay's blocks from its context's block manager.
fn unpersist_array(a: &DistArray) -> usize {
    match a {
        DistArray::Matrix(m) => m.unpersist(),
        DistArray::Vector(v) => v.unpersist(),
        DistArray::Coo(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline::Context;
    use tiled::LocalMatrix;

    #[test]
    fn scalars_coerce() {
        let mut env = PlanEnv::new();
        env.set_int("n", 4);
        env.set_float("gamma", 0.5);
        assert_eq!(env.int_scalar("n"), Some(4));
        assert_eq!(env.float_scalar("n"), Some(4.0));
        assert_eq!(env.float_scalar("gamma"), Some(0.5));
        assert_eq!(env.int_scalar("gamma"), None);
        assert_eq!(env.int_scalar("missing"), None);
    }

    #[test]
    fn persisted_overlay_is_cached_and_dropped_on_rebind() {
        // Ample pinned budget (builder beats SPARKLINE_STORAGE_BUDGET): the
        // test asserts overlay blocks stay resident until rebind drops them.
        let ctx = Context::builder()
            .workers(2)
            .storage_memory(64 << 20)
            .build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        let p1 = env.persisted_array("M").unwrap();
        let p2 = env.persisted_array("M").unwrap();
        // Same overlay both times: same persist node, so same cache id.
        let id = |a: &DistArray| a.as_matrix().unwrap().tiles().op().cache_id();
        assert!(id(&p1).is_some());
        assert_eq!(id(&p1), id(&p2));
        // Clones share the cache.
        assert_eq!(id(&env.clone().persisted_array("M").unwrap()), id(&p1));
        // Materialize, then rebind the name to a new lineage: the old
        // overlay's blocks must be dropped.
        p1.as_matrix().unwrap().to_local();
        assert!(ctx.storage_status().blocks_in_memory > 0);
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        assert_eq!(ctx.storage_status().blocks_in_memory, 0);
        let p3 = env.persisted_array("M").unwrap();
        assert_ne!(id(&p3), id(&p1), "rebinding must build a fresh overlay");
        assert!(env.persisted_array("missing").is_none());
    }

    #[test]
    fn unpersist_all_clears_every_overlay() {
        // Ample pinned budget, as above: unpersist must have blocks to drop.
        let ctx = Context::builder()
            .workers(2)
            .storage_memory(64 << 20)
            .build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i * j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "A",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        env.persisted_array("A")
            .unwrap()
            .as_matrix()
            .unwrap()
            .to_local();
        assert!(ctx.storage_status().blocks_in_memory > 0);
        assert!(env.unpersist_all() > 0);
        assert_eq!(ctx.storage_status().blocks_in_memory, 0);
        assert_eq!(env.unpersist_all(), 0);
    }

    #[test]
    fn arrays_register_and_report_kind() {
        let ctx = Context::builder().workers(2).build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        assert_eq!(env.array("M").unwrap().kind(), "tiled matrix");
        assert!(env.array("M").unwrap().as_matrix().is_some());
        assert!(env.array("M").unwrap().as_vector().is_none());
    }
}
