//! The planning environment: what each free variable of a comprehension is
//! bound to — a distributed array, or a driver-side scalar.

use comp::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tiled::{CooMatrix, TiledMatrix, TiledVector};

/// A distributed array a comprehension can range over or produce.
#[derive(Clone)]
pub enum DistArray {
    /// A block (tiled) matrix — the paper's main storage (§5).
    Matrix(TiledMatrix),
    /// A block vector (Fig. 1).
    Vector(TiledVector),
    /// A coordinate-format matrix (§4 / DIABLO storage).
    Coo(CooMatrix),
}

impl DistArray {
    /// Short kind name for plan explanations.
    pub fn kind(&self) -> &'static str {
        match self {
            DistArray::Matrix(_) => "tiled matrix",
            DistArray::Vector(_) => "tiled vector",
            DistArray::Coo(_) => "coo matrix",
        }
    }

    pub fn as_matrix(&self) -> Option<&TiledMatrix> {
        match self {
            DistArray::Matrix(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_vector(&self) -> Option<&TiledVector> {
        match self {
            DistArray::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Identity of the underlying dataset lineage (thin pointer of the root
    /// operator's `Arc`). Two arrays share an identity iff they wrap the
    /// same operator DAG node, so a persisted overlay built for one is valid
    /// for the other.
    fn lineage_identity(&self) -> Option<usize> {
        match self {
            DistArray::Matrix(m) => Some(Arc::as_ptr(m.tiles().op()) as *const () as usize),
            DistArray::Vector(v) => Some(Arc::as_ptr(v.blocks().op()) as *const () as usize),
            DistArray::Coo(_) => None,
        }
    }

    /// A persisted (block-manager backed) variant of this array, or a plain
    /// clone for kinds that do not support persistence.
    fn persisted(&self) -> DistArray {
        match self {
            DistArray::Matrix(m) => DistArray::Matrix(m.persist()),
            DistArray::Vector(v) => DistArray::Vector(v.persist()),
            DistArray::Coo(c) => DistArray::Coo(c.clone()),
        }
    }

    /// Is the root operator already a persist node?
    fn is_persisted(&self) -> bool {
        match self {
            DistArray::Matrix(m) => m.tiles().op().cache_id().is_some(),
            DistArray::Vector(v) => v.blocks().op().cache_id().is_some(),
            DistArray::Coo(_) => false,
        }
    }
}

/// Per-array statistics for the planner's cost model: logical dimensions,
/// tile grid, estimated resident bytes, and (when known at registration)
/// the non-zero count.
///
/// Stats are metadata-derived — collecting them never runs a job. The nnz
/// field is only filled when the driver had the data in hand anyway (e.g.
/// registering a local matrix); `None` means "assume dense".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayStats {
    pub rows: i64,
    pub cols: i64,
    /// Tile side length (matrices) or block size (vectors); 1 for COO.
    pub tile_size: usize,
    pub block_rows: i64,
    pub block_cols: i64,
    /// Non-zero count, when known. `None` = assume dense.
    pub nnz: Option<u64>,
    /// Estimated resident bytes of the distributed representation.
    pub estimated_bytes: u64,
}

impl ArrayStats {
    /// Bytes of one shuffled tile record: `(i64, i64)` coordinate plus the
    /// [`tiled::DenseMatrix`] payload (its `SizeOf` is `16 + 8 * n^2`).
    pub fn dense_tile_bytes(tile_size: usize) -> u64 {
        16 + 16 + 8 * (tile_size as u64) * (tile_size as u64)
    }

    /// Stats for a tiled matrix, from metadata alone.
    pub fn matrix(rows: i64, cols: i64, tile_size: usize) -> ArrayStats {
        let block_rows = div_ceil_i64(rows, tile_size as i64);
        let block_cols = div_ceil_i64(cols, tile_size as i64);
        ArrayStats {
            rows,
            cols,
            tile_size,
            block_rows,
            block_cols,
            nnz: None,
            estimated_bytes: (block_rows * block_cols) as u64
                * ArrayStats::dense_tile_bytes(tile_size),
        }
    }

    /// Stats for a tiled (block) vector: a single-column grid of blocks.
    pub fn vector(len: i64, block_size: usize) -> ArrayStats {
        let blocks = div_ceil_i64(len, block_size as i64);
        ArrayStats {
            rows: len,
            cols: 1,
            tile_size: block_size,
            block_rows: blocks,
            block_cols: 1,
            nnz: None,
            // One block record: i64 key + Vec<f64> payload (4 + 8 * n).
            estimated_bytes: blocks as u64 * (8 + 4 + 8 * block_size as u64),
        }
    }

    /// Stats for a COO matrix. Without an action the entry count is unknown,
    /// so bytes assume fully dense (~24 bytes per `((i64,i64),f64)` record).
    pub fn coo(rows: i64, cols: i64) -> ArrayStats {
        ArrayStats {
            rows,
            cols,
            tile_size: 1,
            block_rows: rows,
            block_cols: cols,
            nnz: None,
            estimated_bytes: (rows as u64) * (cols as u64) * 24,
        }
    }

    /// Same stats with a known non-zero count.
    pub fn with_nnz(mut self, nnz: u64) -> ArrayStats {
        self.nnz = Some(nnz);
        self
    }

    /// Fraction of non-zero elements, when the nnz is known.
    pub fn density(&self) -> Option<f64> {
        let total = (self.rows as f64) * (self.cols as f64);
        self.nnz.map(|n| {
            if total > 0.0 {
                (n as f64 / total).min(1.0)
            } else {
                1.0
            }
        })
    }

    /// Number of tiles in the grid.
    pub fn num_tiles(&self) -> u64 {
        (self.block_rows * self.block_cols) as u64
    }

    /// Estimated wire bytes of one tile record if shuffled: dense payload
    /// scaled by density when the nnz is known (a sparse tile ships ~12
    /// bytes per stored element in CSC form, so density discounts apply),
    /// floored at the record framing overhead.
    pub fn tile_wire_bytes(&self) -> u64 {
        let dense = ArrayStats::dense_tile_bytes(self.tile_size);
        match self.density() {
            Some(d) => {
                let csc = 32.0 + d * 12.0 * (self.tile_size as f64) * (self.tile_size as f64);
                (csc.min(dense as f64)) as u64
            }
            None => dense,
        }
    }
}

fn div_ceil_i64(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Metadata-derived statistics for an array (no jobs run).
fn derived_stats(array: &DistArray) -> ArrayStats {
    match array {
        DistArray::Matrix(m) => ArrayStats::matrix(m.rows(), m.cols(), m.tile_size()),
        DistArray::Vector(v) => ArrayStats::vector(v.len(), v.block_size()),
        DistArray::Coo(c) => ArrayStats::coo(c.rows(), c.cols()),
    }
}

/// Free-variable bindings available while planning a comprehension.
#[derive(Clone, Default)]
pub struct PlanEnv {
    arrays: HashMap<String, DistArray>,
    stats: HashMap<String, ArrayStats>,
    scalars: HashMap<String, Value>,
    /// Auto-persist overlays: name -> (lineage identity of the source
    /// array, its persisted wrapper). Shared across clones so repeated
    /// executions (iterative algorithms) reuse the same cached blocks.
    persist_cache: Arc<Mutex<HashMap<String, (usize, DistArray)>>>,
}

impl PlanEnv {
    pub fn new() -> Self {
        PlanEnv::default()
    }

    /// Register a distributed array under a name. Rebinding a name to a
    /// different lineage drops the superseded auto-persist overlay's blocks
    /// from the block manager.
    pub fn set_array(&mut self, name: impl Into<String>, array: DistArray) {
        let name = name.into();
        let mut cache = self.lock_persist_cache();
        if let Some((id, old)) = cache.get(&name) {
            if array.lineage_identity() != Some(*id) {
                unpersist_array(old);
                cache.remove(&name);
            }
        }
        drop(cache);
        self.stats.insert(name.clone(), derived_stats(&array));
        self.arrays.insert(name, array);
    }

    /// Statistics for the array bound to `name`, if any.
    pub fn stats(&self, name: &str) -> Option<&ArrayStats> {
        self.stats.get(name)
    }

    /// Refine the statistics of an already-registered array (e.g. fill the
    /// nnz count when the registering caller had the local data in hand).
    pub fn set_stats(&mut self, name: impl Into<String>, stats: ArrayStats) {
        self.stats.insert(name.into(), stats);
    }

    /// Bind `name` directly, without touching the auto-persist cache. Used
    /// by the executor to substitute a persisted overlay for its source in a
    /// transient clone of the environment ([`PlanEnv::set_array`] would
    /// treat the overlay as a rebind and drop its own cache entry).
    pub(crate) fn overlay_array(&mut self, name: &str, array: DistArray) {
        self.arrays.insert(name.to_string(), array);
    }

    /// A block-manager-persisted overlay of the array bound to `name`,
    /// built on first use and cached for subsequent executions. Returns
    /// `None` when the name is unbound or its kind cannot be persisted.
    pub fn persisted_array(&self, name: &str) -> Option<DistArray> {
        let array = self.arrays.get(name)?;
        if array.is_persisted() {
            // Already bound to a persist node (e.g. via `persist_array`);
            // wrapping again would stack caches for no benefit.
            return Some(array.clone());
        }
        let identity = array.lineage_identity()?;
        let mut cache = self.lock_persist_cache();
        match cache.get(name) {
            Some((id, overlay)) if *id == identity => Some(overlay.clone()),
            _ => {
                let overlay = array.persisted();
                if let Some((_, old)) = cache.insert(name.to_string(), (identity, overlay.clone()))
                {
                    unpersist_array(&old);
                }
                Some(overlay)
            }
        }
    }

    /// Persist the array bound to `name` in place: the binding is replaced
    /// by a block-manager-backed overlay, so *every* later plan referencing
    /// the name (not just those that reference it twice) reads cached
    /// blocks. Returns false when the name is unbound or not persistable.
    pub fn persist_array(&mut self, name: &str) -> bool {
        match self.persisted_array(name) {
            Some(overlay) => {
                self.overlay_array(name, overlay);
                true
            }
            None => false,
        }
    }

    /// Drop the persisted blocks associated with `name` (both the
    /// auto-persist overlay and an explicitly persisted binding); returns
    /// the number of blocks removed from the block manager.
    pub fn unpersist_array(&mut self, name: &str) -> usize {
        let mut dropped = 0;
        let mut cache = self.lock_persist_cache();
        if let Some((_, old)) = cache.remove(name) {
            dropped += unpersist_array(&old);
        }
        drop(cache);
        if let Some(a) = self.arrays.get(name) {
            dropped += unpersist_array(a);
        }
        dropped
    }

    /// Drop every auto-persist overlay's blocks; returns the number of
    /// blocks removed from the block manager.
    pub fn unpersist_all(&self) -> usize {
        let mut cache = self.lock_persist_cache();
        let dropped = cache.values().map(|(_, a)| unpersist_array(a)).sum();
        cache.clear();
        dropped
    }

    fn lock_persist_cache(&self) -> std::sync::MutexGuard<'_, HashMap<String, (usize, DistArray)>> {
        // A poisoned lock only means another thread panicked mid-update of
        // this advisory cache; the map itself is still usable.
        self.persist_cache
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Register a driver-side scalar (dimension, learning rate, ...).
    pub fn set_scalar(&mut self, name: impl Into<String>, value: Value) {
        self.scalars.insert(name.into(), value);
    }

    pub fn set_int(&mut self, name: impl Into<String>, value: i64) {
        self.set_scalar(name, Value::Int(value));
    }

    pub fn set_float(&mut self, name: impl Into<String>, value: f64) {
        self.set_scalar(name, Value::Float(value));
    }

    pub fn array(&self, name: &str) -> Option<&DistArray> {
        self.arrays.get(name)
    }

    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.scalars.get(name)
    }

    /// Integer scalar lookup for index-expression compilation.
    pub fn int_scalar(&self, name: &str) -> Option<i64> {
        match self.scalars.get(name) {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// Float scalar lookup for scalar-expression compilation (ints coerce).
    pub fn float_scalar(&self, name: &str) -> Option<f64> {
        match self.scalars.get(name) {
            Some(Value::Int(n)) => Some(*n as f64),
            Some(Value::Float(x)) => Some(*x),
            _ => None,
        }
    }

    pub fn array_names(&self) -> impl Iterator<Item = &String> {
        self.arrays.keys()
    }
}

/// Drop a persisted overlay's blocks from its context's block manager.
fn unpersist_array(a: &DistArray) -> usize {
    match a {
        DistArray::Matrix(m) => m.unpersist(),
        DistArray::Vector(v) => v.unpersist(),
        DistArray::Coo(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline::Context;
    use tiled::LocalMatrix;

    #[test]
    fn scalars_coerce() {
        let mut env = PlanEnv::new();
        env.set_int("n", 4);
        env.set_float("gamma", 0.5);
        assert_eq!(env.int_scalar("n"), Some(4));
        assert_eq!(env.float_scalar("n"), Some(4.0));
        assert_eq!(env.float_scalar("gamma"), Some(0.5));
        assert_eq!(env.int_scalar("gamma"), None);
        assert_eq!(env.int_scalar("missing"), None);
    }

    #[test]
    fn persisted_overlay_is_cached_and_dropped_on_rebind() {
        // Ample pinned budget (builder beats SPARKLINE_STORAGE_BUDGET): the
        // test asserts overlay blocks stay resident until rebind drops them.
        let ctx = Context::builder()
            .workers(2)
            .storage_memory(64 << 20)
            .build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        let p1 = env.persisted_array("M").unwrap();
        let p2 = env.persisted_array("M").unwrap();
        // Same overlay both times: same persist node, so same cache id.
        let id = |a: &DistArray| a.as_matrix().unwrap().tiles().op().cache_id();
        assert!(id(&p1).is_some());
        assert_eq!(id(&p1), id(&p2));
        // Clones share the cache.
        assert_eq!(id(&env.clone().persisted_array("M").unwrap()), id(&p1));
        // Materialize, then rebind the name to a new lineage: the old
        // overlay's blocks must be dropped.
        p1.as_matrix().unwrap().to_local();
        assert!(ctx.storage_status().blocks_in_memory > 0);
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        assert_eq!(ctx.storage_status().blocks_in_memory, 0);
        let p3 = env.persisted_array("M").unwrap();
        assert_ne!(id(&p3), id(&p1), "rebinding must build a fresh overlay");
        assert!(env.persisted_array("missing").is_none());
    }

    #[test]
    fn unpersist_all_clears_every_overlay() {
        // Ample pinned budget, as above: unpersist must have blocks to drop.
        let ctx = Context::builder()
            .workers(2)
            .storage_memory(64 << 20)
            .build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i * j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "A",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        env.persisted_array("A")
            .unwrap()
            .as_matrix()
            .unwrap()
            .to_local();
        assert!(ctx.storage_status().blocks_in_memory > 0);
        assert!(env.unpersist_all() > 0);
        assert_eq!(ctx.storage_status().blocks_in_memory, 0);
        assert_eq!(env.unpersist_all(), 0);
    }

    #[test]
    fn registration_derives_stats_and_nnz_refines_wire_bytes() {
        let ctx = Context::builder().workers(2).build();
        let m = LocalMatrix::from_fn(6, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        let mut env = PlanEnv::new();
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 4, 2)),
        );
        let s = *env.stats("M").unwrap();
        assert_eq!((s.rows, s.cols, s.tile_size), (6, 6, 4));
        assert_eq!((s.block_rows, s.block_cols), (2, 2));
        assert_eq!(s.nnz, None);
        assert_eq!(s.num_tiles(), 4);
        assert_eq!(s.estimated_bytes, 4 * ArrayStats::dense_tile_bytes(4));
        // Unknown nnz: wire bytes assume dense.
        assert_eq!(s.tile_wire_bytes(), ArrayStats::dense_tile_bytes(4));
        // Known sparse nnz: wire bytes shrink below the dense payload.
        env.set_stats("M", s.with_nnz(6));
        let refined = env.stats("M").unwrap();
        assert!((refined.density().unwrap() - 6.0 / 36.0).abs() < 1e-12);
        assert!(refined.tile_wire_bytes() < ArrayStats::dense_tile_bytes(4));
        assert!(env.stats("missing").is_none());
    }

    #[test]
    fn arrays_register_and_report_kind() {
        let ctx = Context::builder().workers(2).build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        assert_eq!(env.array("M").unwrap().kind(), "tiled matrix");
        assert!(env.array("M").unwrap().as_matrix().is_some());
        assert!(env.array("M").unwrap().as_vector().is_none());
    }
}
