//! The planning environment: what each free variable of a comprehension is
//! bound to — a distributed array, or a driver-side scalar.

use comp::Value;
use std::collections::HashMap;
use tiled::{CooMatrix, TiledMatrix, TiledVector};

/// A distributed array a comprehension can range over or produce.
#[derive(Clone)]
pub enum DistArray {
    /// A block (tiled) matrix — the paper's main storage (§5).
    Matrix(TiledMatrix),
    /// A block vector (Fig. 1).
    Vector(TiledVector),
    /// A coordinate-format matrix (§4 / DIABLO storage).
    Coo(CooMatrix),
}

impl DistArray {
    /// Short kind name for plan explanations.
    pub fn kind(&self) -> &'static str {
        match self {
            DistArray::Matrix(_) => "tiled matrix",
            DistArray::Vector(_) => "tiled vector",
            DistArray::Coo(_) => "coo matrix",
        }
    }

    pub fn as_matrix(&self) -> Option<&TiledMatrix> {
        match self {
            DistArray::Matrix(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_vector(&self) -> Option<&TiledVector> {
        match self {
            DistArray::Vector(v) => Some(v),
            _ => None,
        }
    }
}

/// Free-variable bindings available while planning a comprehension.
#[derive(Clone, Default)]
pub struct PlanEnv {
    arrays: HashMap<String, DistArray>,
    scalars: HashMap<String, Value>,
}

impl PlanEnv {
    pub fn new() -> Self {
        PlanEnv::default()
    }

    /// Register a distributed array under a name.
    pub fn set_array(&mut self, name: impl Into<String>, array: DistArray) {
        self.arrays.insert(name.into(), array);
    }

    /// Register a driver-side scalar (dimension, learning rate, ...).
    pub fn set_scalar(&mut self, name: impl Into<String>, value: Value) {
        self.scalars.insert(name.into(), value);
    }

    pub fn set_int(&mut self, name: impl Into<String>, value: i64) {
        self.set_scalar(name, Value::Int(value));
    }

    pub fn set_float(&mut self, name: impl Into<String>, value: f64) {
        self.set_scalar(name, Value::Float(value));
    }

    pub fn array(&self, name: &str) -> Option<&DistArray> {
        self.arrays.get(name)
    }

    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.scalars.get(name)
    }

    /// Integer scalar lookup for index-expression compilation.
    pub fn int_scalar(&self, name: &str) -> Option<i64> {
        match self.scalars.get(name) {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// Float scalar lookup for scalar-expression compilation (ints coerce).
    pub fn float_scalar(&self, name: &str) -> Option<f64> {
        match self.scalars.get(name) {
            Some(Value::Int(n)) => Some(*n as f64),
            Some(Value::Float(x)) => Some(*x),
            _ => None,
        }
    }

    pub fn array_names(&self) -> impl Iterator<Item = &String> {
        self.arrays.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline::Context;
    use tiled::LocalMatrix;

    #[test]
    fn scalars_coerce() {
        let mut env = PlanEnv::new();
        env.set_int("n", 4);
        env.set_float("gamma", 0.5);
        assert_eq!(env.int_scalar("n"), Some(4));
        assert_eq!(env.float_scalar("n"), Some(4.0));
        assert_eq!(env.float_scalar("gamma"), Some(0.5));
        assert_eq!(env.int_scalar("gamma"), None);
        assert_eq!(env.int_scalar("missing"), None);
    }

    #[test]
    fn arrays_register_and_report_kind() {
        let ctx = Context::builder().workers(2).build();
        let m = LocalMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut env = PlanEnv::new();
        env.set_array(
            "M",
            DistArray::Matrix(TiledMatrix::from_local(&ctx, &m, 2, 2)),
        );
        assert_eq!(env.array("M").unwrap().kind(), "tiled matrix");
        assert!(env.array("M").unwrap().as_matrix().is_some());
        assert!(env.array("M").unwrap().as_vector().is_none());
    }
}
