//! Plan execution on the `sparkline` runtime.

use crate::env::{DistArray, PlanEnv};
use crate::plan::{GroupKey, MatMulStrategy, OutputKind, Plan, PlanConfig, Planned};
use crate::scalar::ScalarFn;
use comp::ast::{Expr, Monoid, Pattern, Qualifier};
use comp::errors::CompError;
use comp::eval::eval_comprehension;
use comp::{Comprehension, Value};
use sparkline::{Context, Dataset, Event, PartitionStream};
use std::collections::HashMap;
use tiled::{DenseMatrix, LocalMatrix, TileCoord, TiledMatrix, TiledVector};

/// The result of executing a plan.
#[derive(Clone)]
pub enum ExecResult {
    Matrix(TiledMatrix),
    Vector(TiledVector),
    Local(Value),
}

impl ExecResult {
    /// Materialize every lazy stage of the result now. Used by
    /// `explain_analyze`-style callers that want all stages to run inside a
    /// trace window (tiled results are otherwise computed on first use).
    pub fn force(&self) -> &ExecResult {
        match self {
            ExecResult::Matrix(m) => {
                m.tiles().count();
            }
            ExecResult::Vector(v) => {
                v.blocks().count();
            }
            ExecResult::Local(_) => {}
        }
        self
    }

    pub fn into_matrix(self) -> Result<TiledMatrix, CompError> {
        match self {
            ExecResult::Matrix(m) => Ok(m),
            _ => Err(CompError::plan("result is not a tiled matrix")),
        }
    }

    pub fn into_vector(self) -> Result<TiledVector, CompError> {
        match self {
            ExecResult::Vector(v) => Ok(v),
            _ => Err(CompError::plan("result is not a tiled vector")),
        }
    }

    pub fn into_local(self) -> Result<Value, CompError> {
        match self {
            ExecResult::Local(v) => Ok(v),
            _ => Err(CompError::plan("result is not a local value")),
        }
    }
}

/// The f64 embedding of a monoid: identity and combine.
#[allow(clippy::type_complexity)]
pub fn monoid_f64(m: Monoid) -> Result<(f64, fn(f64, f64) -> f64), CompError> {
    Ok(match m {
        Monoid::Sum => (0.0, |a, b| a + b),
        Monoid::Product => (1.0, |a, b| a * b),
        Monoid::Max => (f64::NEG_INFINITY, f64::max),
        Monoid::Min => (f64::INFINITY, f64::min),
        // Booleans embed as 0/1.
        Monoid::And => (1.0, f64::min),
        Monoid::Or => (0.0, f64::max),
        Monoid::Concat => {
            return Err(CompError::plan(
                "list concatenation cannot run on scalar accumulator planes",
            ))
        }
    })
}

/// Execute a planned comprehension.
///
/// The whole dispatch runs under a plan-node tag equal to
/// [`Plan::strategy_name`], so every shuffle stage the plan constructs is
/// attributed to its plan node in the event trace (the DAG is built here even
/// though stages materialize later — shuffles capture the tag eagerly).
pub fn execute(
    planned: &Planned,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
) -> Result<ExecResult, CompError> {
    // Resolve partition autotuning (`partitions == 0`) against this
    // context's worker pool and the plan's estimated output size, then put
    // the planner's cost-based decision on the event bus as `plan.chosen`.
    let mut tuned = config.clone();
    if tuned.partitions == 0 {
        tuned.partitions = autotune_partitions(&planned.output, ctx);
    }
    let config = &tuned;
    if let Plan::FusedEltwise {
        inputs,
        program,
        region_ops,
        ..
    } = &planned.plan
    {
        ctx.emit_event(|at_micros| Event::RegionFused {
            ops: program.len() as u64,
            inputs: inputs.len() as u64,
            signature: program.signature(),
            source: region_ops.join(";"),
            at_micros,
        });
    }
    if let Some(decision) = planned.plan.decision() {
        ctx.emit_event(|at_micros| Event::PlanChosen {
            chosen: decision.chosen.to_string(),
            auto: decision.auto,
            partitions: config.partitions as u64,
            est_shuffle_bytes: decision.est_shuffle_bytes,
            candidates: decision
                .candidates
                .iter()
                .map(|&(tag, cost)| (tag.to_string(), cost))
                .collect(),
            at_micros,
        });
    }
    ctx.scoped_tag(planned.plan.strategy_name(), || {
        if config.auto_persist {
            if let Some(overlay) = persist_shared_inputs(&planned.plan, env) {
                return execute_untagged(planned, &overlay, ctx, config);
            }
        }
        execute_untagged(planned, env, ctx, config)
    })
}

/// Target bytes per shuffle partition when autotuning.
const PARTITION_TARGET_BYTES: u64 = 1 << 20;

/// Derive the shuffle partition count from the (dense-estimated) output
/// size: one partition per ~1 MiB, clamped to `[workers, 4 * workers]` so
/// small jobs still engage every worker and large ones don't drown the
/// scheduler in tiny tasks.
fn autotune_partitions(output: &OutputKind, ctx: &Context) -> usize {
    let est_bytes = match output {
        OutputKind::Matrix { rows, cols } => (*rows).max(0) as u64 * (*cols).max(0) as u64 * 8,
        OutputKind::Vector { len } => (*len).max(0) as u64 * 8,
        OutputKind::Local => 0,
    };
    let workers = ctx.workers().max(1);
    ((est_bytes / PARTITION_TARGET_BYTES) as usize).clamp(workers, 4 * workers)
}

/// When a plan references the same input name more than once (e.g. both
/// sides of `A*A`), each reference would evaluate that input's lineage
/// independently. Overlay such names with block-manager-persisted wrappers
/// so the lineage is computed once and later references hit the cache (or
/// transparently recompute if the budget evicted a block). Returns `None`
/// when no input is shared.
fn persist_shared_inputs(plan: &Plan, env: &PlanEnv) -> Option<PlanEnv> {
    let names = plan.input_names();
    let mut shared: Vec<&str> = names
        .iter()
        .copied()
        .filter(|n| names.iter().filter(|m| *m == n).count() >= 2)
        .collect();
    shared.sort_unstable();
    shared.dedup();
    let overlays: Vec<(&str, DistArray)> = shared
        .into_iter()
        .filter_map(|name| env.persisted_array(name).map(|p| (name, p)))
        .collect();
    if overlays.is_empty() {
        return None;
    }
    let mut overlay_env = env.clone();
    for (name, persisted) in overlays {
        overlay_env.overlay_array(name, persisted);
    }
    Some(overlay_env)
}

fn execute_untagged(
    planned: &Planned,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
) -> Result<ExecResult, CompError> {
    match (&planned.plan, &planned.output) {
        (Plan::Eltwise { .. }, OutputKind::Matrix { rows, cols }) => {
            exec_eltwise(&planned.plan, env, config, *rows, *cols).map(ExecResult::Matrix)
        }
        (Plan::FusedEltwise { .. }, OutputKind::Matrix { rows, cols }) => {
            exec_fused_eltwise(&planned.plan, env, config, *rows, *cols).map(ExecResult::Matrix)
        }
        (Plan::Contraction { .. }, OutputKind::Matrix { rows, cols }) => {
            exec_contraction(&planned.plan, env, ctx, config, *rows, *cols).map(ExecResult::Matrix)
        }
        (Plan::IndexRemap { .. }, OutputKind::Matrix { rows, cols }) => {
            exec_index_remap(&planned.plan, env, ctx, config, *rows, *cols).map(ExecResult::Matrix)
        }
        (Plan::GroupByAggregate { .. }, OutputKind::Matrix { rows, cols }) => {
            exec_group_aggregate_matrix(&planned.plan, env, ctx, config, *rows, *cols)
                .map(ExecResult::Matrix)
        }
        (Plan::AxisReduce { .. }, OutputKind::Vector { len }) => {
            exec_axis_reduce(&planned.plan, env, config, *len).map(ExecResult::Vector)
        }
        (Plan::MatVec { .. }, OutputKind::Vector { len }) => {
            exec_mat_vec(&planned.plan, env, ctx, config, *len).map(ExecResult::Vector)
        }
        (Plan::VectorEltwise { .. }, OutputKind::Vector { len }) => {
            exec_vector_eltwise(&planned.plan, env, config, *len).map(ExecResult::Vector)
        }
        (Plan::GroupByAggregate { .. }, OutputKind::Vector { len }) => {
            exec_group_aggregate_vector(&planned.plan, env, ctx, config, *len)
                .map(ExecResult::Vector)
        }
        (Plan::LocalFallback { expr }, output) => exec_local(expr, env, ctx, config, output),
        (plan, output) => Err(CompError::plan(format!(
            "plan {} cannot produce output {output:?}",
            plan.strategy_name()
        ))),
    }
}

fn matrix_input<'a>(env: &'a PlanEnv, name: &str) -> Result<&'a TiledMatrix, CompError> {
    env.array(name)
        .and_then(DistArray::as_matrix)
        .ok_or_else(|| CompError::plan(format!("`{name}` is not a registered tiled matrix")))
}

/// Validated elementwise inputs: the co-indexed tile join plus the shape
/// facts both the unfused and fused executors need.
struct EltwiseInputs {
    joined: Dataset<(TileCoord, Vec<DenseMatrix>)>,
    /// Tile size.
    n: usize,
    /// Logical input shape (pre-transpose).
    in_rows: i64,
    in_cols: i64,
    /// Input count.
    k: usize,
}

/// Resolve, validate, and cogroup-join the inputs of an elementwise plan on
/// tile coordinates, using the grid partitioner of the output shape: inputs
/// registered grid-partitioned (mllib-style) cogroup narrowly, so e.g.
/// matrix addition runs with zero shuffle stages. Tile coordinates are
/// unique per matrix, so each cogroup side holds at most one tile — popping
/// it moves the buffer instead of cloning a join pair. All per-key steps
/// preserve partitioning, keeping later cogroups in the chain narrow too.
fn join_eltwise_inputs(
    inputs: &[String],
    transposed: bool,
    env: &PlanEnv,
    config: &PlanConfig,
    rows: i64,
    cols: i64,
) -> Result<EltwiseInputs, CompError> {
    let mats: Vec<&TiledMatrix> = inputs
        .iter()
        .map(|n| matrix_input(env, n))
        .collect::<Result<_, _>>()?;
    let first = mats[0];
    let n = first.tile_size();
    for m in &mats {
        if !m.same_shape(first) {
            return Err(CompError::plan(
                "element-wise inputs must have identical dimensions and tiling",
            ));
        }
    }
    let (in_rows, in_cols) = (first.rows(), first.cols());
    let expected = if transposed {
        (in_cols, in_rows)
    } else {
        (in_rows, in_cols)
    };
    if expected != (rows, cols) {
        return Err(CompError::plan(format!(
            "builder dimensions ({rows},{cols}) do not match input dimensions {expected:?}"
        )));
    }
    let grid = first.grid_partitioner(config.partitions);
    let mut joined: Dataset<(TileCoord, Vec<DenseMatrix>)> = first.tiles().map_values(|t| vec![t]);
    for m in &mats[1..] {
        joined = joined
            .cogroup_with(m.tiles(), grid.clone())
            // Inner-join semantics: unmatched coordinates drop.
            .filter(|(_, (accs, ts))| !accs.is_empty() && !ts.is_empty())
            .map_values(|(mut accs, mut ts)| {
                let mut acc = accs.pop().expect("filtered non-empty");
                acc.push(ts.pop().expect("filtered non-empty"));
                acc
            });
    }
    Ok(EltwiseInputs {
        joined,
        n,
        in_rows,
        in_cols,
        k: mats.len(),
    })
}

/// Zero the padding region of a tile buffer (elements past the logical
/// bounds of tile `(bi, bj)` in an `in_rows x in_cols` matrix).
fn zero_tile_padding(data: &mut [f64], n: usize, bi: i64, bj: i64, in_rows: i64, in_cols: i64) {
    let valid_rows = ((in_rows - bi * n as i64).clamp(0, n as i64)) as usize;
    let valid_cols = ((in_cols - bj * n as i64).clamp(0, n as i64)) as usize;
    if valid_rows < n {
        data[valid_rows * n..].fill(0.0);
    }
    if valid_cols < n {
        for ti in 0..valid_rows {
            data[ti * n + valid_cols..(ti + 1) * n].fill(0.0);
        }
    }
}

/// §5.1: join co-indexed tile sets and apply the element kernel.
fn exec_eltwise(
    plan: &Plan,
    env: &PlanEnv,
    config: &PlanConfig,
    rows: i64,
    cols: i64,
) -> Result<TiledMatrix, CompError> {
    let Plan::Eltwise {
        inputs,
        transposed,
        value,
        guard,
    } = plan
    else {
        unreachable!()
    };
    let EltwiseInputs {
        joined,
        n,
        in_rows,
        in_cols,
        k,
    } = join_eltwise_inputs(inputs, *transposed, env, config, rows, cols)?;

    let value = value.clone();
    let guard = guard.clone();
    let transposed = *transposed;
    // Index buffers are only materialized when the expression uses them.
    let max_slot = value
        .max_slot()
        .max(guard.as_ref().and_then(ScalarFn::max_slot));
    let needs_indices = max_slot.is_some_and(|s| s >= k);
    let tiles = joined.map(move |((bi, bj), ts)| {
        debug_assert_eq!(ts.len(), k, "join dropped an input tile");
        let len = n * n;
        // Slot buffers: the input tiles, then (lazily) global row/col.
        let mut bufs: Vec<&[f64]> = ts.iter().map(|t| t.data()).collect();
        let idx_bufs;
        if needs_indices {
            let mut rows_buf = Vec::with_capacity(len);
            let mut cols_buf = Vec::with_capacity(len);
            for ti in 0..n {
                for tj in 0..n {
                    rows_buf.push((bi * n as i64 + ti as i64) as f64);
                    cols_buf.push((bj * n as i64 + tj as i64) as f64);
                }
            }
            idx_bufs = (rows_buf, cols_buf);
            bufs.push(&idx_bufs.0);
            bufs.push(&idx_bufs.1);
        }
        let mut data = value.eval_batch(&bufs, len);
        if let Some(g) = &guard {
            let mask = g.eval_batch(&bufs, len);
            for (d, m) in data.iter_mut().zip(mask) {
                if m == 0.0 {
                    *d = 0.0;
                }
            }
        }
        zero_tile_padding(&mut data, n, bi, bj, in_rows, in_cols);
        let out = DenseMatrix::from_vec(n, n, data);
        if transposed {
            ((bj, bi), out.transpose())
        } else {
            ((bi, bj), out)
        }
    });
    Ok(TiledMatrix::new(rows, cols, n, tiles))
}

/// The fused elementwise lowering: identical join and padding semantics as
/// [`exec_eltwise`], but the whole region runs as one
/// `tiled::kernel::fused_eltwise` pass per tile — no per-expression-node
/// scratch vectors, no boxed per-element dispatch. The tile map carries the
/// `fused_eltwise` operator label so traces attribute the region to exactly
/// one operator.
fn exec_fused_eltwise(
    plan: &Plan,
    env: &PlanEnv,
    config: &PlanConfig,
    rows: i64,
    cols: i64,
) -> Result<TiledMatrix, CompError> {
    let Plan::FusedEltwise {
        inputs,
        transposed,
        program,
        ..
    } = plan
    else {
        unreachable!()
    };
    let EltwiseInputs {
        joined,
        n,
        in_rows,
        in_cols,
        k,
    } = join_eltwise_inputs(inputs, *transposed, env, config, rows, cols)?;

    let program = program.clone();
    let transposed = *transposed;
    let backend = tiled::kernel::Backend::active();
    let tiles = joined.map_named("fused_eltwise", move |((bi, bj), ts)| {
        debug_assert_eq!(ts.len(), k, "join dropped an input tile");
        let len = n * n;
        let bufs: Vec<&[f64]> = ts.iter().map(|t| t.data()).collect();
        let mut data = tiled::kernel::fused_eltwise(&program, &bufs, len, backend);
        zero_tile_padding(&mut data, n, bi, bj, in_rows, in_cols);
        let out = DenseMatrix::from_vec(n, n, data);
        if transposed {
            ((bj, bi), out.transpose())
        } else {
            ((bi, bj), out)
        }
    });
    Ok(TiledMatrix::new(rows, cols, n, tiles))
}

/// Multiply two tiles with an arbitrary element combine (the general §5.3
/// kernel); `valid_k` masks the zero-padding of the contracted dimension.
fn general_tile_contract(
    a: &DenseMatrix,
    b: &DenseMatrix,
    value: &ScalarFn,
    valid_k: usize,
    out: &mut DenseMatrix,
) {
    let n = a.rows();
    let mut slots = [0.0f64; 2];
    for i in 0..n {
        for j in 0..n {
            let mut acc = out.get(i, j);
            for k in 0..valid_k {
                slots[0] = a.get(i, k);
                slots[1] = b.get(k, j);
                acc += value.eval(&slots);
            }
            out.set(i, j, acc);
        }
    }
}

/// §5.3 (join + reduceByKey), §5.4 (group-by-join / SUMMA), and the
/// MLlib-style broadcast join.
fn exec_contraction(
    plan: &Plan,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    rows: i64,
    cols: i64,
) -> Result<TiledMatrix, CompError> {
    let Plan::Contraction {
        left,
        right,
        left_contract_row,
        right_contract_col,
        swap_output,
        value,
        strategy,
        decision,
    } = plan
    else {
        unreachable!()
    };
    let a0 = matrix_input(env, left)?;
    let b0 = matrix_input(env, right)?;
    if a0.tile_size() != b0.tile_size() {
        return Err(CompError::plan("contraction inputs must share a tile size"));
    }

    // Adaptive stage driver: a shuffling auto-chosen contraction's inputs
    // are this node's first materialization point. Probe them, overlay the
    // measured stats, and let the cost model re-decide strategy and
    // partition count before the remainder is lowered. A zero-shuffle
    // broadcast choice has nothing left to save, and a pinned strategy must
    // be honored — neither probes.
    let mut strategy = *strategy;
    let mut config = config.clone();
    if config.adaptive && decision.auto && !matches!(strategy, MatMulStrategy::Broadcast) {
        let replan = crate::stage::adapt_contraction(
            env,
            ctx,
            &config,
            left,
            right,
            a0,
            b0,
            *left_contract_row,
            *right_contract_col,
            strategy,
            decision,
        );
        strategy = replan.strategy;
        config.partitions = replan.partitions;
    }
    let config = &config;

    // Normalize to standard C = A' * B' with contraction on A'.col / B'.row.
    let a = if *left_contract_row {
        a0.transpose()
    } else {
        a0.clone()
    };
    let b = if *right_contract_col {
        b0.transpose()
    } else {
        b0.clone()
    };
    if a.cols() != b.rows() {
        return Err(CompError::plan(format!(
            "contraction inner dimensions differ: {} vs {}",
            a.cols(),
            b.rows()
        )));
    }
    let std_dims = (a.rows(), b.cols());
    let expected = if *swap_output {
        (std_dims.1, std_dims.0)
    } else {
        std_dims
    };
    if expected != (rows, cols) {
        return Err(CompError::plan(format!(
            "builder dimensions ({rows},{cols}) do not match contraction output {expected:?}"
        )));
    }

    let n = a.tile_size();
    let inner = a.cols();
    let fast_gemm = value.is_product_of(0, 1);
    let value = value.clone();
    let threads = config.tile_threads.max(1);
    let multiply = move |av: &DenseMatrix, bv: &DenseMatrix, bk: i64, out: &mut DenseMatrix| {
        if fast_gemm {
            if threads > 1 {
                out.gemm_acc_parallel(av, bv, threads);
            } else {
                out.gemm_acc(av, bv);
            }
        } else {
            let valid_k = ((inner - bk * n as i64).min(n as i64)).max(0) as usize;
            general_tile_contract(av, bv, &value, valid_k, out);
        }
    };

    let std = lower_contraction(strategy, &a, &b, n, config.partitions, multiply, ctx)?;
    let result = TiledMatrix::new(std_dims.0, std_dims.1, n, std);
    Ok(if *swap_output {
        result.transpose()
    } else {
        result
    })
}

/// Lower one fully-resolved contraction strategy to its dataset DAG.
/// `a`/`b` are already oriented standard (contraction on `a.col`/`b.row`);
/// the caller — the frozen plan or the adaptive stage driver — has resolved
/// `strategy` and `partitions`. Shared by both paths so a runtime strategy
/// switch runs bit-identically to the same strategy chosen at plan time.
fn lower_contraction(
    strategy: MatMulStrategy,
    a: &TiledMatrix,
    b: &TiledMatrix,
    n: usize,
    partitions: usize,
    multiply: impl Fn(&DenseMatrix, &DenseMatrix, i64, &mut DenseMatrix) + Clone + Send + Sync + 'static,
    ctx: &Context,
) -> Result<Dataset<(TileCoord, DenseMatrix)>, CompError> {
    let std = match strategy {
        MatMulStrategy::JoinGroupBy => {
            // §4's naive translation: every partial product tile crosses the
            // shuffle inside a per-key list, no map-side combining.
            let lhs = a.tiles().map(|((i, k), t)| (k, (i, t)));
            let rhs = b.tiles().map(|((k, j), t)| (k, (j, t)));
            let multiply = multiply.clone();
            let prods = lhs
                .join(&rhs, partitions)
                .map(move |(k, ((i, av), (j, bv)))| {
                    let mut out = DenseMatrix::zeros(n, n);
                    multiply(&av, &bv, k, &mut out);
                    ((i, j), out)
                });
            prods.group_by_key(partitions).map_values(move |tiles| {
                let mut acc = DenseMatrix::zeros(n, n);
                for t in tiles {
                    acc.add_in_place(&t);
                }
                acc
            })
        }
        MatMulStrategy::ReduceByKey => {
            // §5.3: join on the contracted block index, one partial product
            // tile per (i, k, j), reduceByKey adds partials.
            let lhs = a.tiles().map(|((i, k), t)| (k, (i, t)));
            let rhs = b.tiles().map(|((k, j), t)| (k, (j, t)));
            let multiply = multiply.clone();
            let prods = lhs
                .join(&rhs, partitions)
                .map(move |(k, ((i, av), (j, bv)))| {
                    let mut out = DenseMatrix::zeros(n, n);
                    multiply(&av, &bv, k, &mut out);
                    ((i, j), out)
                });
            prods.reduce_by_key_in_place(partitions, |acc, t| acc.add_in_place(&t))
        }
        MatMulStrategy::GroupByJoin => {
            // §5.4: replicate rows of A across result columns and columns of
            // B across result rows, cogroup by result coordinate, reduce
            // locally — one shuffle round, no partial-product shuffle.
            let bcols_b = b.block_cols();
            let brows_a = a.block_rows();
            let lefts = a.tiles().flat_map(move |((i, k), t)| {
                (0..bcols_b)
                    .map(|j| ((i, j), (k, t.clone())))
                    .collect::<Vec<_>>()
            });
            let rights = b.tiles().flat_map(move |((k, j), t)| {
                (0..brows_a)
                    .map(|i| ((i, j), (k, t.clone())))
                    .collect::<Vec<_>>()
            });
            lefts
                .cogroup(&rights, partitions)
                .map(move |(coord, (ls, rs))| {
                    let mut out = DenseMatrix::zeros(n, n);
                    // Index the right tiles by contraction coordinate.
                    let mut by_k: HashMap<i64, &DenseMatrix> = HashMap::new();
                    for (k, t) in &rs {
                        by_k.insert(*k, t);
                    }
                    for (k, av) in &ls {
                        if let Some(bv) = by_k.get(k) {
                            multiply(av, bv, *k, &mut out);
                        }
                    }
                    (coord, out)
                })
        }
        MatMulStrategy::Broadcast => {
            // MLlib-style broadcast join: collect the smaller operand's
            // tiles on the driver, ship them to every task via
            // [`Context::broadcast`], and compute locally-merged partial
            // output tiles map-side. A single reduceByKey round combines
            // partials whose contraction spans several partitions of the
            // big side — no join shuffle at all.
            if b.rows() * b.cols() <= a.rows() * a.cols() {
                // Broadcast B, keyed by the contracted block index.
                let mut table: HashMap<i64, Vec<(i64, DenseMatrix)>> = HashMap::new();
                for ((k, j), t) in b.tiles().collect() {
                    table.entry(k).or_default().push((j, t));
                }
                let table = ctx.broadcast(table);
                a.tiles()
                    .map_partitions_stream(move |_, tiles| {
                        // Input tiles are only read: consume the stream by
                        // reference so shared source partitions are never
                        // cloned into the task.
                        let mut acc: HashMap<TileCoord, DenseMatrix> = HashMap::new();
                        tiles.for_each_ref(|((i, k), av)| {
                            let Some(row) = table.get(k) else { return };
                            for (j, bv) in row {
                                let out = acc
                                    .entry((*i, *j))
                                    .or_insert_with(|| DenseMatrix::zeros(n, n));
                                multiply(av, bv, *k, out);
                            }
                        });
                        PartitionStream::from_vec(acc.into_iter().collect())
                    })
                    .reduce_by_key_in_place(partitions, |acc, t| acc.add_in_place(&t))
            } else {
                // Broadcast A, keyed by the contracted block index.
                let mut table: HashMap<i64, Vec<(i64, DenseMatrix)>> = HashMap::new();
                for ((i, k), t) in a.tiles().collect() {
                    table.entry(k).or_default().push((i, t));
                }
                let table = ctx.broadcast(table);
                b.tiles()
                    .map_partitions_stream(move |_, tiles| {
                        let mut acc: HashMap<TileCoord, DenseMatrix> = HashMap::new();
                        tiles.for_each_ref(|((k, j), bv)| {
                            let Some(col) = table.get(k) else { return };
                            for (i, av) in col {
                                let out = acc
                                    .entry((*i, *j))
                                    .or_insert_with(|| DenseMatrix::zeros(n, n));
                                multiply(av, bv, *k, out);
                            }
                        });
                        PartitionStream::from_vec(acc.into_iter().collect())
                    })
                    .reduce_by_key_in_place(partitions, |acc, t| acc.add_in_place(&t))
            }
        }
        MatMulStrategy::Auto => {
            return Err(CompError::plan(
                "Auto contraction strategy must be resolved at plan time",
            ))
        }
    };
    Ok(std)
}

/// Fig. 1: per-tile axis reduction then block-wise `reduceByKey`.
fn exec_axis_reduce(
    plan: &Plan,
    env: &PlanEnv,
    config: &PlanConfig,
    len: i64,
) -> Result<TiledVector, CompError> {
    let Plan::AxisReduce {
        input,
        by_row,
        monoid,
        value,
    } = plan
    else {
        unreachable!()
    };
    let m = matrix_input(env, input)?;
    let expected = if *by_row { m.rows() } else { m.cols() };
    if expected != len {
        return Err(CompError::plan(format!(
            "builder length {len} does not match reduced axis {expected}"
        )));
    }
    let (zero, combine) = monoid_f64(*monoid)?;
    let n = m.tile_size();
    let (rows, cols) = (m.rows(), m.cols());
    let by_row = *by_row;
    let value = value.clone();
    let partial = m.tiles().map(move |((bi, bj), t)| {
        let mut block = vec![zero; n];
        let mut slots = [0.0f64; 3];
        for ti in 0..n {
            let gi = bi * n as i64 + ti as i64;
            if gi >= rows {
                break;
            }
            for tj in 0..n {
                let gj = bj * n as i64 + tj as i64;
                if gj >= cols {
                    break;
                }
                slots[0] = t.get(ti, tj);
                slots[1] = gi as f64;
                slots[2] = gj as f64;
                let v = value.eval(&slots);
                let slot = if by_row { ti } else { tj };
                block[slot] = combine(block[slot], v);
            }
        }
        let coord = if by_row { bi } else { bj };
        (coord, block)
    });
    let blocks = partial.reduce_by_key(config.partitions, move |mut a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = combine(*x, y);
        }
        a
    });
    // Replace identity remnants in valid positions is unnecessary: every
    // valid index receives at least one element (matrices are dense).
    Ok(TiledVector::new(len, n, blocks))
}

fn vector_input<'a>(env: &'a PlanEnv, name: &str) -> Result<&'a TiledVector, CompError> {
    env.array(name)
        .and_then(DistArray::as_vector)
        .ok_or_else(|| CompError::plan(format!("`{name}` is not a registered tiled vector")))
}

/// One tile × block partial product, shared by the shuffle and broadcast
/// mat-vec paths; `bk` is the contracted block coordinate, used to mask the
/// zero-padded contraction tail under general (non-product) combines.
fn tile_block_product(
    tile: &DenseMatrix,
    block: &[f64],
    bk: i64,
    n: usize,
    inner: i64,
    fast: bool,
    value: &ScalarFn,
) -> Vec<f64> {
    if fast {
        tile.matvec(block)
    } else {
        let valid = ((inner - bk * n as i64).clamp(0, n as i64)) as usize;
        let mut y = vec![0.0; n];
        let mut slots = [0.0f64; 2];
        for (r, out) in y.iter_mut().enumerate() {
            for (c, &bv) in block.iter().enumerate().take(valid) {
                slots[0] = tile.get(r, c);
                slots[1] = bv;
                *out += value.eval(&slots);
            }
        }
        y
    }
}

/// Matrix–vector contraction. The shuffle path joins tiles with vector
/// blocks on the contracted block coordinate and `reduceByKey`s the partial
/// block products; the broadcast path ships the whole vector to every task
/// and merges partials on the driver — zero shuffle stages.
fn exec_mat_vec(
    plan: &Plan,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    len: i64,
) -> Result<TiledVector, CompError> {
    let Plan::MatVec {
        matrix,
        vector,
        contract_row,
        value,
        broadcast,
        decision,
    } = plan
    else {
        unreachable!()
    };
    let m = matrix_input(env, matrix)?;
    let v = vector_input(env, vector)?;
    if m.tile_size() != v.block_size() {
        return Err(CompError::plan(
            "matrix tile size and vector block size must match",
        ));
    }
    // Normalize to y = A'·x with the contraction on A'.col.
    let m = if *contract_row {
        m.transpose()
    } else {
        m.clone()
    };
    if m.cols() != v.len() {
        return Err(CompError::plan(format!(
            "matrix-vector inner dimensions differ: {} vs {}",
            m.cols(),
            v.len()
        )));
    }
    if m.rows() != len {
        return Err(CompError::plan(format!(
            "builder length {len} does not match output dimension {}",
            m.rows()
        )));
    }
    let n = m.tile_size();
    let inner = m.cols();
    let fast = value.is_product_of(0, 1);
    let value = value.clone();

    // Adaptive stage driver: when the cost model picked the shuffle path
    // from estimates, probe the materialized vector at this node's frontier
    // and promote to the zero-shuffle broadcast path if the observed size
    // fits the budget and wins on cost.
    let broadcast = *broadcast
        || (config.adaptive
            && decision.auto
            && crate::stage::adapt_mat_vec(
                env,
                ctx,
                config,
                matrix,
                vector,
                v,
                *contract_row,
                decision,
            ));

    if broadcast {
        // Zero-shuffle path: collect the vector's blocks, broadcast them,
        // compute per-partition pre-merged partial output blocks map-side,
        // collect those partials, and finish the merge on the driver. Every
        // stage here is an action (collect) or a source — no shuffle.
        let table = ctx.broadcast(v.blocks().collect_map());
        let partials = m
            .tiles()
            .map_partitions_stream(move |_, tiles| {
                let mut acc: HashMap<i64, Vec<f64>> = HashMap::new();
                tiles.for_each_ref(|((i, k), tile)| {
                    let Some(block) = table.get(k) else { return };
                    let y = tile_block_product(tile, block, *k, n, inner, fast, &value);
                    match acc.entry(*i) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (x, yv) in e.get_mut().iter_mut().zip(y) {
                                *x += yv;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(y);
                        }
                    }
                });
                PartitionStream::from_vec(acc.into_iter().collect())
            })
            .collect();
        let block_count = ((len + n as i64 - 1) / n as i64).max(0) as usize;
        let mut merged: Vec<Vec<f64>> = vec![vec![0.0; n]; block_count];
        for (i, y) in partials {
            if let Some(dst) = merged.get_mut(i as usize) {
                for (x, yv) in dst.iter_mut().zip(y) {
                    *x += yv;
                }
            }
        }
        let blocks: Vec<(i64, Vec<f64>)> = merged
            .into_iter()
            .enumerate()
            .map(|(i, y)| (i as i64, y))
            .collect();
        let blocks = ctx.parallelize(blocks, config.partitions);
        return Ok(TiledVector::new(len, n, blocks));
    }

    let lhs = m.tiles().map(|((i, k), t)| (k, (i, t)));
    let partial = lhs
        .join(v.blocks(), config.partitions)
        .map(move |(k, ((i, tile), block))| {
            (
                i,
                tile_block_product(&tile, &block, k, n, inner, fast, &value),
            )
        });
    let blocks = partial.reduce_by_key(config.partitions, |mut a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    });
    Ok(TiledVector::new(len, n, blocks))
}

/// Element-wise over co-indexed vector blocks (1-D rule 17).
fn exec_vector_eltwise(
    plan: &Plan,
    env: &PlanEnv,
    config: &PlanConfig,
    len: i64,
) -> Result<TiledVector, CompError> {
    let Plan::VectorEltwise {
        inputs,
        value,
        guard,
    } = plan
    else {
        unreachable!()
    };
    let vecs: Vec<&TiledVector> = inputs
        .iter()
        .map(|name| vector_input(env, name))
        .collect::<Result<_, _>>()?;
    let first = vecs[0];
    let n = first.block_size();
    for v in &vecs {
        if v.len() != first.len() || v.block_size() != n {
            return Err(CompError::plan(
                "element-wise vector inputs must have identical length and blocking",
            ));
        }
    }
    if first.len() != len {
        return Err(CompError::plan(format!(
            "builder length {len} does not match input length {}",
            first.len()
        )));
    }
    let mut joined: Dataset<(i64, Vec<Vec<f64>>)> =
        first.blocks().map(|(b, block)| (b, vec![block]));
    for v in &vecs[1..] {
        joined = joined.cogroup(v.blocks(), config.partitions).flat_map(
            |(b, (mut accs, mut blocks))| match (accs.pop(), blocks.pop()) {
                (Some(mut acc), Some(block)) => {
                    acc.push(block);
                    vec![(b, acc)]
                }
                _ => vec![],
            },
        );
    }
    let k = vecs.len();
    let value = value.clone();
    let guard = guard.clone();
    let max_slot = value
        .max_slot()
        .max(guard.as_ref().and_then(ScalarFn::max_slot));
    let needs_index = max_slot.is_some_and(|s| s >= k);
    let in_len = first.len();
    let blocks = joined.map(move |(b, parts)| {
        let mut bufs: Vec<&[f64]> = parts.iter().map(|p| p.as_slice()).collect();
        let idx_buf;
        if needs_index {
            idx_buf = (0..n as i64)
                .map(|off| (b * n as i64 + off) as f64)
                .collect::<Vec<_>>();
            bufs.push(&idx_buf);
        }
        let mut data = value.eval_batch(&bufs, n);
        if let Some(g) = &guard {
            let mask = g.eval_batch(&bufs, n);
            for (d, m) in data.iter_mut().zip(mask) {
                if m == 0.0 {
                    *d = 0.0;
                }
            }
        }
        // Zero the padding tail of the last block.
        let valid = ((in_len - b * n as i64).clamp(0, n as i64)) as usize;
        data[valid..].fill(0.0);
        (b, data)
    });
    Ok(TiledVector::new(len, n, blocks))
}

/// §5.2 rule 19: replicate tiles to the output coordinates their elements
/// map to, regroup, assemble output tiles.
fn exec_index_remap(
    plan: &Plan,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    rows: i64,
    cols: i64,
) -> Result<TiledMatrix, CompError> {
    let Plan::IndexRemap {
        input,
        fi,
        fj,
        value,
    } = plan
    else {
        unreachable!()
    };
    let m = matrix_input(env, input)?;
    let n = m.tile_size();
    let (in_rows, in_cols) = (m.rows(), m.cols());
    let ni = n as i64;

    // Map stage: each tile is sent to every output tile one of its elements
    // lands in — the I_f(K) image set of §5.2.
    let (fi2, fj2) = (fi.clone(), fj.clone());
    let replicated = m.tiles().flat_map(move |((bi, bj), t)| {
        let mut dests: Vec<TileCoord> = Vec::new();
        for ti in 0..n {
            let gi = bi * ni + ti as i64;
            if gi >= in_rows {
                break;
            }
            for tj in 0..n {
                let gj = bj * ni + tj as i64;
                if gj >= in_cols {
                    break;
                }
                let (di, dj) = (fi2.eval(&[gi, gj]), fj2.eval(&[gi, gj]));
                if di >= 0 && di < rows && dj >= 0 && dj < cols {
                    let dest = (di.div_euclid(ni), dj.div_euclid(ni));
                    if !dests.contains(&dest) {
                        dests.push(dest);
                    }
                }
            }
        }
        dests
            .into_iter()
            .map(|d| (d, ((bi, bj), t.clone())))
            .collect::<Vec<_>>()
    });

    // Reduce stage: assemble each output tile from the shuffled inputs.
    let (fi3, fj3, value) = (fi.clone(), fj.clone(), value.clone());
    let assembled = replicated
        .group_by_key(config.partitions)
        .map(move |((di, dj), sources)| {
            let mut out = DenseMatrix::zeros(n, n);
            let mut slots = [0.0f64; 3];
            for ((bi, bj), t) in sources {
                for ti in 0..n {
                    let gi = bi * ni + ti as i64;
                    if gi >= in_rows {
                        break;
                    }
                    for tj in 0..n {
                        let gj = bj * ni + tj as i64;
                        if gj >= in_cols {
                            break;
                        }
                        let (oi, oj) = (fi3.eval(&[gi, gj]), fj3.eval(&[gi, gj]));
                        if oi.div_euclid(ni) == di
                            && oj.div_euclid(ni) == dj
                            && oi >= 0
                            && oi < rows
                            && oj >= 0
                            && oj < cols
                        {
                            slots[0] = t.get(ti, tj);
                            slots[1] = gi as f64;
                            slots[2] = gj as f64;
                            out.set(
                                oi.rem_euclid(ni) as usize,
                                oj.rem_euclid(ni) as usize,
                                value.eval(&slots),
                            );
                        }
                    }
                }
            }
            ((di, dj), out)
        });

    // Complete the grid: output tiles no input element maps to are zero.
    let tiles = union_with_zero_skeleton(assembled, ctx, rows, cols, n, config.partitions);
    Ok(TiledMatrix::new(rows, cols, n, tiles))
}

/// Union a tile set with an all-zero full grid so every coordinate exists.
fn union_with_zero_skeleton(
    tiles: Dataset<(TileCoord, DenseMatrix)>,
    ctx: &Context,
    rows: i64,
    cols: i64,
    tile_size: usize,
    partitions: usize,
) -> Dataset<(TileCoord, DenseMatrix)> {
    let brows = (rows + tile_size as i64 - 1) / tile_size as i64;
    let bcols = (cols + tile_size as i64 - 1) / tile_size as i64;
    let coords: Vec<TileCoord> = (0..brows)
        .flat_map(|i| (0..bcols).map(move |j| (i, j)))
        .collect();
    let skeleton = ctx
        .parallelize(coords, partitions)
        .map(move |c| (c, DenseMatrix::zeros(tile_size, tile_size)));
    tiles
        .union(&skeleton)
        .reduce_by_key_in_place(partitions, |acc, t| acc.add_in_place(&t))
}

/// Accumulator planes for the generic group-by plan: one `DenseMatrix` per
/// aggregate plus a trailing hit-count plane.
type Planes = Vec<DenseMatrix>;

struct AggSpec {
    zeros: Vec<f64>,
    combines: Vec<fn(f64, f64) -> f64>,
    inputs: Vec<Expr>,
}

fn agg_spec(plan_aggs: &[crate::analysis::Aggregate]) -> Result<AggSpec, CompError> {
    let mut zeros = Vec::new();
    let mut combines = Vec::new();
    let mut inputs = Vec::new();
    for a in plan_aggs {
        let (z, c) = monoid_f64(a.monoid)?;
        zeros.push(z);
        combines.push(c);
        inputs.push(a.input.clone());
    }
    // Hidden hit-count plane.
    zeros.push(0.0);
    combines.push(|a, b| a + b);
    Ok(AggSpec {
        zeros,
        combines,
        inputs,
    })
}

/// Build the per-element mini-comprehension `[ (key, (in_0, ..)) | quals ]`.
fn mini_comprehension(
    inner_quals: &[Qualifier],
    key: &GroupKey,
    key_expr: &Option<Expr>,
    inputs: &[Expr],
) -> Comprehension {
    let key_value = match key_expr {
        Some(e) => e.clone(),
        None => match key {
            GroupKey::Cell(k1, k2) => {
                Expr::Tuple(vec![Expr::Var(k1.clone()), Expr::Var(k2.clone())])
            }
            GroupKey::Index(k) => Expr::Var(k.clone()),
        },
    };
    // When the key is an expression, the key pattern still needs binding for
    // any post-key uses; the fast plans have none, so only the value matters.
    let mut quals = inner_quals.to_vec();
    if key_expr.is_some() {
        let pat = match key {
            GroupKey::Cell(k1, k2) => {
                Pattern::Tuple(vec![Pattern::Var(k1.clone()), Pattern::Var(k2.clone())])
            }
            GroupKey::Index(k) => Pattern::Var(k.clone()),
        };
        quals.push(Qualifier::Let(pat, key_value.clone()));
    }
    Comprehension {
        head: Box::new(Expr::Tuple(vec![key_value, Expr::Tuple(inputs.to_vec())])),
        qualifiers: quals,
    }
}

/// Bind the planner scalars into a `comp` environment.
fn scalar_env(env: &PlanEnv, names: &[String]) -> comp::Env {
    let mut cenv = comp::Env::new();
    for n in names {
        if let Some(v) = env.scalar(n) {
            cenv.bind(n.clone(), v.clone());
        }
    }
    cenv
}

/// §5.3 generic plan, matrix-shaped keys.
fn exec_group_aggregate_matrix(
    plan: &Plan,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    rows: i64,
    cols: i64,
) -> Result<TiledMatrix, CompError> {
    let Plan::GroupByAggregate {
        input,
        gen_vars,
        inner_quals,
        key,
        key_expr,
        aggregates,
        finalizer,
    } = plan
    else {
        unreachable!()
    };
    let m = matrix_input(env, input)?;
    let n = m.tile_size();
    let ni = n as i64;
    let spec = agg_spec(aggregates)?;
    let nplanes = spec.zeros.len();
    let mini = mini_comprehension(inner_quals, key, key_expr, &spec.inputs);

    // Scalars referenced anywhere in the mini comprehension.
    let free: Vec<String> = Expr::Comprehension(mini.clone())
        .free_vars()
        .into_iter()
        .collect();
    let base_env = scalar_env(env, &free);
    let (rv, cv, vv) = gen_vars.clone();
    let (in_rows, in_cols) = (m.rows(), m.cols());
    let zeros = spec.zeros.clone();
    let combines = spec.combines.clone();

    let partial = m.tiles().flat_map(move |((bi, bj), t)| {
        let mut acc: HashMap<TileCoord, Planes> = HashMap::new();
        let mut cenv = base_env.clone();
        for ti in 0..n {
            let gi = bi * ni + ti as i64;
            if gi >= in_rows {
                break;
            }
            for tj in 0..n {
                let gj = bj * ni + tj as i64;
                if gj >= in_cols {
                    break;
                }
                let scope = cenv.mark();
                cenv.bind(rv.clone(), Value::Int(gi));
                cenv.bind(cv.clone(), Value::Int(gj));
                cenv.bind(vv.clone(), Value::Float(t.get(ti, tj)));
                let rows_out = eval_comprehension(&mini, &mut cenv)
                    .expect("group-by aggregate inner evaluation failed");
                cenv.reset(scope);
                for row in rows_out {
                    let Value::Tuple(kv) = row else { continue };
                    let (key_v, inputs_v) = (&kv[0], &kv[1]);
                    let Value::Tuple(kij) = key_v else { continue };
                    let (Ok(k1), Ok(k2)) = (kij[0].as_i64(), kij[1].as_i64()) else {
                        continue;
                    };
                    if k1 < 0 || k1 >= rows || k2 < 0 || k2 >= cols {
                        continue;
                    }
                    let dest = (k1.div_euclid(ni), k2.div_euclid(ni));
                    let off = (k1.rem_euclid(ni) as usize, k2.rem_euclid(ni) as usize);
                    let planes = acc.entry(dest).or_insert_with(|| {
                        zeros
                            .iter()
                            .map(|&z| {
                                let mut p = DenseMatrix::zeros(n, n);
                                p.data_mut().fill(z);
                                p
                            })
                            .collect()
                    });
                    let Value::Tuple(ins) = inputs_v else {
                        continue;
                    };
                    for (p, (inv, combine)) in ins.iter().zip(combines.iter()).enumerate() {
                        let x = inv.as_f64().unwrap_or(0.0);
                        let cur = planes[p].get(off.0, off.1);
                        planes[p].set(off.0, off.1, combine(cur, x));
                    }
                    // Hit count plane.
                    let last = nplanes - 1;
                    let cur = planes[last].get(off.0, off.1);
                    planes[last].set(off.0, off.1, cur + 1.0);
                }
            }
        }
        acc.into_iter().collect::<Vec<_>>()
    });

    let combines2 = spec.combines.clone();
    let reduced = partial.reduce_by_key(config.partitions, move |mut a, b| {
        for ((pa, pb), combine) in a.iter_mut().zip(b).zip(combines2.iter()) {
            for (x, y) in pa.data_mut().iter_mut().zip(pb.data()) {
                *x = combine(*x, *y);
            }
        }
        a
    });

    // Finalize each cell: untouched cells are 0 (dense builder semantics).
    let agg_slots: Vec<String> = (0..aggregates.len()).map(|i| format!("%agg{i}")).collect();
    let fenv = env.clone();
    let fin = ScalarFn::compile(finalizer, &agg_slots, &|v| fenv.float_scalar(v))?;
    let finalized = reduced.map_values(move |planes| {
        let mut out = DenseMatrix::zeros(n, n);
        let mut slots = vec![0.0; agg_slots.len()];
        let count = &planes[planes.len() - 1];
        for e in 0..n * n {
            if count.data()[e] == 0.0 {
                continue;
            }
            for (s, p) in planes[..planes.len() - 1].iter().enumerate() {
                slots[s] = p.data()[e];
            }
            out.data_mut()[e] = fin.eval(&slots);
        }
        out
    });
    let tiles = union_with_zero_skeleton(finalized, ctx, rows, cols, n, config.partitions);
    Ok(TiledMatrix::new(rows, cols, n, tiles))
}

/// §5.3 generic plan, vector-shaped keys.
fn exec_group_aggregate_vector(
    plan: &Plan,
    env: &PlanEnv,
    _ctx: &Context,
    config: &PlanConfig,
    len: i64,
) -> Result<TiledVector, CompError> {
    let Plan::GroupByAggregate {
        input,
        gen_vars,
        inner_quals,
        key,
        key_expr,
        aggregates,
        finalizer,
    } = plan
    else {
        unreachable!()
    };
    let m = matrix_input(env, input)?;
    let n = m.tile_size();
    let ni = n as i64;
    let spec = agg_spec(aggregates)?;
    let nplanes = spec.zeros.len();
    let mini = mini_comprehension(inner_quals, key, key_expr, &spec.inputs);
    let free: Vec<String> = Expr::Comprehension(mini.clone())
        .free_vars()
        .into_iter()
        .collect();
    let base_env = scalar_env(env, &free);
    let (rv, cv, vv) = gen_vars.clone();
    let (in_rows, in_cols) = (m.rows(), m.cols());
    let zeros = spec.zeros.clone();
    let combines = spec.combines.clone();

    let partial = m.tiles().flat_map(move |((bi, bj), t)| {
        let mut acc: HashMap<i64, Vec<Vec<f64>>> = HashMap::new();
        let mut cenv = base_env.clone();
        for ti in 0..n {
            let gi = bi * ni + ti as i64;
            if gi >= in_rows {
                break;
            }
            for tj in 0..n {
                let gj = bj * ni + tj as i64;
                if gj >= in_cols {
                    break;
                }
                let scope = cenv.mark();
                cenv.bind(rv.clone(), Value::Int(gi));
                cenv.bind(cv.clone(), Value::Int(gj));
                cenv.bind(vv.clone(), Value::Float(t.get(ti, tj)));
                let rows_out = eval_comprehension(&mini, &mut cenv)
                    .expect("group-by aggregate inner evaluation failed");
                cenv.reset(scope);
                for row in rows_out {
                    let Value::Tuple(kv) = row else { continue };
                    let Ok(k) = kv[0].as_i64() else { continue };
                    if k < 0 || k >= len {
                        continue;
                    }
                    let dest = k.div_euclid(ni);
                    let off = k.rem_euclid(ni) as usize;
                    let planes = acc
                        .entry(dest)
                        .or_insert_with(|| zeros.iter().map(|&z| vec![z; n]).collect());
                    let Value::Tuple(ins) = &kv[1] else { continue };
                    for (p, (inv, combine)) in ins.iter().zip(combines.iter()).enumerate() {
                        let x = inv.as_f64().unwrap_or(0.0);
                        planes[p][off] = combine(planes[p][off], x);
                    }
                    planes[nplanes - 1][off] += 1.0;
                }
            }
        }
        acc.into_iter().collect::<Vec<_>>()
    });

    let combines2 = spec.combines.clone();
    let reduced = partial.reduce_by_key(config.partitions, move |mut a, b| {
        for ((pa, pb), combine) in a.iter_mut().zip(b).zip(combines2.iter()) {
            for (x, y) in pa.iter_mut().zip(pb) {
                *x = combine(*x, y);
            }
        }
        a
    });
    let agg_slots: Vec<String> = (0..aggregates.len()).map(|i| format!("%agg{i}")).collect();
    let fenv = env.clone();
    let fin = ScalarFn::compile(finalizer, &agg_slots, &|v| fenv.float_scalar(v))?;
    let blocks = reduced.map_values(move |planes| {
        let mut out = vec![0.0; n];
        let mut slots = vec![0.0; agg_slots.len()];
        let count = &planes[planes.len() - 1];
        for e in 0..n {
            if count[e] == 0.0 {
                continue;
            }
            for (s, p) in planes[..planes.len() - 1].iter().enumerate() {
                slots[s] = p[e];
            }
            out[e] = fin.eval(&slots);
        }
        out
    });
    Ok(TiledVector::new(len, n, blocks))
}

/// Fallback: sparsify every registered array, run the reference interpreter,
/// rebuild the output storage.
fn exec_local(
    expr: &Expr,
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    output: &OutputKind,
) -> Result<ExecResult, CompError> {
    let mut cenv = comp::Env::new();
    for name in expr.free_vars() {
        if let Some(v) = env.scalar(&name) {
            cenv.bind(name.clone(), v.clone());
            continue;
        }
        match env.array(&name) {
            Some(DistArray::Matrix(m)) => {
                cenv.bind(name.clone(), triplets_to_value(&m.to_local().to_triplets()));
            }
            Some(DistArray::Vector(v)) => {
                let vals = v.to_local();
                cenv.bind(
                    name.clone(),
                    Value::List(
                        vals.iter()
                            .enumerate()
                            .map(|(i, &x)| Value::pair(Value::Int(i as i64), Value::Float(x)))
                            .collect(),
                    ),
                );
            }
            Some(DistArray::Coo(m)) => {
                cenv.bind(name.clone(), triplets_to_value(&m.entries().collect()));
            }
            None => {}
        }
    }
    let result = comp::eval(expr, &mut cenv)?;
    match output {
        OutputKind::Local => Ok(ExecResult::Local(result)),
        OutputKind::Matrix { rows, cols } => {
            let triplets = value_to_triplets(&result)?;
            let local = LocalMatrix::from_triplets(*rows as usize, *cols as usize, &triplets);
            let tile = default_tile_size(env);
            Ok(ExecResult::Matrix(TiledMatrix::from_local(
                ctx,
                &local,
                tile,
                config.partitions,
            )))
        }
        OutputKind::Vector { len } => {
            let list = result.into_list()?;
            let mut vals = vec![0.0; *len as usize];
            for item in list {
                let Value::Tuple(kv) = item else {
                    return Err(CompError::plan("vector result must be (i, v) pairs"));
                };
                let i = kv[0].as_i64()?;
                if i >= 0 && i < *len {
                    vals[i as usize] = kv[1].as_f64()?;
                }
            }
            let tile = default_tile_size(env);
            Ok(ExecResult::Vector(TiledVector::from_local(
                ctx,
                &vals,
                tile,
                config.partitions,
            )))
        }
    }
}

fn default_tile_size(env: &PlanEnv) -> usize {
    for name in env.array_names() {
        if let Some(DistArray::Matrix(m)) = env.array(name) {
            return m.tile_size();
        }
    }
    64
}

fn triplets_to_value(triplets: &[((i64, i64), f64)]) -> Value {
    Value::List(
        triplets
            .iter()
            .map(|&((i, j), v)| {
                Value::pair(Value::pair(Value::Int(i), Value::Int(j)), Value::Float(v))
            })
            .collect(),
    )
}

#[allow(clippy::type_complexity)]
fn value_to_triplets(v: &Value) -> Result<Vec<((i64, i64), f64)>, CompError> {
    let Value::List(items) = v else {
        return Err(CompError::plan("matrix result must be an association list"));
    };
    items
        .iter()
        .map(|item| {
            let Value::Tuple(kv) = item else {
                return Err(CompError::plan("matrix entries must be ((i,j), v)"));
            };
            let Value::Tuple(ij) = &kv[0] else {
                return Err(CompError::plan("matrix entries must be ((i,j), v)"));
            };
            Ok(((ij[0].as_i64()?, ij[1].as_i64()?), kv[1].as_f64()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparkline::ChaosPlan;

    /// Recovery stages launched from inside a plan's shuffles inherit the
    /// plan-node tag [`execute`] scopes around the dispatch: when an executor
    /// dies between map and reduce, the `shuffle.resubmit` stage is
    /// attributed to the plan node that lost its outputs, and the recovered
    /// result is bit-identical to the fault-free run.
    #[test]
    fn resubmitted_stages_inherit_the_plan_node_tag() {
        let src = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, \
                    kk == k, let v = a*b, group by (i,j) ]";
        let config = PlanConfig {
            partitions: 4,
            // Pin a shuffling strategy: the chaos kill targets a specific
            // shuffle barrier index, and the adaptive planner would pick the
            // zero-shuffle broadcast path for these tiny inputs.
            matmul: MatMulStrategy::GroupByJoin,
            ..Default::default()
        };
        let run = |chaos: Option<ChaosPlan>| {
            let mut builder = Context::builder()
                .workers(4)
                .executors(4)
                .max_task_attempts(8)
                .max_stage_attempts(12);
            builder = match chaos {
                Some(p) => builder.chaos(p),
                None => builder.chaos_off(),
            };
            let ctx = builder.build();
            let mut rng = StdRng::seed_from_u64(21);
            let a = LocalMatrix::random(8, 8, -1.0, 1.0, &mut rng);
            let b = LocalMatrix::random(8, 8, -1.0, 1.0, &mut rng);
            let mut env = PlanEnv::new();
            env.set_array(
                "A",
                DistArray::Matrix(TiledMatrix::from_local(&ctx, &a, 4, 4)),
            );
            env.set_array(
                "B",
                DistArray::Matrix(TiledMatrix::from_local(&ctx, &b, 4, 4)),
            );
            env.set_int("n", 8);
            // Registration's shuffle count is deterministic: it is the
            // barrier index of the query's own first map→reduce barrier.
            let barriers = ctx.metrics().snapshot().shuffle_count;
            ctx.trace();
            let got = crate::run_text(src, &env, &ctx, &config)
                .unwrap()
                .into_matrix()
                .unwrap()
                .to_local();
            (got, ctx.take_profile(), barriers)
        };

        let (want, clean, barriers) = run(None);
        assert_eq!(clean.recovery.stages_resubmitted, 0);

        let plan = ChaosPlan::new().with_kill_owner_at_barrier(barriers, 1);
        let (got, profile, _) = run(Some(plan));
        assert_eq!(got, want, "recovered plan result must be bit-identical");
        assert!(
            profile.recovery.stages_resubmitted >= 1,
            "the barrier kill must force a resubmission:\n{}",
            profile.render()
        );
        let resubmit = profile
            .stages
            .iter()
            .find(|st| st.label.starts_with("shuffle.resubmit"))
            .expect("a shuffle.resubmit stage must appear in the trace");
        assert!(
            resubmit
                .tag
                .as_deref()
                .is_some_and(|t| t.starts_with("contraction")),
            "recovery stage must carry the plan-node tag, got {:?}",
            resubmit.tag
        );
        // est-vs-actual pairing under faults: the resubmitted attempt's
        // bytes carry the same plan-node tag but must NOT inflate the
        // actual-of-tag figure — it reports first-successful-attempt bytes,
        // so the killed run pairs the estimate with exactly what the clean
        // run measured.
        let tag = "contraction/groupByJoin";
        let clean_bytes = clean.actual_shuffle_bytes_of_tag(tag);
        assert!(clean_bytes > 0, "{}", clean.render());
        assert_eq!(
            profile.actual_shuffle_bytes_of_tag(tag),
            clean_bytes,
            "resubmitted attempts must not be summed into actual bytes:\n{}",
            profile.render()
        );
    }
}
