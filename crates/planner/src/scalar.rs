//! Compiled scalar and index expressions.
//!
//! Tile kernels must not pay dynamic-dispatch or hashing costs per element,
//! so the planner compiles the scalar fragments of a comprehension (head
//! values, guards, index maps) into small slot-addressed expression trees
//! over `f64` / `i64`.

use comp::ast::{BinOp, Expr, UnOp};
use comp::errors::CompError;

/// A scalar (`f64`) expression over a fixed set of variable slots.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarFn {
    Const(f64),
    /// Slot index into the argument array.
    Var(usize),
    Add(Box<ScalarFn>, Box<ScalarFn>),
    Sub(Box<ScalarFn>, Box<ScalarFn>),
    Mul(Box<ScalarFn>, Box<ScalarFn>),
    Div(Box<ScalarFn>, Box<ScalarFn>),
    Neg(Box<ScalarFn>),
    Abs(Box<ScalarFn>),
    Sqrt(Box<ScalarFn>),
    /// `if cond != 0 then a else b` (conditions compile comparisons to 0/1).
    If(Box<ScalarFn>, Box<ScalarFn>, Box<ScalarFn>),
    /// Comparison producing 1.0 / 0.0.
    Cmp(BinOp, Box<ScalarFn>, Box<ScalarFn>),
}

impl ScalarFn {
    /// Compile `expr`, resolving variables against `slots` (slot `i` holds
    /// the variable named `slots[i]`). Scalars bound in `consts` inline.
    pub fn compile(
        expr: &Expr,
        slots: &[String],
        consts: &dyn Fn(&str) -> Option<f64>,
    ) -> Result<ScalarFn, CompError> {
        let c = |e: &Expr| ScalarFn::compile(e, slots, consts);
        Ok(match expr {
            Expr::Int(n) => ScalarFn::Const(*n as f64),
            Expr::Float(x) => ScalarFn::Const(*x),
            Expr::Bool(b) => ScalarFn::Const(if *b { 1.0 } else { 0.0 }),
            Expr::Var(v) => match slots.iter().position(|s| s == v) {
                Some(i) => ScalarFn::Var(i),
                None => match consts(v) {
                    Some(x) => ScalarFn::Const(x),
                    None => {
                        return Err(CompError::plan(format!(
                            "variable `{v}` is not an element variable or registered scalar"
                        )))
                    }
                },
            },
            Expr::BinOp(op, a, b) => {
                let (a, b) = (Box::new(c(a)?), Box::new(c(b)?));
                match op {
                    BinOp::Add => ScalarFn::Add(a, b),
                    BinOp::Sub => ScalarFn::Sub(a, b),
                    BinOp::Mul => ScalarFn::Mul(a, b),
                    BinOp::Div => ScalarFn::Div(a, b),
                    BinOp::And => ScalarFn::Mul(a, b),
                    BinOp::Or => {
                        // a || b  ==  min(a + b, 1) for 0/1 operands.
                        ScalarFn::Cmp(
                            BinOp::Gt,
                            Box::new(ScalarFn::Add(a, b)),
                            Box::new(ScalarFn::Const(0.0)),
                        )
                    }
                    cmp => ScalarFn::Cmp(*cmp, a, b),
                }
            }
            Expr::UnOp(UnOp::Neg, e) => ScalarFn::Neg(Box::new(c(e)?)),
            Expr::UnOp(UnOp::Not, e) => {
                ScalarFn::Sub(Box::new(ScalarFn::Const(1.0)), Box::new(c(e)?))
            }
            Expr::If(cond, t, f) => {
                ScalarFn::If(Box::new(c(cond)?), Box::new(c(t)?), Box::new(c(f)?))
            }
            Expr::Call(f, args) if f == "abs" && args.len() == 1 => {
                ScalarFn::Abs(Box::new(c(&args[0])?))
            }
            Expr::Call(f, args) if f == "sqrt" && args.len() == 1 => {
                ScalarFn::Sqrt(Box::new(c(&args[0])?))
            }
            other => {
                return Err(CompError::plan(format!(
                    "expression is not a compilable scalar: {other}"
                )))
            }
        })
    }

    /// Evaluate over the slot values.
    pub fn eval(&self, vars: &[f64]) -> f64 {
        match self {
            ScalarFn::Const(x) => *x,
            ScalarFn::Var(i) => vars[*i],
            ScalarFn::Add(a, b) => a.eval(vars) + b.eval(vars),
            ScalarFn::Sub(a, b) => a.eval(vars) - b.eval(vars),
            ScalarFn::Mul(a, b) => a.eval(vars) * b.eval(vars),
            ScalarFn::Div(a, b) => a.eval(vars) / b.eval(vars),
            ScalarFn::Neg(a) => -a.eval(vars),
            ScalarFn::Abs(a) => a.eval(vars).abs(),
            ScalarFn::Sqrt(a) => a.eval(vars).sqrt(),
            ScalarFn::If(c, t, f) => {
                if c.eval(vars) != 0.0 {
                    t.eval(vars)
                } else {
                    f.eval(vars)
                }
            }
            ScalarFn::Cmp(op, a, b) => {
                let (x, y) = (a.eval(vars), b.eval(vars));
                let r = match op {
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    _ => unreachable!("non-comparison in Cmp"),
                };
                if r {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// True if this is exactly `Var(a) * Var(b)` — the GEMM fast-path probe.
    pub fn is_product_of(&self, a: usize, b: usize) -> bool {
        matches!(self, ScalarFn::Mul(x, y)
            if **x == ScalarFn::Var(a) && **y == ScalarFn::Var(b))
    }

    /// Highest slot index referenced, if any.
    pub fn max_slot(&self) -> Option<usize> {
        match self {
            ScalarFn::Const(_) => None,
            ScalarFn::Var(i) => Some(*i),
            ScalarFn::Add(a, b)
            | ScalarFn::Sub(a, b)
            | ScalarFn::Mul(a, b)
            | ScalarFn::Div(a, b)
            | ScalarFn::Cmp(_, a, b) => a.max_slot().max(b.max_slot()),
            ScalarFn::Neg(a) | ScalarFn::Abs(a) | ScalarFn::Sqrt(a) => a.max_slot(),
            ScalarFn::If(c, t, f) => c.max_slot().max(t.max_slot()).max(f.max_slot()),
        }
    }

    /// Vectorized evaluation: apply the expression to whole buffers at once
    /// (one loop per tree node instead of one tree walk per element). This
    /// is what makes compiled element-wise plans competitive with
    /// hand-written kernels — the analog of the paper generating straight
    /// Scala loops instead of interpreting the AST.
    ///
    /// Every slot buffer must have at least `len` elements.
    pub fn eval_batch(&self, vars: &[&[f64]], len: usize) -> Vec<f64> {
        match self {
            ScalarFn::Const(c) => vec![*c; len],
            ScalarFn::Var(i) => vars[*i][..len].to_vec(),
            ScalarFn::Add(a, b) => zip_batch(a, b, vars, len, |x, y| x + y),
            ScalarFn::Sub(a, b) => zip_batch(a, b, vars, len, |x, y| x - y),
            ScalarFn::Mul(a, b) => zip_batch(a, b, vars, len, |x, y| x * y),
            ScalarFn::Div(a, b) => zip_batch(a, b, vars, len, |x, y| x / y),
            ScalarFn::Neg(a) => map_batch(a, vars, len, |x| -x),
            ScalarFn::Abs(a) => map_batch(a, vars, len, f64::abs),
            ScalarFn::Sqrt(a) => map_batch(a, vars, len, f64::sqrt),
            ScalarFn::If(c, t, f) => {
                let mut cond = c.eval_batch(vars, len);
                let then = t.eval_batch(vars, len);
                let els = f.eval_batch(vars, len);
                for ((c, t), e) in cond.iter_mut().zip(then).zip(els) {
                    *c = if *c != 0.0 { t } else { e };
                }
                cond
            }
            ScalarFn::Cmp(op, a, b) => {
                let cmp: fn(f64, f64) -> bool = match op {
                    BinOp::Eq => |x, y| x == y,
                    BinOp::Ne => |x, y| x != y,
                    BinOp::Lt => |x, y| x < y,
                    BinOp::Le => |x, y| x <= y,
                    BinOp::Gt => |x, y| x > y,
                    BinOp::Ge => |x, y| x >= y,
                    _ => unreachable!("non-comparison in Cmp"),
                };
                zip_batch(
                    a,
                    b,
                    vars,
                    len,
                    move |x, y| {
                        if cmp(x, y) {
                            1.0
                        } else {
                            0.0
                        }
                    },
                )
            }
        }
    }
}

fn zip_batch(
    a: &ScalarFn,
    b: &ScalarFn,
    vars: &[&[f64]],
    len: usize,
    f: impl Fn(f64, f64) -> f64,
) -> Vec<f64> {
    let mut x = a.eval_batch(vars, len);
    let y = b.eval_batch(vars, len);
    for (xv, yv) in x.iter_mut().zip(y) {
        *xv = f(*xv, yv);
    }
    x
}

fn map_batch(a: &ScalarFn, vars: &[&[f64]], len: usize, f: impl Fn(f64) -> f64) -> Vec<f64> {
    let mut x = a.eval_batch(vars, len);
    for xv in x.iter_mut() {
        *xv = f(*xv);
    }
    x
}

/// An integer index expression over index-variable slots (for tile
/// coordinate maps, rule 19's `f(k)`).
#[derive(Debug, Clone, PartialEq)]
pub enum IdxFn {
    Const(i64),
    Var(usize),
    Add(Box<IdxFn>, Box<IdxFn>),
    Sub(Box<IdxFn>, Box<IdxFn>),
    Mul(Box<IdxFn>, Box<IdxFn>),
    /// Euclidean division (the paper's `i/N` tile coordinates).
    Div(Box<IdxFn>, Box<IdxFn>),
    /// Euclidean remainder (`i%N`).
    Mod(Box<IdxFn>, Box<IdxFn>),
    Neg(Box<IdxFn>),
}

impl IdxFn {
    /// Compile an index expression; variables resolve against `slots`,
    /// other names against `consts` (registered integer scalars like `n`).
    pub fn compile(
        expr: &Expr,
        slots: &[String],
        consts: &dyn Fn(&str) -> Option<i64>,
    ) -> Result<IdxFn, CompError> {
        let c = |e: &Expr| IdxFn::compile(e, slots, consts);
        Ok(match expr {
            Expr::Int(n) => IdxFn::Const(*n),
            Expr::Var(v) => match slots.iter().position(|s| s == v) {
                Some(i) => IdxFn::Var(i),
                None => match consts(v) {
                    Some(x) => IdxFn::Const(x),
                    None => {
                        return Err(CompError::plan(format!(
                            "variable `{v}` is not an index variable or registered scalar"
                        )))
                    }
                },
            },
            Expr::BinOp(op, a, b) => {
                let (a, b) = (Box::new(c(a)?), Box::new(c(b)?));
                match op {
                    BinOp::Add => IdxFn::Add(a, b),
                    BinOp::Sub => IdxFn::Sub(a, b),
                    BinOp::Mul => IdxFn::Mul(a, b),
                    BinOp::Div => IdxFn::Div(a, b),
                    BinOp::Mod => IdxFn::Mod(a, b),
                    other => {
                        return Err(CompError::plan(format!(
                            "operator {other} is not an index operation"
                        )))
                    }
                }
            }
            Expr::UnOp(UnOp::Neg, e) => IdxFn::Neg(Box::new(c(e)?)),
            other => {
                return Err(CompError::plan(format!(
                    "expression is not a compilable index map: {other}"
                )))
            }
        })
    }

    pub fn eval(&self, vars: &[i64]) -> i64 {
        match self {
            IdxFn::Const(x) => *x,
            IdxFn::Var(i) => vars[*i],
            IdxFn::Add(a, b) => a.eval(vars) + b.eval(vars),
            IdxFn::Sub(a, b) => a.eval(vars) - b.eval(vars),
            IdxFn::Mul(a, b) => a.eval(vars) * b.eval(vars),
            IdxFn::Div(a, b) => a.eval(vars).div_euclid(b.eval(vars)),
            IdxFn::Mod(a, b) => a.eval(vars).rem_euclid(b.eval(vars)),
            IdxFn::Neg(a) => -a.eval(vars),
        }
    }

    /// True if this is exactly the slot variable `i` (identity map).
    pub fn is_identity(&self, slot: usize) -> bool {
        *self == IdxFn::Var(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comp::parser::parse_expr;

    fn compile_s(src: &str, slots: &[&str]) -> ScalarFn {
        let slots: Vec<String> = slots.iter().map(|s| s.to_string()).collect();
        ScalarFn::compile(&parse_expr(src).unwrap(), &slots, &|_| None).unwrap()
    }

    #[test]
    fn arithmetic_and_slots() {
        let f = compile_s("a * b + 2.0", &["a", "b"]);
        assert_eq!(f.eval(&[3.0, 4.0]), 14.0);
    }

    #[test]
    fn product_probe() {
        let f = compile_s("a * b", &["a", "b"]);
        assert!(f.is_product_of(0, 1));
        assert!(!f.is_product_of(1, 0));
        assert!(!compile_s("a + b", &["a", "b"]).is_product_of(0, 1));
    }

    #[test]
    fn comparisons_produce_indicator() {
        let f = compile_s("a > 10", &["a"]);
        assert_eq!(f.eval(&[11.0]), 1.0);
        assert_eq!(f.eval(&[9.0]), 0.0);
    }

    #[test]
    fn if_and_builtins() {
        let f = compile_s("if (a > 0) sqrt(a) else abs(a)", &["a"]);
        assert_eq!(f.eval(&[4.0]), 2.0);
        assert_eq!(f.eval(&[-3.0]), 3.0);
    }

    #[test]
    fn consts_inline() {
        let slots = vec!["a".to_string()];
        let f = ScalarFn::compile(&parse_expr("a * gamma").unwrap(), &slots, &|v| {
            (v == "gamma").then_some(0.5)
        })
        .unwrap();
        assert_eq!(f.eval(&[8.0]), 4.0);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let slots = vec!["a".to_string()];
        assert!(ScalarFn::compile(&parse_expr("a + z").unwrap(), &slots, &|_| None).is_err());
    }

    fn compile_i(src: &str, slots: &[&str]) -> IdxFn {
        let slots: Vec<String> = slots.iter().map(|s| s.to_string()).collect();
        IdxFn::compile(&parse_expr(src).unwrap(), &slots, &|_| None).unwrap()
    }

    #[test]
    fn index_rotation_map() {
        let f = compile_i("(i + 1) % 4", &["i"]);
        assert_eq!(f.eval(&[0]), 1);
        assert_eq!(f.eval(&[3]), 0);
    }

    #[test]
    fn index_identity_probe() {
        assert!(compile_i("i", &["i"]).is_identity(0));
        assert!(!compile_i("i + 0", &["i"]).is_identity(0));
    }

    #[test]
    fn euclidean_semantics() {
        let f = compile_i("i / 4", &["i"]);
        assert_eq!(f.eval(&[-1]), -1);
        let g = compile_i("i % 4", &["i"]);
        assert_eq!(g.eval(&[-1]), 3);
    }
}
