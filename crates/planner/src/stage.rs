//! The adaptive stage driver: re-plan at stage frontiers from measured
//! statistics (ROADMAP item 5, Spark-AQE shape).
//!
//! Every contraction-shaped plan node has a natural materialization point:
//! the inputs it is about to shuffle (or broadcast-collect). A
//! [`StageFrontier`] executes the node up to that point — one shuffle-free
//! per-partition summary job per input — and captures what actually
//! materialized: exact non-zero counts, observed resident bytes, and the
//! per-partition tile distribution. The driver overlays those measurements
//! onto the planning environment's [`ArrayStats`] and re-invokes the same
//! candidate cost model that made the registration-time choice
//! ([`crate::plan::contraction_candidates`] /
//! [`crate::plan::mat_vec_candidates`]) on the not-yet-lowered remainder of
//! the plan. Three re-decisions can fall out:
//!
//! * a contraction-strategy switch (e.g. estimated reduceByKey whose
//!   operand is observed small enough to promote to broadcast),
//! * re-partitioning the remainder when a frontier reveals >= 2x partition
//!   skew,
//! * runtime-detected broadcast for mat-vec chains.
//!
//! Every re-decision emits a [`Event::PlanReplanned`] folded into
//! `JobProfile::plan_choices` and rendered by `explain_analyze`.
//!
//! # Determinism contract
//!
//! The probe is a pure read: its totals are independent of partition order,
//! executor scheduling, and fault recovery, so chaotic and fault-free runs
//! of the same query observe identical statistics and make identical
//! re-decisions. When registered statistics were honest (dense data, exact
//! tile grid), the observed stats reproduce the registration-time estimate
//! bit-for-bit, the re-run cost model returns the identical ranking, and
//! nothing changes — adaptive execution then lowers the byte-identical
//! frozen plan. Re-decisions only fire when measurements *contradict*
//! registration; `PlanConfig::adaptive = false` (`SAC_ADAPTIVE=0`) keeps
//! the frozen path as the bit-exactness oracle either way.

use crate::env::{ArrayStats, PlanEnv};
use crate::plan::{
    contraction_candidates, contraction_tag, mat_vec_candidates, MatMulStrategy, PlanConfig,
    PlanDecision,
};
use sparkline::{Context, Event, PartitionStream};
use tiled::{TiledMatrix, TiledVector};

/// Observed per-partition skew ratio (`max / mean` tiles) at or above which
/// the remainder of the plan is re-partitioned.
const SKEW_THRESHOLD: f64 = 2.0;

/// One frontier unit: a plan-node input executed up to its materialization
/// point, with the measured statistics of what came out.
pub(crate) struct StageFrontier {
    /// Measured statistics, shaped exactly like the registration-time
    /// [`ArrayStats`] so they can overlay the planning environment.
    pub stats: ArrayStats,
    /// Tiles (or vector blocks) per partition of the materialized input.
    pub partition_tiles: Vec<u64>,
}

impl StageFrontier {
    /// Materialize a tiled matrix input up to this node's frontier and
    /// summarize it. The summary is one `map_partitions_stream` + `collect`
    /// job — no shuffle stage, so probing never changes a plan's
    /// shuffle-round shape.
    pub fn matrix(m: &TiledMatrix) -> StageFrontier {
        let per_part: Vec<(u64, (u64, u64))> = m
            .tiles()
            .map_partitions_stream(|pid, tiles| {
                let (mut count, mut nnz) = (0u64, 0u64);
                tiles.for_each_ref(|(_, t)| {
                    count += 1;
                    nnz += t.data().iter().filter(|v| **v != 0.0).count() as u64;
                });
                PartitionStream::from_vec(vec![(pid as u64, (count, nnz))])
            })
            .collect();
        let (partition_tiles, tiles, nnz) = fold_partitions(per_part);
        // Observed resident bytes: the cheaper of the dense and the
        // sparse (CSC, ~12 bytes/stored element + 32/tile framing)
        // encodings of what actually materialized. For honest dense
        // registrations this reproduces `ArrayStats::matrix` exactly.
        let dense = tiles * ArrayStats::dense_tile_bytes(m.tile_size());
        let csc = tiles * 32 + 12 * nnz;
        let mut stats = ArrayStats::matrix(m.rows(), m.cols(), m.tile_size()).with_nnz(nnz);
        stats.estimated_bytes = dense.min(csc);
        StageFrontier {
            stats,
            partition_tiles,
        }
    }

    /// Materialize a tiled vector input up to the frontier and summarize it.
    pub fn vector(v: &TiledVector) -> StageFrontier {
        let per_part: Vec<(u64, (u64, u64))> = v
            .blocks()
            .map_partitions_stream(|pid, blocks| {
                let (mut bytes, mut nnz) = (0u64, 0u64);
                blocks.for_each_ref(|(_, b)| {
                    // One block record: i64 key + Vec<f64> payload.
                    bytes += 8 + 4 + 8 * b.len() as u64;
                    nnz += b.iter().filter(|x| **x != 0.0).count() as u64;
                });
                PartitionStream::from_vec(vec![(pid as u64, (bytes, nnz))])
            })
            .collect();
        let (partition_tiles, bytes, nnz) = fold_partitions(per_part);
        let mut stats = ArrayStats::vector(v.len(), v.block_size()).with_nnz(nnz);
        stats.estimated_bytes = bytes;
        StageFrontier {
            stats,
            partition_tiles,
        }
    }

    /// `max / mean` of the per-partition distribution; 1.0 when uniform or
    /// too small to matter.
    fn skew(&self) -> f64 {
        let parts = self.partition_tiles.len();
        let total: u64 = self.partition_tiles.iter().sum();
        if parts < 2 || total == 0 {
            return 1.0;
        }
        let max = *self.partition_tiles.iter().max().expect("non-empty") as f64;
        max / (total as f64 / parts as f64)
    }

    fn total_units(&self) -> u64 {
        self.partition_tiles.iter().sum()
    }
}

/// Index per-partition summaries by partition id and total the measurement
/// pair.
fn fold_partitions(per_part: Vec<(u64, (u64, u64))>) -> (Vec<u64>, u64, u64) {
    let parts = per_part.iter().map(|&(p, _)| p + 1).max().unwrap_or(0) as usize;
    let mut partition_units = vec![0u64; parts];
    let (mut first, mut second) = (0u64, 0u64);
    for (pid, (a, b)) in per_part {
        partition_units[pid as usize] += a;
        first += a;
        second += b;
    }
    (partition_units, first, second)
}

/// The driver's revision of one contraction node: the strategy and partition
/// count the remainder actually runs with (identical to the plan-time
/// decision when the measurements confirmed it).
pub(crate) struct Replan {
    pub strategy: MatMulStrategy,
    pub partitions: usize,
}

/// Re-partition target when a frontier reveals skew: double the partition
/// count (capped at one tile per partition) if any input's observed
/// distribution is >= [`SKEW_THRESHOLD`] and there are enough tiles for the
/// extra partitions to matter.
fn skewed_partitions(frontiers: &[&StageFrontier], partitions: usize) -> Option<usize> {
    for f in frontiers {
        let total = f.total_units();
        if total as usize >= 2 * partitions && f.skew() >= SKEW_THRESHOLD {
            return Some((partitions * 2).min(total as usize));
        }
    }
    None
}

/// Drive one contraction node through its stage frontier: probe both
/// inputs, overlay the measured stats, re-run the candidate cost model, and
/// return the (possibly revised) strategy and partition count. Emits one
/// `plan_replanned` event iff something changed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn adapt_contraction(
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    left: &str,
    right: &str,
    a: &TiledMatrix,
    b: &TiledMatrix,
    left_contract_row: bool,
    right_contract_col: bool,
    current: MatMulStrategy,
    decision: &PlanDecision,
) -> Replan {
    let fa = StageFrontier::matrix(a);
    let fb = StageFrontier::matrix(b);
    let partitions = skewed_partitions(&[&fa, &fb], config.partitions).unwrap_or(config.partitions);

    let mut overlay = env.clone();
    overlay.set_stats(left, fa.stats);
    overlay.set_stats(right, fb.stats);
    let tuned = PlanConfig {
        partitions,
        ..config.clone()
    };
    let candidates = contraction_candidates(
        &overlay,
        &tuned,
        left,
        right,
        left_contract_row,
        right_contract_col,
    );
    // Same selection rule as plan time: first strictly-cheapest candidate
    // wins, preference order breaks ties — so confirming measurements
    // reproduce the plan-time choice exactly.
    let best = candidates.iter().copied().min_by_key(|&(_, cost)| cost);
    let current_cost = candidates
        .iter()
        .find(|&&(s, _)| s == current)
        .map(|&(_, c)| c);
    let (mut strategy, mut observed) = (current, current_cost.unwrap_or(0));
    if let (Some((s, c)), Some(cur)) = (best, current_cost) {
        if s != current && c < cur {
            strategy = s;
            observed = c;
        }
    }

    if strategy != current || partitions != config.partitions {
        let (from, to) = (contraction_tag(current), contraction_tag(strategy));
        let est = decision.est_shuffle_bytes;
        ctx.emit_event(|at_micros| Event::PlanReplanned {
            tag: from.to_string(),
            from: from.to_string(),
            to: to.to_string(),
            est_shuffle_bytes: est,
            observed_bytes: observed,
            partitions: partitions as u64,
            at_micros,
        });
    }
    Replan {
        strategy,
        partitions,
    }
}

/// Drive one mat-vec node through its stage frontier: probe the vector
/// side, overlay the measured stats, and promote the shuffle path to the
/// zero-shuffle broadcast path when the vector is observed to fit the
/// budget and win on cost. Returns whether to broadcast; emits one
/// `plan_replanned` event iff the path switched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn adapt_mat_vec(
    env: &PlanEnv,
    ctx: &Context,
    config: &PlanConfig,
    matrix: &str,
    vector: &str,
    v: &TiledVector,
    contract_row: bool,
    decision: &PlanDecision,
) -> bool {
    let fv = StageFrontier::vector(v);
    let mut overlay = env.clone();
    overlay.set_stats(vector, fv.stats);
    let candidates = mat_vec_candidates(&overlay, config, matrix, vector, contract_row);
    let best = candidates.iter().copied().min_by_key(|&(_, cost)| cost);
    let shuffle_cost = candidates
        .iter()
        .find(|&&(tag, _)| tag == "matVec")
        .map(|&(_, c)| c);
    if let (Some(("matVec/broadcast", c)), Some(cur)) = (best, shuffle_cost) {
        if c < cur {
            let est = decision.est_shuffle_bytes;
            ctx.emit_event(|at_micros| Event::PlanReplanned {
                tag: "matVec".to_string(),
                from: "matVec".to_string(),
                to: "matVec/broadcast".to_string(),
                est_shuffle_bytes: est,
                observed_bytes: c,
                partitions: config.partitions as u64,
                at_micros,
            });
            return true;
        }
    }
    false
}
