//! Comprehension analysis: decompose a normalized comprehension into the
//! structural facts the translation rules dispatch on — which generators
//! range over tiled arrays, which index variables are equated by join guards
//! (rule 14), whether the head key preserves tiling (§5.1), and what the
//! group-by aggregates are (§5.3).

use comp::ast::{Expr, Monoid, Pattern, Qualifier};
use comp::errors::CompError;
use std::collections::HashMap;

/// A generator over a tiled matrix: `((row, col), val) <- Name`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixGen {
    pub name: String,
    pub row: String,
    pub col: String,
    pub val: String,
}

/// A generator over a tiled vector: `(idx, val) <- Name`.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorGen {
    pub name: String,
    pub idx: String,
    pub val: String,
}

/// A generator over an integer range: `v <- lo until/to hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeGen {
    pub var: String,
    pub lo: Expr,
    pub hi: Expr,
    pub inclusive: bool,
}

/// The decomposed body of a comprehension.
#[derive(Debug, Clone)]
pub struct Decomposed {
    pub matrix_gens: Vec<MatrixGen>,
    pub vector_gens: Vec<VectorGen>,
    pub range_gens: Vec<RangeGen>,
    /// `let` bindings, in order.
    pub lets: Vec<(String, Expr)>,
    /// Equality guards between two variables (join/fusion equalities).
    pub var_equalities: Vec<(String, String)>,
    /// All other guards.
    pub other_guards: Vec<Expr>,
    /// The (single) group-by, if present: key pattern and optional key expr.
    pub group_by: Option<(Pattern, Option<Expr>)>,
    /// Qualifiers after the group-by (unsupported by fast plans if nonempty).
    pub post_group_quals: usize,
    /// The comprehension head.
    pub head: Expr,
}

/// What kind of registered array a generator ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    Matrix,
    Vector,
    Unknown,
}

/// Decompose `head | qualifiers`, resolving generator sources via `kind`.
/// Fails (→ fallback path) on shapes outside the translation rules: multiple
/// group-bys, generators over unregistered collections, or patterns that do
/// not match the array arity.
pub fn decompose(
    head: &Expr,
    qualifiers: &[Qualifier],
    kind: &dyn Fn(&str) -> GenKind,
) -> Result<Decomposed, CompError> {
    let mut d = Decomposed {
        matrix_gens: Vec::new(),
        vector_gens: Vec::new(),
        range_gens: Vec::new(),
        lets: Vec::new(),
        var_equalities: Vec::new(),
        other_guards: Vec::new(),
        group_by: None,
        post_group_quals: 0,
        head: head.clone(),
    };
    let mut seen_group_by = false;
    for q in qualifiers {
        if seen_group_by {
            d.post_group_quals += 1;
            continue;
        }
        match q {
            Qualifier::Generator(p, Expr::Var(name)) if kind(name) == GenKind::Matrix => {
                let Pattern::Tuple(parts) = p else {
                    return Err(CompError::plan(format!(
                        "matrix generator pattern must be ((i,j),v): {p}"
                    )));
                };
                let [key, val] = parts.as_slice() else {
                    return Err(CompError::plan(format!(
                        "matrix generator pattern must be ((i,j),v): {p}"
                    )));
                };
                let (Pattern::Tuple(ij), Pattern::Var(v)) = (key, val) else {
                    return Err(CompError::plan(format!(
                        "matrix generator pattern must be ((i,j),v): {p}"
                    )));
                };
                let [Pattern::Var(i), Pattern::Var(j)] = ij.as_slice() else {
                    return Err(CompError::plan(format!(
                        "matrix generator indices must be variables: {p}"
                    )));
                };
                d.matrix_gens.push(MatrixGen {
                    name: name.clone(),
                    row: i.clone(),
                    col: j.clone(),
                    val: v.clone(),
                });
            }
            Qualifier::Generator(p, Expr::Var(name)) if kind(name) == GenKind::Vector => {
                let Pattern::Tuple(parts) = p else {
                    return Err(CompError::plan(format!(
                        "vector generator pattern must be (i, v): {p}"
                    )));
                };
                let [Pattern::Var(i), Pattern::Var(v)] = parts.as_slice() else {
                    return Err(CompError::plan(format!(
                        "vector generator pattern must be (i, v): {p}"
                    )));
                };
                d.vector_gens.push(VectorGen {
                    name: name.clone(),
                    idx: i.clone(),
                    val: v.clone(),
                });
            }
            Qualifier::Generator(Pattern::Var(v), Expr::Range { lo, hi, inclusive }) => {
                d.range_gens.push(RangeGen {
                    var: v.clone(),
                    lo: (**lo).clone(),
                    hi: (**hi).clone(),
                    inclusive: *inclusive,
                });
            }
            Qualifier::Generator(_, e) => {
                return Err(CompError::plan(format!(
                    "generator source is not a registered tiled array or range: {e}"
                )))
            }
            Qualifier::Let(Pattern::Var(v), e) => d.lets.push((v.clone(), e.clone())),
            Qualifier::Let(p, _) => {
                return Err(CompError::plan(format!(
                    "tuple let patterns are not supported by distributed plans: {p}"
                )))
            }
            Qualifier::Guard(Expr::BinOp(comp::BinOp::Eq, a, b)) => {
                if let (Expr::Var(x), Expr::Var(y)) = (a.as_ref(), b.as_ref()) {
                    d.var_equalities.push((x.clone(), y.clone()));
                } else {
                    d.other_guards
                        .push(Expr::BinOp(comp::BinOp::Eq, a.clone(), b.clone()));
                }
            }
            Qualifier::Guard(e) => d.other_guards.push(e.clone()),
            Qualifier::GroupBy(p, k) => {
                if d.group_by.is_some() {
                    return Err(CompError::plan(
                        "multiple group-bys are not supported by distributed plans",
                    ));
                }
                d.group_by = Some((p.clone(), k.clone()));
                seen_group_by = true;
            }
        }
    }
    Ok(d)
}

/// Union-find over variable names for join equalities.
#[derive(Debug, Default)]
pub struct VarClasses {
    parent: HashMap<String, String>,
}

impl VarClasses {
    pub fn from_equalities(eqs: &[(String, String)]) -> Self {
        let mut vc = VarClasses::default();
        for (a, b) in eqs {
            vc.union(a, b);
        }
        vc
    }

    pub fn find(&self, v: &str) -> String {
        match self.parent.get(v) {
            Some(p) if p != v => self.find(p),
            _ => v.to_string(),
        }
    }

    pub fn union(&mut self, a: &str, b: &str) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    pub fn same(&self, a: &str, b: &str) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Inline `let` bindings into an expression (in binding order, so later lets
/// may reference earlier ones).
pub fn inline_lets(e: &Expr, lets: &[(String, Expr)]) -> Expr {
    let mut out = e.clone();
    // Substitute from the last let backwards: each substitution may expose
    // references to earlier lets.
    for (name, def) in lets.iter().rev() {
        out = substitute(&out, name, def);
    }
    out
}

/// Substitute free occurrences of `name` in `e` by `def` (no binder-aware
/// hygiene needed: normalized comprehension fragments contain no nested
/// binders for these names).
pub fn substitute(e: &Expr, name: &str, def: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == name => def.clone(),
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Var(_) => e.clone(),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|x| substitute(x, name, def)).collect()),
        Expr::Reduce(m, x) => Expr::Reduce(*m, Box::new(substitute(x, name, def))),
        Expr::BinOp(op, a, b) => Expr::BinOp(
            *op,
            Box::new(substitute(a, name, def)),
            Box::new(substitute(b, name, def)),
        ),
        Expr::UnOp(op, a) => Expr::UnOp(*op, Box::new(substitute(a, name, def))),
        Expr::Index(b, idx) => Expr::Index(
            Box::new(substitute(b, name, def)),
            idx.iter().map(|x| substitute(x, name, def)).collect(),
        ),
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter().map(|x| substitute(x, name, def)).collect(),
        ),
        Expr::Field(b, f) => Expr::Field(Box::new(substitute(b, name, def)), f.clone()),
        Expr::Range { lo, hi, inclusive } => Expr::Range {
            lo: Box::new(substitute(lo, name, def)),
            hi: Box::new(substitute(hi, name, def)),
            inclusive: *inclusive,
        },
        Expr::If(c, t, f) => Expr::If(
            Box::new(substitute(c, name, def)),
            Box::new(substitute(t, name, def)),
            Box::new(substitute(f, name, def)),
        ),
        Expr::Build {
            builder,
            args,
            body,
        } => Expr::Build {
            builder: builder.clone(),
            args: args.iter().map(|x| substitute(x, name, def)).collect(),
            body: Box::new(substitute(body, name, def)),
        },
        Expr::Comprehension(_) => e.clone(),
    }
}

/// An aggregate occurrence in a group-by head: `⊕/expr`, `count(v)`, or
/// `v.length` (the last two normalize to Sum over the constant 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    pub monoid: Monoid,
    /// The per-row expression being aggregated (over element variables).
    pub input: Expr,
}

/// Decompose a group-by head value into aggregates plus a finalizer
/// expression over aggregate slots `%aggN` — the `f(⊕₁/w₁.map(g₁), ...)`
/// abstraction of §3/(12).
pub fn extract_aggregates(e: &Expr) -> (Expr, Vec<Aggregate>) {
    let mut aggs: Vec<Aggregate> = Vec::new();
    let finalizer = go(e, &mut aggs);
    return (finalizer, aggs);

    fn slot(aggs: &mut Vec<Aggregate>, agg: Aggregate) -> Expr {
        let idx = match aggs.iter().position(|a| *a == agg) {
            Some(i) => i,
            None => {
                aggs.push(agg);
                aggs.len() - 1
            }
        };
        Expr::Var(format!("%agg{idx}"))
    }

    fn go(e: &Expr, aggs: &mut Vec<Aggregate>) -> Expr {
        match e {
            Expr::Reduce(m, inner) => slot(
                aggs,
                Aggregate {
                    monoid: *m,
                    input: (**inner).clone(),
                },
            ),
            Expr::Call(f, args) if f == "count" && args.len() == 1 => slot(
                aggs,
                Aggregate {
                    monoid: Monoid::Sum,
                    input: Expr::Int(1),
                },
            ),
            Expr::Field(_, f) if f == "length" => slot(
                aggs,
                Aggregate {
                    monoid: Monoid::Sum,
                    input: Expr::Int(1),
                },
            ),
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Var(_) => {
                e.clone()
            }
            Expr::Tuple(es) => Expr::Tuple(es.iter().map(|x| go(x, aggs)).collect()),
            Expr::BinOp(op, a, b) => Expr::BinOp(*op, Box::new(go(a, aggs)), Box::new(go(b, aggs))),
            Expr::UnOp(op, a) => Expr::UnOp(*op, Box::new(go(a, aggs))),
            Expr::Call(f, args) => {
                Expr::Call(f.clone(), args.iter().map(|x| go(x, aggs)).collect())
            }
            Expr::If(c, t, f) => Expr::If(
                Box::new(go(c, aggs)),
                Box::new(go(t, aggs)),
                Box::new(go(f, aggs)),
            ),
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comp::parser::parse_expr;

    fn decomp(src: &str, matrices: &[&str]) -> Decomposed {
        let e = parse_expr(src).unwrap();
        let (head, quals) = match e {
            Expr::Comprehension(c) => (*c.head, c.qualifiers),
            Expr::Build { body, .. } => match *body {
                Expr::Comprehension(c) => (*c.head, c.qualifiers),
                _ => panic!(),
            },
            _ => panic!(),
        };
        let names: Vec<String> = matrices.iter().map(|s| s.to_string()).collect();
        decompose(&head, &quals, &|n| {
            if names.iter().any(|x| x == n) {
                GenKind::Matrix
            } else {
                GenKind::Unknown
            }
        })
        .unwrap()
    }

    #[test]
    fn decomposes_matmul() {
        let d = decomp(
            "[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N, kk == k, \
             let v = a*b, group by (i,j) ]",
            &["M", "N"],
        );
        assert_eq!(d.matrix_gens.len(), 2);
        assert_eq!(d.matrix_gens[0].name, "M");
        assert_eq!(d.var_equalities, vec![("kk".into(), "k".into())]);
        assert_eq!(d.lets.len(), 1);
        assert!(d.group_by.is_some());
        assert_eq!(d.post_group_quals, 0);
    }

    #[test]
    fn decomposes_smoothing_ranges() {
        let d = decomp(
            "[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- M, ii <- (i-1) to (i+1), \
             jj <- (j-1) to (j+1), ii >= 0, jj >= 0, group by (ii,jj) ]",
            &["M"],
        );
        assert_eq!(d.matrix_gens.len(), 1);
        assert_eq!(d.range_gens.len(), 2);
        assert_eq!(d.other_guards.len(), 2);
    }

    #[test]
    fn rejects_unknown_generator() {
        let e = parse_expr("[ x | x <- Xs ]").unwrap();
        let Expr::Comprehension(c) = e else { panic!() };
        assert!(decompose(&c.head, &c.qualifiers, &|_| GenKind::Unknown).is_err());
    }

    #[test]
    fn var_classes_union_find() {
        let vc = VarClasses::from_equalities(&[("a".into(), "b".into()), ("b".into(), "c".into())]);
        assert!(vc.same("a", "c"));
        assert!(!vc.same("a", "d"));
    }

    #[test]
    fn inline_lets_in_order() {
        let lets = vec![
            ("u".to_string(), parse_expr("a + 1").unwrap()),
            ("v".to_string(), parse_expr("u * 2").unwrap()),
        ];
        let out = inline_lets(&parse_expr("v + u").unwrap(), &lets);
        assert_eq!(out, parse_expr("((a + 1) * 2) + (a + 1)").unwrap());
    }

    #[test]
    fn extract_aggregates_smoothing_head() {
        // (+/a)/a.length → %agg0 / %agg1 with Sum(a) and Sum(1).
        let (fin, aggs) = extract_aggregates(&parse_expr("(+/a)/a.length").unwrap());
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].monoid, Monoid::Sum);
        assert_eq!(aggs[0].input, parse_expr("a").unwrap());
        assert_eq!(aggs[1].input, Expr::Int(1));
        assert_eq!(
            fin,
            Expr::BinOp(
                comp::BinOp::Div,
                Box::new(Expr::Var("%agg0".into())),
                Box::new(Expr::Var("%agg1".into()))
            )
        );
    }

    #[test]
    fn extract_aggregates_dedups_identical() {
        let (_, aggs) = extract_aggregates(&parse_expr("(+/v) + (+/v)").unwrap());
        assert_eq!(aggs.len(), 1);
    }
}
