//! The SAC session: registered arrays + scalars + the compilation pipeline.

use comp::errors::CompError;
use comp::types::{infer, Type, TypeEnv};
use planner::{DistArray, ExecResult, MatMulStrategy, PlanConfig, PlanEnv, Planned};
use sparkline::{ChaosPlan, Context};
use tiled::{CooMatrix, LocalMatrix, TiledMatrix, TiledVector};

/// Builder for [`Session`].
pub struct SessionBuilder {
    context: Option<Context>,
    workers: usize,
    executors: Option<usize>,
    partitions: usize,
    tile_threads: usize,
    matmul: MatMulStrategy,
    broadcast_budget: u64,
    storage_memory: Option<usize>,
    auto_persist: bool,
    max_task_attempts: Option<u32>,
    max_stage_attempts: Option<u32>,
    speculation: Option<f64>,
    chaos: Option<ChaosPlan>,
    chaos_off: bool,
    worker_processes: Option<usize>,
    external_shuffle: Option<bool>,
    adaptive: Option<bool>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            context: None,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            executors: None,
            // 0 = derive shuffle parallelism from the worker count and the
            // estimated output size at execution time.
            partitions: 0,
            tile_threads: 1,
            matmul: MatMulStrategy::Auto,
            broadcast_budget: PlanConfig::default().broadcast_budget,
            storage_memory: None,
            auto_persist: true,
            max_task_attempts: None,
            max_stage_attempts: None,
            speculation: None,
            chaos: None,
            chaos_off: false,
            worker_processes: None,
            external_shuffle: None,
            adaptive: None,
        }
    }
}

impl SessionBuilder {
    /// Attach the session to an *existing* runtime context instead of
    /// building a fresh one — how a multi-tenant query service hosts many
    /// sessions over one shared executor pool. When set, the runtime-level
    /// knobs on this builder (`workers`, `executors`, `storage_memory`,
    /// attempt limits, speculation, chaos) are ignored: they belong to
    /// whoever built the shared context. Planner-level knobs (`partitions`,
    /// `matmul`, `broadcast_budget`, `tile_threads`, `auto_persist`) still
    /// apply per session.
    pub fn context(mut self, ctx: Context) -> Self {
        self.context = Some(ctx);
        self
    }

    /// Executor threads of the underlying runtime.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Shuffle partition count.
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n.max(1);
        self
    }

    /// Threads per tile kernel (the paper's Scala `.par` multicore level).
    pub fn tile_threads(mut self, n: usize) -> Self {
        self.tile_threads = n.max(1);
        self
    }

    /// Contraction strategy (§5.3 reduceByKey vs §5.4 group-by-join). The
    /// default, [`MatMulStrategy::Auto`], picks the cheapest strategy per
    /// query from registered statistics.
    pub fn matmul(mut self, s: MatMulStrategy) -> Self {
        self.matmul = s;
        self
    }

    /// Largest estimated operand size (bytes) the adaptive planner will ship
    /// as a broadcast table instead of shuffling.
    pub fn broadcast_budget(mut self, bytes: u64) -> Self {
        self.broadcast_budget = bytes;
        self
    }

    /// Storage-memory budget (bytes) of the runtime's block manager, the
    /// pool `persist()`-ed blocks live in. Unset = the `SPARKLINE_STORAGE_BUDGET`
    /// environment variable if present, otherwise unlimited.
    pub fn storage_memory(mut self, bytes: usize) -> Self {
        self.storage_memory = Some(bytes);
        self
    }

    /// Enable or disable automatic persistence of plan inputs referenced
    /// more than once (on by default).
    pub fn auto_persist(mut self, on: bool) -> Self {
        self.auto_persist = on;
        self
    }

    /// Enable or disable adaptive stage-frontier re-planning (on by
    /// default; unset falls back to the `SAC_ADAPTIVE` environment
    /// variable). `false` freezes every plan at its registration-time
    /// decision — the bit-exactness oracle.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = Some(on);
        self
    }

    /// Logical executors (fault domains) of the runtime; defaults to one per
    /// worker thread. See [`sparkline::ContextBuilder::executors`].
    pub fn executors(mut self, n: usize) -> Self {
        self.executors = Some(n);
        self
    }

    /// Attempts per task before the job fails.
    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.max_task_attempts = Some(n);
        self
    }

    /// Attempts per shuffle map stage (first run + resubmissions after
    /// executor loss) before the job fails.
    pub fn max_stage_attempts(mut self, n: u32) -> Self {
        self.max_stage_attempts = Some(n);
        self
    }

    /// Enable speculative re-execution of stragglers at `multiplier` × the
    /// median completed-task time.
    pub fn speculation(mut self, multiplier: f64) -> Self {
        self.speculation = Some(multiplier);
        self
    }

    /// Shuffle data-plane worker processes of the runtime (0 = in-process).
    /// See [`sparkline::ContextBuilder::worker_processes`].
    pub fn worker_processes(mut self, n: usize) -> Self {
        self.worker_processes = Some(n);
        self
    }

    /// Toggle the external shuffle service spool in multi-process mode. See
    /// [`sparkline::ContextBuilder::external_shuffle`].
    pub fn external_shuffle(mut self, on: bool) -> Self {
        self.external_shuffle = Some(on);
        self
    }

    /// Run the session under an explicit chaos schedule (beats the
    /// `SPARKLINE_CHAOS` environment variable).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self.chaos_off = false;
        self
    }

    /// Disable fault injection even when `SPARKLINE_CHAOS` is set — for
    /// tests pinning exact fault-free counts.
    pub fn chaos_off(mut self) -> Self {
        self.chaos = None;
        self.chaos_off = true;
        self
    }

    pub fn build(self) -> Session {
        let ctx = match self.context {
            Some(ctx) => ctx,
            None => {
                let mut ctx = Context::builder().workers(self.workers);
                if let Some(bytes) = self.storage_memory {
                    ctx = ctx.storage_memory(bytes);
                }
                if let Some(n) = self.executors {
                    ctx = ctx.executors(n);
                }
                if let Some(n) = self.max_task_attempts {
                    ctx = ctx.max_task_attempts(n);
                }
                if let Some(n) = self.max_stage_attempts {
                    ctx = ctx.max_stage_attempts(n);
                }
                if let Some(m) = self.speculation {
                    ctx = ctx.speculation(m);
                }
                if let Some(n) = self.worker_processes {
                    ctx = ctx.worker_processes(n);
                }
                if let Some(on) = self.external_shuffle {
                    ctx = ctx.external_shuffle(on);
                }
                if let Some(plan) = self.chaos {
                    ctx = ctx.chaos(plan);
                } else if self.chaos_off {
                    ctx = ctx.chaos_off();
                }
                ctx.build()
            }
        };
        let defaults = PlanConfig::default();
        Session {
            ctx,
            env: PlanEnv::new(),
            config: PlanConfig {
                partitions: self.partitions,
                matmul: self.matmul,
                broadcast_budget: self.broadcast_budget,
                tile_threads: self.tile_threads,
                allow_local_fallback: true,
                auto_persist: self.auto_persist,
                adaptive: self.adaptive.unwrap_or(defaults.adaptive),
                ..defaults
            },
        }
    }
}

/// A SAC session: owns the runtime context, the registered arrays and
/// scalars, and the planner configuration.
pub struct Session {
    ctx: Context,
    env: PlanEnv,
    config: PlanConfig,
}

/// Result of [`Session::explain_analyze`]: the compile-time plan explanation
/// plus the measured runtime profile of one execution.
pub struct ExplainAnalysis {
    /// The planner's one-line explanation ([`Planned::explain`]).
    pub plan: String,
    /// Per-job, per-stage measured statistics from the event trace.
    pub profile: sparkline::JobProfile,
}

impl std::fmt::Display for ExplainAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plan: {}", self.plan)?;
        write!(f, "{}", self.profile.render())
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    pub fn new() -> Session {
        Session::default()
    }

    /// The underlying runtime context (for metrics, parallelize, ...).
    pub fn spark(&self) -> &Context {
        &self.ctx
    }

    /// The session's binding environment (arrays, scalars, persist overlays).
    pub fn env(&self) -> &PlanEnv {
        &self.env
    }

    /// Mutable binding environment — how a query service installs shared
    /// read-only datasets into a tenant session.
    pub fn env_mut(&mut self) -> &mut PlanEnv {
        &mut self.env
    }

    /// Planner configuration (mutable: switch matmul strategy, partitions).
    pub fn config_mut(&mut self) -> &mut PlanConfig {
        &mut self.config
    }

    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// Register a tiled matrix under a name.
    pub fn register_matrix(&mut self, name: impl Into<String>, m: TiledMatrix) {
        self.env.set_array(name, DistArray::Matrix(m));
    }

    /// Tile and register a local matrix.
    ///
    /// The tiles are grid-partitioned (MLlib's `GridPartitioner` layout) and
    /// materialized eagerly, so identically-shaped matrices registered this
    /// way are co-partitioned: element-wise plans over them cogroup narrowly,
    /// without any shuffle at query time.
    pub fn register_local_matrix(
        &mut self,
        name: impl Into<String>,
        m: &LocalMatrix,
        tile_size: usize,
    ) {
        let name = name.into();
        let partitions = self.ingest_partitions();
        let tiled = TiledMatrix::from_local(&self.ctx, m, tile_size, partitions)
            .partition_by_grid(partitions);
        // Run the ingest shuffle now, outside any traced query window.
        tiled.tiles().count();
        let nnz = m.nnz() as u64;
        self.register_matrix(name.clone(), tiled);
        // The local data is in hand here, so refine the derived statistics
        // with an exact non-zero count for the cost model's sparsity term.
        if let Some(stats) = self.env.stats(&name).cloned() {
            self.env.set_stats(name, stats.with_nnz(nnz));
        }
    }

    /// Partition count used when materializing registered arrays:
    /// the configured count, or one partition per worker when the config
    /// leaves it on automatic (0).
    fn ingest_partitions(&self) -> usize {
        if self.config.partitions == 0 {
            self.ctx.workers().max(1)
        } else {
            self.config.partitions
        }
    }

    /// Register a tiled vector.
    pub fn register_vector(&mut self, name: impl Into<String>, v: TiledVector) {
        self.env.set_array(name, DistArray::Vector(v));
    }

    /// Register a coordinate-format matrix (§4 storage).
    pub fn register_coo(&mut self, name: impl Into<String>, m: CooMatrix) {
        self.env.set_array(name, DistArray::Coo(m));
    }

    /// Bind an integer scalar (matrix dimensions etc.).
    pub fn set_int(&mut self, name: impl Into<String>, v: i64) {
        self.env.set_scalar(name, comp::Value::Int(v));
    }

    /// Bind a float scalar (learning rate etc.).
    pub fn set_float(&mut self, name: impl Into<String>, v: f64) {
        self.env.set_scalar(name, comp::Value::Float(v));
    }

    /// Fetch a registered matrix.
    pub fn matrix_named(&self, name: &str) -> Option<TiledMatrix> {
        self.env.array(name)?.as_matrix().cloned()
    }

    /// Explicitly persist the registered array `name` through the runtime's
    /// block manager (Spark's `cache()`): every later plan referencing the
    /// name reads cached blocks, recomputing from lineage only after an
    /// eviction. Returns false when the name is unbound or not persistable.
    pub fn persist(&mut self, name: &str) -> bool {
        self.env.persist_array(name)
    }

    /// Drop `name`'s persisted blocks (explicit and auto-persist); returns
    /// the number of blocks removed from the block manager.
    pub fn unpersist(&mut self, name: &str) -> usize {
        self.env.unpersist_array(name)
    }

    /// Block-manager occupancy and activity counters (budget, bytes in
    /// memory, blocks in memory/on disk, evictions, spills).
    pub fn storage_status(&self) -> sparkline::StorageStatus {
        self.ctx.storage_status()
    }

    /// Type-check a comprehension against the registered bindings,
    /// returning its abstract type (the paper's use of the host
    /// typechecker to pick sparsifiers, §2).
    pub fn typecheck(&self, src: &str) -> Result<Type, CompError> {
        let expr = comp::parse_expr(src)?;
        let mut tenv = TypeEnv::new();
        for name in expr.free_vars() {
            if let Some(a) = self.env.array(&name) {
                let t = match a {
                    DistArray::Matrix(_) | DistArray::Coo(_) => Type::matrix(),
                    DistArray::Vector(_) => Type::vector(),
                };
                tenv.insert(name.clone(), t);
            } else if let Some(v) = self.env.scalar(&name) {
                let t = match v {
                    comp::Value::Int(_) => Type::Int,
                    comp::Value::Float(_) => Type::Float,
                    comp::Value::Bool(_) => Type::Bool,
                    comp::Value::Str(_) => Type::Str,
                    _ => Type::Unknown,
                };
                tenv.insert(name.clone(), t);
            }
        }
        // `tiled(...)` builders see abstract matrices; the checker treats
        // registered arrays as their association-list types.
        infer(&expr, &tenv)
    }

    /// Compile a comprehension to a plan without executing it.
    pub fn compile(&self, src: &str) -> Result<Planned, CompError> {
        let expr = comp::parse_expr(src)?;
        planner::plan::plan(&expr, &self.env, &self.config)
    }

    /// Explain the plan a comprehension would run as.
    pub fn explain(&self, src: &str) -> Result<String, CompError> {
        Ok(self.compile(src)?.explain())
    }

    /// Compile, execute, and profile a comprehension: the plan explanation
    /// annotated with measured per-stage statistics (task counts, wall time,
    /// max/median task time, shuffle bytes read and written) from the event
    /// trace of this exact run.
    ///
    /// Tracing is enabled only for the duration of the call; any trace the
    /// caller had running is restarted empty afterwards.
    pub fn explain_analyze(&self, src: &str) -> Result<ExplainAnalysis, CompError> {
        let planned = self.compile(src)?;
        let was_tracing = self.ctx.is_tracing();
        self.ctx.trace();
        let result = planner::exec::execute(&planned, &self.env, &self.ctx, &self.config);
        if let Ok(r) = &result {
            // Tiled results are lazy; run their stages inside the window.
            r.force();
        }
        let profile = self.ctx.take_profile();
        if !was_tracing {
            self.ctx.stop_trace();
        }
        result?;
        Ok(ExplainAnalysis {
            plan: planned.explain(),
            profile,
        })
    }

    /// Execute an already-compiled plan against the session's bindings —
    /// the plan-cache path of the query service, where the same [`Planned`]
    /// is reused across alpha-equivalent queries.
    pub fn run_planned(&self, planned: &Planned) -> Result<ExecResult, CompError> {
        planner::exec::execute(planned, &self.env, &self.ctx, &self.config)
    }

    /// Compile and execute a comprehension.
    pub fn run(&self, src: &str) -> Result<ExecResult, CompError> {
        let expr = comp::parse_expr(src)?;
        planner::run(&expr, &self.env, &self.ctx, &self.config)
    }

    /// Compile and execute an already-parsed expression (for front-ends
    /// such as the DIABLO loop translator that build ASTs directly).
    pub fn run_expr(&self, expr: &comp::Expr) -> Result<ExecResult, CompError> {
        planner::run(expr, &self.env, &self.ctx, &self.config)
    }

    /// Plan an already-parsed expression without executing it.
    pub fn compile_expr(&self, expr: &comp::Expr) -> Result<Planned, CompError> {
        planner::plan::plan(expr, &self.env, &self.config)
    }

    /// Compile and execute against an explicit environment instead of the
    /// session's registered bindings (used by the typed `linalg` wrappers so
    /// their scratch names never clobber user registrations).
    pub fn run_in_env(&self, src: &str, env: &PlanEnv) -> Result<ExecResult, CompError> {
        let expr = comp::parse_expr(src)?;
        planner::run(&expr, env, &self.ctx, &self.config)
    }

    /// Run a comprehension that produces a tiled matrix.
    pub fn matrix(&self, src: &str) -> Result<TiledMatrix, CompError> {
        self.run(src)?.into_matrix()
    }

    /// Run a comprehension that produces a tiled vector.
    pub fn vector(&self, src: &str) -> Result<TiledVector, CompError> {
        self.run(src)?.into_vector()
    }

    /// Run a comprehension that produces a driver-side value (total
    /// aggregations, SQL-style queries).
    pub fn value(&self, src: &str) -> Result<comp::Value, CompError> {
        self.run(src)?.into_local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session_with(names: &[(&str, usize, usize, u64)]) -> (Session, Vec<LocalMatrix>) {
        register(Session::builder().workers(4).partitions(4).build(), names)
    }

    /// For tests pinning exact cache/block counts, which any injected
    /// executor kill or deliberately tiny env storage budget would
    /// legitimately change: chaos off, ample pinned budget (builder beats
    /// the SPARKLINE_CHAOS / SPARKLINE_STORAGE_BUDGET env knobs).
    fn chaos_off_session_with(names: &[(&str, usize, usize, u64)]) -> (Session, Vec<LocalMatrix>) {
        register(
            Session::builder()
                .workers(4)
                .partitions(4)
                .storage_memory(64 << 20)
                .chaos_off()
                .build(),
            names,
        )
    }

    fn register(
        mut s: Session,
        names: &[(&str, usize, usize, u64)],
    ) -> (Session, Vec<LocalMatrix>) {
        let mut locals = Vec::new();
        for (name, r, c, seed) in names {
            let mut rng = StdRng::seed_from_u64(*seed);
            let m = LocalMatrix::random(*r, *c, -1.0, 1.0, &mut rng);
            s.register_local_matrix(*name, &m, 4);
            locals.push(m);
        }
        (s, locals)
    }

    #[test]
    fn run_matrix_addition() {
        let (mut s, ms) = session_with(&[("A", 6, 6, 1), ("B", 6, 6, 2)]);
        s.set_int("n", 6);
        let got = s
            .matrix(
                "tiled(n,n)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, \
                 ii == i, jj == j ]",
            )
            .unwrap()
            .to_local();
        assert!(got.approx_eq(&ms[0].add(&ms[1]), 1e-12));
    }

    #[test]
    fn explain_reports_plan() {
        let (mut s, _) = session_with(&[("A", 6, 6, 3), ("B", 6, 6, 4)]);
        s.set_int("n", 6);
        let e = s
            .explain(
                "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
                 let v = a*b, group by (i,j) ]",
            )
            .unwrap();
        assert!(e.contains("contraction"), "{e}");
    }

    #[test]
    fn typecheck_accepts_and_rejects() {
        let (mut s, _) = session_with(&[("A", 4, 4, 5)]);
        s.set_int("n", 4);
        assert_eq!(
            s.typecheck("tiled(n,n)[ ((i,j), a) | ((i,j),a) <- A ]")
                .unwrap(),
            Type::matrix()
        );
        assert!(s.typecheck("[ x | x <- n ]").is_err());
        assert!(s.typecheck("[ x | x <- Unknown ]").is_err());
    }

    #[test]
    fn value_runs_total_aggregation() {
        let (mut s, ms) = session_with(&[("A", 4, 4, 6)]);
        s.set_int("n", 4);
        let total = s.value("+/[ a | ((i,j),a) <- A ]").unwrap();
        let expected: f64 = ms[0].data().iter().sum();
        match total {
            comp::Value::Float(x) => assert!((x - expected).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn matmul_strategy_is_configurable() {
        let (mut s, ms) = session_with(&[("A", 8, 8, 7), ("B", 8, 8, 8)]);
        s.set_int("n", 8);
        let src = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
                    let v = a*b, group by (i,j) ]";
        let expected = ms[0].multiply(&ms[1]);
        s.config_mut().matmul = MatMulStrategy::ReduceByKey;
        assert!(s.explain(src).unwrap().contains("reduceByKey"));
        assert!(s.matrix(src).unwrap().to_local().max_abs_diff(&expected) < 1e-9);
        s.config_mut().matmul = MatMulStrategy::GroupByJoin;
        assert!(s.explain(src).unwrap().contains("groupByJoin"));
        assert!(s.matrix(src).unwrap().to_local().max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn auto_persist_caches_shared_matmul_input() {
        let (mut s, ms) = chaos_off_session_with(&[("A", 8, 8, 10)]);
        s.set_int("n", 8);
        let src = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- A, kk == k, \
                    let v = a*b, group by (i,j) ]";
        let expected = ms[0].multiply(&ms[0]);
        assert!(s.matrix(src).unwrap().to_local().max_abs_diff(&expected) < 1e-9);
        // A is referenced twice -> its tiles were auto-persisted.
        assert!(s.storage_status().blocks_in_memory > 0);
        // Same result with auto-persist off and the cache cleared.
        assert!(s.unpersist("A") > 0);
        assert_eq!(s.storage_status().blocks_in_memory, 0);
        s.config_mut().auto_persist = false;
        assert!(s.matrix(src).unwrap().to_local().max_abs_diff(&expected) < 1e-9);
        assert_eq!(s.storage_status().blocks_in_memory, 0);
    }

    #[test]
    fn explicit_persist_and_unpersist() {
        let (mut s, ms) = chaos_off_session_with(&[("A", 6, 6, 11)]);
        s.set_int("n", 6);
        assert!(s.persist("A"));
        assert!(!s.persist("missing"));
        let src = "tiled(n,n)[ ((i,j), a*2.0) | ((i,j),a) <- A ]";
        let expected = ms[0].scale(2.0);
        assert!(s
            .matrix(src)
            .unwrap()
            .to_local()
            .approx_eq(&expected, 1e-12));
        assert!(s.storage_status().blocks_in_memory > 0);
        assert!(s.unpersist("A") > 0);
        assert_eq!(s.unpersist("missing"), 0);
        assert!(s
            .matrix(src)
            .unwrap()
            .to_local()
            .approx_eq(&expected, 1e-12));
    }

    #[test]
    fn storage_budget_flows_to_runtime() {
        let s = Session::builder().workers(2).storage_memory(4096).build();
        assert_eq!(s.storage_status().budget, Some(4096));
    }

    /// Send/Sync audit: the query service drives one session per tenant
    /// from server threads over a shared runtime, so `Session`, `Context`,
    /// and compiled plans must all cross (and be shared across) threads.
    #[test]
    fn sessions_and_plans_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<Context>();
        assert_send_sync::<PlanEnv>();
        assert_send_sync::<PlanConfig>();
        assert_send_sync::<Planned>();
        assert_send_sync::<ExecResult>();
    }

    #[test]
    fn sessions_share_an_attached_runtime_context() {
        let ctx = Context::builder()
            .workers(2)
            .storage_memory(1 << 20)
            .chaos_off()
            .build();
        let mk = |seed: u64| {
            let mut s = Session::builder()
                .context(ctx.clone())
                .partitions(2)
                .build();
            let mut rng = StdRng::seed_from_u64(seed);
            let m = LocalMatrix::random(4, 4, -1.0, 1.0, &mut rng);
            s.register_local_matrix("A", &m, 2);
            s.set_int("n", 4);
            (s, m)
        };
        let (s1, m1) = mk(21);
        let (s2, m2) = mk(22);
        // Both sessions run on the same executor pool but keep private
        // bindings: each sees its own "A".
        let src = "tiled(n,n)[ ((i,j), a*2.0) | ((i,j),a) <- A ]";
        std::thread::scope(|scope| {
            let h1 = scope.spawn(|| s1.matrix(src).unwrap().to_local());
            let h2 = scope.spawn(|| s2.matrix(src).unwrap().to_local());
            assert!(h1.join().unwrap().approx_eq(&m1.scale(2.0), 1e-12));
            assert!(h2.join().unwrap().approx_eq(&m2.scale(2.0), 1e-12));
        });
        assert_eq!(s1.storage_status().budget, Some(1 << 20));
        assert_eq!(s1.spark().workers(), s2.spark().workers());
    }

    #[test]
    fn run_planned_reuses_a_compiled_plan() {
        let (mut s, ms) = chaos_off_session_with(&[("A", 6, 6, 31)]);
        s.set_int("n", 6);
        let planned = s
            .compile("tiled(n,n)[ ((i,j), a+a) | ((i,j),a) <- A ]")
            .unwrap();
        let expected = ms[0].scale(2.0);
        for _ in 0..2 {
            let got = s.run_planned(&planned).unwrap().into_matrix().unwrap();
            assert!(got.to_local().approx_eq(&expected, 1e-12));
        }
    }

    #[test]
    fn matrix_named_roundtrip() {
        let (s, ms) = session_with(&[("A", 5, 5, 9)]);
        assert!(s
            .matrix_named("A")
            .unwrap()
            .to_local()
            .approx_eq(&ms[0], 1e-12));
        assert!(s.matrix_named("missing").is_none());
    }
}
