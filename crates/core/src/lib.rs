//! # sac — Scalable Array Comprehensions (the paper's system, in Rust)
//!
//! Public API of the reproduction of *"Scalable Linear Algebra Programming
//! for Big Data Analysis"* (Fegaras, EDBT 2021). The paper's SAC system
//! compiles SQL-like **array comprehensions with group-by** into distributed
//! data-parallel programs over block (tiled) arrays. So does this crate:
//!
//! ```
//! use sac::Session;
//! use tiled::LocalMatrix;
//!
//! let mut session = Session::builder().workers(2).partitions(2).build();
//! let a = LocalMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
//! let b = LocalMatrix::from_fn(4, 4, |i, j| (i * j) as f64);
//! session.register_local_matrix("A", &a, 2);
//! session.register_local_matrix("B", &b, 2);
//! session.set_int("n", 4);
//!
//! // Query (8) of the paper: matrix addition as a comprehension.
//! let sum = session
//!     .matrix("tiled(n,n)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]")
//!     .unwrap();
//! assert!(sum.to_local().approx_eq(&a.add(&b), 1e-12));
//! ```
//!
//! The [`Session`] compiles comprehension text through the full pipeline
//! (parse → normalize → plan → execute on the `sparkline` runtime);
//! [`linalg`] provides the paper's evaluation workloads (§6) pre-written as
//! comprehensions: addition, multiplication (both §5.3 and §5.4 plans), and
//! one gradient-descent iteration of matrix factorization.

pub mod context;
pub mod linalg;

pub use context::{ExplainAnalysis, Session, SessionBuilder};
pub use planner::{ExecResult, MatMulStrategy, OutputKind, PlanConfig};
