//! The paper's linear algebra workloads, written as array comprehensions.
//!
//! Every function here builds the comprehension text the paper gives for the
//! operation and runs it through the full SAC pipeline — nothing calls a
//! hand-written distributed kernel directly. This is the point of the
//! system: the *same* generic translation rules produce the efficient plans
//! (`eltwise` for Query 8, `contraction` for Query 9, `axisReduce` for
//! Fig. 1, `indexRemap` for §5.2's rotation, `groupByAggregate` for §3's
//! smoothing).

use crate::context::Session;
use comp::errors::CompError;
use planner::{DistArray, PlanEnv};
use tiled::{TiledMatrix, TiledVector};

/// Scratch environment with matrices bound under `%0`, `%1`, ... — names a
/// user query cannot collide with.
fn env_of(mats: &[&TiledMatrix]) -> PlanEnv {
    let mut env = PlanEnv::new();
    for (i, m) in mats.iter().enumerate() {
        env.set_array(format!("X{i}"), DistArray::Matrix((*m).clone()));
    }
    env
}

/// Query (8): element-wise addition `C_ij = A_ij + B_ij`.
pub fn add(s: &Session, a: &TiledMatrix, b: &TiledMatrix) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a, b]);
    env.set_int("n", a.rows());
    env.set_int("m", a.cols());
    s.run_in_env(
        "tiled(n,m)[ ((i,j), a+b) | ((i,j),a) <- X0, ((ii,jj),b) <- X1, ii == i, jj == j ]",
        &env,
    )?
    .into_matrix()
}

/// Element-wise subtraction `C_ij = A_ij - B_ij`.
pub fn subtract(s: &Session, a: &TiledMatrix, b: &TiledMatrix) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a, b]);
    env.set_int("n", a.rows());
    env.set_int("m", a.cols());
    s.run_in_env(
        "tiled(n,m)[ ((i,j), a-b) | ((i,j),a) <- X0, ((ii,jj),b) <- X1, ii == i, jj == j ]",
        &env,
    )?
    .into_matrix()
}

/// Scalar multiple `C_ij = c * A_ij`.
pub fn scale(s: &Session, a: &TiledMatrix, c: f64) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a]);
    env.set_int("n", a.rows());
    env.set_int("m", a.cols());
    env.set_float("c", c);
    s.run_in_env("tiled(n,m)[ ((i,j), c*a) | ((i,j),a) <- X0 ]", &env)?
        .into_matrix()
}

/// Transpose via the tiling-preserving swapped-key comprehension.
pub fn transpose(s: &Session, a: &TiledMatrix) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a]);
    env.set_int("n", a.rows());
    env.set_int("m", a.cols());
    s.run_in_env("tiled(m,n)[ ((j,i), a) | ((i,j),a) <- X0 ]", &env)?
        .into_matrix()
}

/// Query (9): matrix multiplication `C = A · B`. The session's configured
/// strategy decides between the §5.3 reduceByKey plan and the §5.4
/// group-by-join (SUMMA) plan.
pub fn multiply(s: &Session, a: &TiledMatrix, b: &TiledMatrix) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a, b]);
    env.set_int("n", a.rows());
    env.set_int("m", b.cols());
    s.run_in_env(
        "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- X0, ((kk,j),b) <- X1, kk == k, \
         let v = a*b, group by (i,j) ]",
        &env,
    )?
    .into_matrix()
}

/// `C = A · Bᵀ`, expressed by contracting both column indices — the planner
/// recognizes the orientation, no explicit transpose materializes.
pub fn multiply_bt(
    s: &Session,
    a: &TiledMatrix,
    b: &TiledMatrix,
) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a, b]);
    env.set_int("n", a.rows());
    env.set_int("m", b.rows());
    s.run_in_env(
        "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- X0, ((j,kk),b) <- X1, kk == k, \
         let v = a*b, group by (i,j) ]",
        &env,
    )?
    .into_matrix()
}

/// `C = Aᵀ · B`, by contracting both row indices.
pub fn multiply_at(
    s: &Session,
    a: &TiledMatrix,
    b: &TiledMatrix,
) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a, b]);
    env.set_int("n", a.cols());
    env.set_int("m", b.cols());
    s.run_in_env(
        "tiled(n,m)[ ((i,j), +/v) | ((k,i),a) <- X0, ((kk,j),b) <- X1, kk == k, \
         let v = a*b, group by (i,j) ]",
        &env,
    )?
    .into_matrix()
}

/// Matrix–vector product `y = A·x` as a comprehension (the 1-D contraction).
pub fn mat_vec(s: &Session, a: &TiledMatrix, x: &TiledVector) -> Result<TiledVector, CompError> {
    let mut env = env_of(&[a]);
    env.set_array("X1", planner::DistArray::Vector(x.clone()));
    env.set_int("n", a.rows());
    s.run_in_env(
        "tiled_vector(n)[ (i, +/v) | ((i,k),a) <- X0, (kk,x) <- X1, kk == k, \
         let v = a*x, group by i ]",
        &env,
    )?
    .into_vector()
}

/// `y = Aᵀ·x` by contracting the matrix row index.
pub fn mat_vec_t(s: &Session, a: &TiledMatrix, x: &TiledVector) -> Result<TiledVector, CompError> {
    let mut env = env_of(&[a]);
    env.set_array("X1", planner::DistArray::Vector(x.clone()));
    env.set_int("n", a.cols());
    s.run_in_env(
        "tiled_vector(n)[ (j, +/v) | ((k,j),a) <- X0, (kk,x) <- X1, kk == k, \
         let v = a*x, group by j ]",
        &env,
    )?
    .into_vector()
}

/// Element-wise vector combination `z_i = alpha·x_i + beta·y_i + c`.
pub fn vector_affine(
    s: &Session,
    x: &TiledVector,
    y: &TiledVector,
    alpha: f64,
    beta: f64,
    c: f64,
) -> Result<TiledVector, CompError> {
    let mut env = PlanEnv::new();
    env.set_array("X0", planner::DistArray::Vector(x.clone()));
    env.set_array("X1", planner::DistArray::Vector(y.clone()));
    env.set_int("n", x.len());
    env.set_float("alpha", alpha);
    env.set_float("beta", beta);
    env.set_float("c", c);
    s.run_in_env(
        "tiled_vector(n)[ (i, alpha*x + beta*y + c) | (i,x) <- X0, (ii,y) <- X1, ii == i ]",
        &env,
    )?
    .into_vector()
}

/// Fig. 1: row sums `V_i = Σ_j M_ij`.
pub fn row_sums(s: &Session, a: &TiledMatrix) -> Result<TiledVector, CompError> {
    let mut env = env_of(&[a]);
    env.set_int("n", a.rows());
    s.run_in_env(
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- X0, group by i ]",
        &env,
    )?
    .into_vector()
}

/// §3: 3×3 neighborhood smoothing with boundary handling.
pub fn smooth(s: &Session, a: &TiledMatrix) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a]);
    env.set_int("n", a.rows());
    env.set_int("m", a.cols());
    s.run_in_env(
        "tiled(n,m)[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- X0, \
         ii <- (i-1) to (i+1), jj <- (j-1) to (j+1), \
         ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
        &env,
    )?
    .into_matrix()
}

/// §5.2: rotate rows down by one (the last row wraps to the top).
pub fn rotate_rows(s: &Session, a: &TiledMatrix) -> Result<TiledMatrix, CompError> {
    let mut env = env_of(&[a]);
    env.set_int("n", a.rows());
    env.set_int("m", a.cols());
    s.run_in_env("tiled(n,m)[ (((i+1)%n, j), v) | ((i,j),v) <- X0 ]", &env)?
        .into_matrix()
}

/// One gradient-descent iteration of matrix factorization (§6, Fig. 4.C):
///
/// ```text
/// E  ← R − P·Qᵀ
/// P' ← P + γ(2·E·Q − λP)
/// Q' ← Q + γ(2·Eᵀ·P − λQ)
/// ```
///
/// `R` is `n×m`, `P` is `n×k`, `Q` is `m×k`. Every step is a comprehension:
/// the three multiplications use the configured contraction strategy and the
/// two updates fuse into single element-wise plans.
pub fn factorization_step(
    s: &Session,
    r: &TiledMatrix,
    p: &TiledMatrix,
    q: &TiledMatrix,
    gamma: f64,
    lambda: f64,
) -> Result<(TiledMatrix, TiledMatrix), CompError> {
    // E = R - P*Qᵀ
    let pqt = multiply_bt(s, p, q)?;
    let e = subtract(s, r, &pqt)?;

    // P' = P + γ(2 E·Q − λP), fused element-wise over P and E·Q.
    let eq = multiply(s, &e, q)?;
    let mut env = env_of(&[p, &eq]);
    env.set_int("n", p.rows());
    env.set_int("m", p.cols());
    env.set_float("gamma", gamma);
    env.set_float("lambda", lambda);
    let p2 = s
        .run_in_env(
            "tiled(n,m)[ ((i,j), p + gamma*(2.0*e - lambda*p)) | ((i,j),p) <- X0, \
             ((ii,jj),e) <- X1, ii == i, jj == j ]",
            &env,
        )?
        .into_matrix()?;

    // Q' = Q + γ(2 Eᵀ·P − λQ)
    let etp = multiply_at(s, &e, p)?;
    let mut env = env_of(&[q, &etp]);
    env.set_int("n", q.rows());
    env.set_int("m", q.cols());
    env.set_float("gamma", gamma);
    env.set_float("lambda", lambda);
    let q2 = s
        .run_in_env(
            "tiled(n,m)[ ((i,j), q + gamma*(2.0*e - lambda*q)) | ((i,j),q) <- X0, \
             ((ii,jj),e) <- X1, ii == i, jj == j ]",
            &env,
        )?
        .into_matrix()?;
    Ok((p2, q2))
}

/// §8 extension: `C = A · B` where A's tiles travel in **compressed sparse
/// column** storage. Same group-by-join plan shape as the dense path, but
/// each left tile ships only its non-zeros and the local kernel is
/// sparse-dense GEMM — the paper's "tiled arrays where each tile is stored
/// in the compressed sparse column format" future-work item. The layered
/// design makes this a storage swap: the distributed plan is unchanged.
pub fn multiply_sparse_left(
    s: &Session,
    a: &TiledMatrix,
    b: &TiledMatrix,
) -> Result<TiledMatrix, CompError> {
    use tiled::{CscTile, DenseMatrix};
    if a.tile_size() != b.tile_size() {
        return Err(CompError::plan("inputs must share a tile size"));
    }
    if a.cols() != b.rows() {
        return Err(CompError::plan("inner dimension mismatch"));
    }
    let n = a.tile_size();
    // 0 = automatic: fall back to one shuffle partition per worker.
    let partitions = match s.config().partitions {
        0 => s.spark().workers().max(1),
        p => p,
    };
    let bcols_b = b.block_cols();
    let brows_a = a.block_rows();

    // Sparsify left tiles once, then replicate per result column (GBJ).
    let lefts = a
        .tiles()
        .map(|(c, t)| (c, CscTile::from_dense(&t)))
        .flat_map(move |((i, k), t)| {
            (0..bcols_b)
                .map(|j| ((i, j), (k, t.clone())))
                .collect::<Vec<_>>()
        });
    let rights = b.tiles().flat_map(move |((k, j), t)| {
        (0..brows_a)
            .map(|i| ((i, j), (k, t.clone())))
            .collect::<Vec<_>>()
    });
    let tiles = lefts
        .cogroup(&rights, partitions)
        .map(move |(coord, (ls, rs))| {
            let mut out = DenseMatrix::zeros(n, n);
            let mut by_k = std::collections::HashMap::new();
            for (k, t) in &rs {
                by_k.insert(*k, t);
            }
            for (k, a_tile) in &ls {
                if let Some(b_tile) = by_k.get(k) {
                    a_tile.spmm_acc(b_tile, &mut out);
                }
            }
            (coord, out)
        });
    Ok(TiledMatrix::new(a.rows(), b.cols(), n, tiles))
}

/// Squared Frobenius error `‖R − P·Qᵀ‖²` — the factorization loss.
pub fn factorization_error(
    s: &Session,
    r: &TiledMatrix,
    p: &TiledMatrix,
    q: &TiledMatrix,
) -> Result<f64, CompError> {
    let e = subtract(s, r, &multiply_bt(s, p, q)?)?;
    let local = e.to_local();
    Ok(local.data().iter().map(|x| x * x).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use planner::MatMulStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiled::LocalMatrix;

    fn session() -> Session {
        Session::builder().workers(4).partitions(4).build()
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> LocalMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LocalMatrix::random(r, c, -1.0, 1.0, &mut rng)
    }

    fn dist(s: &Session, m: &LocalMatrix) -> TiledMatrix {
        TiledMatrix::from_local(s.spark(), m, 4, 4)
    }

    #[test]
    fn add_subtract_scale_transpose() {
        let s = session();
        let (a, b) = (rand_mat(7, 5, 1), rand_mat(7, 5, 2));
        let (da, db) = (dist(&s, &a), dist(&s, &b));
        assert!(add(&s, &da, &db)
            .unwrap()
            .to_local()
            .approx_eq(&a.add(&b), 1e-12));
        assert!(subtract(&s, &da, &db)
            .unwrap()
            .to_local()
            .approx_eq(&a.sub(&b), 1e-12));
        assert!(scale(&s, &da, 3.0)
            .unwrap()
            .to_local()
            .approx_eq(&a.scale(3.0), 1e-12));
        assert!(transpose(&s, &da)
            .unwrap()
            .to_local()
            .approx_eq(&a.transpose(), 1e-12));
    }

    #[test]
    fn multiply_variants_match_oracle() {
        let s = session();
        let a = rand_mat(6, 8, 3);
        let b = rand_mat(8, 5, 4);
        let c = rand_mat(6, 5, 5);
        let (da, db, dc) = (dist(&s, &a), dist(&s, &b), dist(&s, &c));
        assert!(
            multiply(&s, &da, &db)
                .unwrap()
                .to_local()
                .max_abs_diff(&a.multiply(&b))
                < 1e-9
        );
        // A(6x8) · C(6x5)ᵀ is invalid; use C·? — test A·Bᵀ with B: 5x8.
        let bt = rand_mat(5, 8, 6);
        let dbt = dist(&s, &bt);
        assert!(
            multiply_bt(&s, &da, &dbt)
                .unwrap()
                .to_local()
                .max_abs_diff(&a.multiply(&bt.transpose()))
                < 1e-9
        );
        assert!(
            multiply_at(&s, &da, &dc)
                .unwrap()
                .to_local()
                .max_abs_diff(&a.transpose().multiply(&c))
                < 1e-9
        );
    }

    #[test]
    fn mat_vec_variants_match_oracle() {
        let s = session();
        let a = rand_mat(9, 6, 20);
        let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.3 - 1.0).collect();
        let da = dist(&s, &a);
        let dx = TiledVector::from_local(s.spark(), &x, 4, 2);
        let got = mat_vec(&s, &da, &dx).unwrap().to_local();
        let want = a.to_dense().matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
        let y: Vec<f64> = (0..9).map(|i| i as f64 + 1.0).collect();
        let dy = TiledVector::from_local(s.spark(), &y, 4, 2);
        let got_t = mat_vec_t(&s, &da, &dy).unwrap().to_local();
        let want_t = a.transpose().to_dense().matvec(&y);
        for (g, w) in got_t.iter().zip(&want_t) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn vector_affine_matches() {
        let s = session();
        let x: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..13).map(|i| (i * i) as f64).collect();
        let dx = TiledVector::from_local(s.spark(), &x, 4, 2);
        let dy = TiledVector::from_local(s.spark(), &y, 4, 2);
        let got = vector_affine(&s, &dx, &dy, 2.0, -0.5, 1.0)
            .unwrap()
            .to_local();
        for i in 0..13 {
            assert!((got[i] - (2.0 * x[i] - 0.5 * y[i] + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn row_sums_match() {
        let s = session();
        let a = rand_mat(9, 6, 7);
        let v = row_sums(&s, &dist(&s, &a)).unwrap().to_local();
        for (got, want) in v.iter().zip(a.row_sums()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn smooth_and_rotate_match_oracle() {
        let s = session();
        let a = rand_mat(6, 6, 8);
        let da = dist(&s, &a);
        assert!(smooth(&s, &da)
            .unwrap()
            .to_local()
            .approx_eq(&a.smooth(), 1e-9));
        let rotated = rotate_rows(&s, &da).unwrap().to_local();
        let expected = LocalMatrix::from_fn(6, 6, |i, j| a.get((i + 6 - 1) % 6, j));
        assert!(rotated.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn sparse_left_multiply_matches_dense_and_shuffles_less() {
        // Pin a shuffling strategy: this test compares shuffled bytes, and
        // the adaptive planner would broadcast these small operands instead.
        let mut s = session();
        s.config_mut().matmul = MatMulStrategy::GroupByJoin;
        let mut rng = StdRng::seed_from_u64(30);
        // A is 5% dense; sparse tiles should ship far fewer bytes.
        let a = LocalMatrix::sparse_random(24, 24, 0.05, &mut rng);
        let b = rand_mat(24, 24, 31);
        let (da, db) = (dist(&s, &a), dist(&s, &b));

        let before = s.spark().metrics().snapshot();
        let sparse = multiply_sparse_left(&s, &da, &db).unwrap().to_local();
        let sparse_metrics = s.spark().metrics().snapshot().since(&before);

        let before = s.spark().metrics().snapshot();
        let dense = multiply(&s, &da, &db).unwrap().to_local();
        let dense_metrics = s.spark().metrics().snapshot().since(&before);

        assert!(sparse.max_abs_diff(&a.multiply(&b)) < 1e-9);
        assert!(dense.max_abs_diff(&a.multiply(&b)) < 1e-9);
        assert!(
            sparse_metrics.shuffle_bytes < dense_metrics.shuffle_bytes,
            "CSC left tiles must shuffle fewer bytes: {} vs {}",
            sparse_metrics.shuffle_bytes,
            dense_metrics.shuffle_bytes
        );
    }

    #[test]
    fn factorization_step_decreases_error() {
        let s = session();
        let mut rng = StdRng::seed_from_u64(9);
        let r = LocalMatrix::sparse_random(12, 12, 0.3, &mut rng);
        let p0 = LocalMatrix::random(12, 4, 0.0, 1.0, &mut rng);
        let q0 = LocalMatrix::random(12, 4, 0.0, 1.0, &mut rng);
        let (dr, mut dp, mut dq) = (dist(&s, &r), dist(&s, &p0), dist(&s, &q0));
        let e0 = factorization_error(&s, &dr, &dp, &dq).unwrap();
        for _ in 0..3 {
            let (p2, q2) = factorization_step(&s, &dr, &dp, &dq, 0.002, 0.02).unwrap();
            dp = p2;
            dq = q2;
        }
        let e1 = factorization_error(&s, &dr, &dp, &dq).unwrap();
        assert!(e1 < e0, "gradient descent must reduce error: {e0} -> {e1}");
    }

    #[test]
    fn factorization_step_matches_local_reference() {
        let s = session();
        let mut rng = StdRng::seed_from_u64(10);
        let r = rand_mat(8, 8, 11);
        let p = LocalMatrix::random(8, 4, 0.0, 1.0, &mut rng);
        let q = LocalMatrix::random(8, 4, 0.0, 1.0, &mut rng);
        let (gamma, lambda) = (0.002, 0.02);
        let (dp2, dq2) = factorization_step(
            &s,
            &dist(&s, &r),
            &dist(&s, &p),
            &dist(&s, &q),
            gamma,
            lambda,
        )
        .unwrap();
        // Local reference.
        let e = r.sub(&p.multiply(&q.transpose()));
        let p2 = LocalMatrix::from_fn(8, 4, |i, j| {
            p.get(i, j) + gamma * (2.0 * e.multiply(&q).get(i, j) - lambda * p.get(i, j))
        });
        let q2 = LocalMatrix::from_fn(8, 4, |i, j| {
            q.get(i, j)
                + gamma * (2.0 * e.transpose().multiply(&p).get(i, j) - lambda * q.get(i, j))
        });
        assert!(dp2.to_local().max_abs_diff(&p2) < 1e-9);
        assert!(dq2.to_local().max_abs_diff(&q2) < 1e-9);
    }
}
