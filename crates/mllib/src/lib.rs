//! # mllib — the baseline: Spark MLlib `BlockMatrix`, reimplemented
//!
//! The paper's evaluation (§6) compares SAC against Spark MLlib's
//! `mllib.linalg.distributed.BlockMatrix`. This crate reimplements the
//! *algorithms* of that class on the [`sparkline`] runtime with the same plan
//! shapes as MLlib 3.0:
//!
//! * [`BlockMatrix::add`] — cogroup of the two block sets on a
//!   `GridPartitioner`, pairwise block addition.
//! * [`BlockMatrix::multiply`] — MLlib's `simulateMultiply` replication:
//!   every left block is sent to each result partition that needs its block
//!   row, every right block to each result partition that needs its block
//!   column; the replicated streams are cogrouped **by partition id**, local
//!   GEMMs produce partial product blocks, and a final `reduceByKey` adds
//!   them. Note the *two* shuffle rounds (cogroup + reduceByKey of partial
//!   products) — this is the data movement SAC's group-by-join avoids, which
//!   is the source of the paper's Fig. 4.B gap.
//! * [`BlockMatrix::transpose`], [`BlockMatrix::scale`],
//!   [`BlockMatrix::subtract`] — narrow block maps, as in MLlib.

pub mod block_matrix;

pub use block_matrix::BlockMatrix;
