//! The MLlib `BlockMatrix` baseline.

use sparkline::{Context, KeyPartitioner, StorageLevel};
use tiled::{DenseMatrix, LocalMatrix, TileCoord, TileSet, TiledMatrix};

/// Block GEMM `c += a * b` as MLlib executes it without native BLAS: a
/// direct port of netlib-java's F2J `dgemm` loop nest (`j`-`l`-`i`, written
/// for column-major arrays, unblocked, no zero-skipping, no vectorization
/// hints). The paper's evaluation explicitly pinned MLlib to "the pure JVM
/// implementation" of Breeze (§6), which bottoms out in this kernel — SAC's
/// generated flat-array loops are the thing being compared against, so the
/// baseline must not silently borrow them.
fn f2j_gemm(c: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!((c.rows(), c.cols()), (m, n));
    for j in 0..n {
        for l in 0..k {
            let temp = b.get(l, j);
            if temp != 0.0 {
                for i in 0..m {
                    let v = c.get(i, j) + temp * a.get(i, l);
                    c.set(i, j, v);
                }
            }
        }
    }
}

/// A distributed matrix of dense blocks, mirroring MLlib's
/// `mllib.linalg.distributed.BlockMatrix` (square blocks of side
/// `block_size`, zero-padded at the edges).
#[derive(Clone)]
pub struct BlockMatrix {
    rows: i64,
    cols: i64,
    block_size: usize,
    partitions: usize,
    blocks: TileSet,
}

impl BlockMatrix {
    /// Wrap an existing block set.
    ///
    /// # Panics
    /// If dimensions or the block size are non-positive.
    pub fn new(
        rows: i64,
        cols: i64,
        block_size: usize,
        partitions: usize,
        blocks: TileSet,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert!(block_size > 0, "block size must be positive");
        BlockMatrix {
            rows,
            cols,
            block_size,
            partitions: partitions.max(1),
            blocks,
        }
    }

    /// Build from a [`TiledMatrix`] (they share the tile layout).
    pub fn from_tiled(m: &TiledMatrix, partitions: usize) -> Self {
        BlockMatrix::new(
            m.rows(),
            m.cols(),
            m.tile_size(),
            partitions,
            m.tiles().clone(),
        )
    }

    /// Distribute a local matrix.
    pub fn from_local(
        ctx: &Context,
        local: &LocalMatrix,
        block_size: usize,
        partitions: usize,
    ) -> Self {
        BlockMatrix::from_tiled(
            &TiledMatrix::from_local(ctx, local, block_size, partitions),
            partitions,
        )
    }

    /// Collect into a local matrix.
    pub fn to_local(&self) -> LocalMatrix {
        self.as_tiled().to_local()
    }

    /// View as a [`TiledMatrix`] (same tile layout).
    pub fn as_tiled(&self) -> TiledMatrix {
        TiledMatrix::new(self.rows, self.cols, self.block_size, self.blocks.clone())
    }

    pub fn rows(&self) -> i64 {
        self.rows
    }

    pub fn cols(&self) -> i64 {
        self.cols
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    pub fn blocks(&self) -> &TileSet {
        &self.blocks
    }

    /// Rows of the block grid.
    pub fn block_rows(&self) -> i64 {
        (self.rows + self.block_size as i64 - 1) / self.block_size as i64
    }

    /// Columns of the block grid.
    pub fn block_cols(&self) -> i64 {
        (self.cols + self.block_size as i64 - 1) / self.block_size as i64
    }

    fn grid_partitioner(&self) -> KeyPartitioner<TileCoord> {
        KeyPartitioner::grid(
            self.block_rows() as usize,
            self.block_cols() as usize,
            self.partitions,
        )
    }

    /// Cache the blocks for reuse. Delegates to the memory-budgeted block
    /// manager ([`BlockMatrix::persist`]), matching MLlib's
    /// `BlockMatrix.cache()`.
    pub fn cache(&self) -> BlockMatrix {
        self.persist()
    }

    /// Persist the blocks through the context's block manager: cached blocks
    /// are served without recomputation, evicted ones are transparently
    /// recomputed from lineage.
    pub fn persist(&self) -> BlockMatrix {
        self.persist_with(StorageLevel::Memory)
    }

    /// [`BlockMatrix::persist`] with an explicit [`StorageLevel`].
    pub fn persist_with(&self, level: StorageLevel) -> BlockMatrix {
        BlockMatrix {
            blocks: self.blocks.persist_with(level),
            ..self.clone()
        }
    }

    /// Drop this matrix's blocks from the block manager; returns the number
    /// of blocks removed.
    pub fn unpersist(&self) -> usize {
        self.blocks.unpersist()
    }

    /// Element-wise addition — MLlib's plan: cogroup both block sets on the
    /// result's `GridPartitioner` and add blocks pairwise (a missing block on
    /// one side passes the other through).
    ///
    /// # Panics
    /// On dimension or block-size mismatch (as MLlib requires).
    pub fn add(&self, other: &BlockMatrix) -> BlockMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add: dimension mismatch"
        );
        assert_eq!(
            self.block_size, other.block_size,
            "add: block size mismatch"
        );
        let partitioner = self.grid_partitioner();
        let blocks = self
            .blocks
            .cogroup_with(&other.blocks, partitioner)
            .flat_map(|(coord, (mut a, mut b))| {
                // Block coordinates are unique per side.
                match (a.pop(), b.pop()) {
                    (Some(mut x), Some(y)) => {
                        x.add_in_place(&y);
                        vec![(coord, x)]
                    }
                    (Some(x), None) => vec![(coord, x)],
                    (None, Some(y)) => vec![(coord, y)],
                    (None, None) => vec![],
                }
            });
        BlockMatrix::new(
            self.rows,
            self.cols,
            self.block_size,
            self.partitions,
            blocks,
        )
    }

    /// `self - other` (MLlib composes `other.scale(-1)` with `add`).
    pub fn subtract(&self, other: &BlockMatrix) -> BlockMatrix {
        self.add(&other.scale(-1.0))
    }

    /// Scalar multiple — a narrow block map.
    pub fn scale(&self, s: f64) -> BlockMatrix {
        let blocks = self.blocks.map(move |(coord, mut block)| {
            block.scale_in_place(s);
            (coord, block)
        });
        BlockMatrix::new(
            self.rows,
            self.cols,
            self.block_size,
            self.partitions,
            blocks,
        )
    }

    /// Transpose — a narrow block map (blocks are square).
    pub fn transpose(&self) -> BlockMatrix {
        let blocks = self
            .blocks
            .map(|((bi, bj), block)| ((bj, bi), block.transpose()));
        BlockMatrix::new(
            self.cols,
            self.rows,
            self.block_size,
            self.partitions,
            blocks,
        )
    }

    /// Matrix multiplication — MLlib's replicate + cogroup-by-partition +
    /// local GEMM + `reduceByKey` plan (`simulateMultiply`).
    ///
    /// # Panics
    /// On inner-dimension or block-size mismatch.
    pub fn multiply(&self, other: &BlockMatrix) -> BlockMatrix {
        assert_eq!(self.cols, other.rows, "multiply: inner dimension mismatch");
        assert_eq!(
            self.block_size, other.block_size,
            "multiply: block size mismatch"
        );
        let result_partitions = self.partitions;
        let result_partitioner = KeyPartitioner::grid(
            self.block_rows() as usize,
            other.block_cols() as usize,
            result_partitions,
        );

        // simulateMultiply: destination partitions per block.
        let right_block_cols = other.block_cols();
        let left_partitioner = result_partitioner.clone();
        let flat_a = self.blocks.flat_map(move |((bi, bk), block)| {
            // Left block (bi, bk) is needed by result blocks (bi, 0..bcolsB).
            let mut dests: Vec<usize> = (0..right_block_cols)
                .map(|bj| left_partitioner.partition(&(bi, bj)))
                .collect();
            dests.sort_unstable();
            dests.dedup();
            dests
                .into_iter()
                .map(|pid| (pid as i64, (bi, bk, block.clone())))
                .collect::<Vec<_>>()
        });
        let left_block_rows = self.block_rows();
        let right_partitioner = result_partitioner.clone();
        let flat_b = other.blocks.flat_map(move |((bk, bj), block)| {
            let mut dests: Vec<usize> = (0..left_block_rows)
                .map(|bi| right_partitioner.partition(&(bi, bj)))
                .collect();
            dests.sort_unstable();
            dests.dedup();
            dests
                .into_iter()
                .map(|pid| (pid as i64, (bk, bj, block.clone())))
                .collect::<Vec<_>>()
        });

        let block_size = self.block_size;
        let owner = result_partitioner.clone();
        let products =
            flat_a
                .cogroup(&flat_b, result_partitions)
                .flat_map(move |(pid, (lefts, rights))| {
                    let mut out: Vec<(TileCoord, DenseMatrix)> = Vec::new();
                    for (bi, bk, a) in &lefts {
                        for (bk2, bj, b) in &rights {
                            // A pair can meet in several partitions when grid
                            // regions alias; compute the product only in the
                            // partition that owns the result block, as MLlib's
                            // GridPartitioner guarantees structurally.
                            if bk2 == bk && owner.partition(&(*bi, *bj)) as i64 == pid {
                                let mut c = DenseMatrix::zeros(block_size, block_size);
                                f2j_gemm(&mut c, a, b);
                                out.push(((*bi, *bj), c));
                            }
                        }
                    }
                    out
                });
        let blocks =
            products.reduce_by_key_in_place(result_partitions, |acc, b| acc.add_in_place(&b));
        BlockMatrix::new(
            self.rows,
            other.cols,
            self.block_size,
            self.partitions,
            blocks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Context {
        Context::builder().workers(4).default_parallelism(4).build()
    }

    fn random(rows: usize, cols: usize, seed: u64) -> LocalMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LocalMatrix::random(rows, cols, 0.0, 10.0, &mut rng)
    }

    #[test]
    fn add_matches_oracle() {
        let c = ctx();
        let a = random(9, 7, 1);
        let b = random(9, 7, 2);
        let got = BlockMatrix::from_local(&c, &a, 4, 4)
            .add(&BlockMatrix::from_local(&c, &b, 4, 4))
            .to_local();
        assert!(got.approx_eq(&a.add(&b), 1e-12));
    }

    #[test]
    fn multiply_matches_oracle() {
        let c = ctx();
        let a = random(10, 8, 3);
        let b = random(8, 12, 4);
        let got = BlockMatrix::from_local(&c, &a, 4, 4)
            .multiply(&BlockMatrix::from_local(&c, &b, 4, 4))
            .to_local();
        assert!(got.max_abs_diff(&a.multiply(&b)) < 1e-9);
    }

    #[test]
    fn multiply_non_square_grids() {
        let c = ctx();
        let a = random(5, 13, 5);
        let b = random(13, 3, 6);
        let got = BlockMatrix::from_local(&c, &a, 4, 3)
            .multiply(&BlockMatrix::from_local(&c, &b, 4, 3))
            .to_local();
        assert!(got.max_abs_diff(&a.multiply(&b)) < 1e-9);
    }

    #[test]
    fn multiply_balances_non_square_partition_counts() {
        // simulateMultiply routes each replicated block to the partitions
        // owning its result blocks; with a non-square partition count (6)
        // the grid mapping must cover 0..partitions without aliasing
        // distant sub-rectangles — the wrap bug this exercises used to fold
        // them together, skewing reduce load. Correctness plus balance.
        let c = ctx();
        let a = random(16, 16, 13);
        let b = random(16, 16, 14);
        let ba = BlockMatrix::from_local(&c, &a, 4, 6);
        let bb = BlockMatrix::from_local(&c, &b, 4, 6);
        let got = ba.multiply(&bb).to_local();
        assert!(got.max_abs_diff(&a.multiply(&b)) < 1e-9);

        let partitioner = ba.grid_partitioner();
        let mut occupancy = vec![0usize; 6];
        for bi in 0..ba.block_rows() {
            for bj in 0..ba.block_cols() {
                let p = partitioner.partition(&(bi, bj));
                assert!(p < 6, "grid partition {p} out of range");
                occupancy[p] += 1;
            }
        }
        let (max, min) = (
            *occupancy.iter().max().unwrap(),
            *occupancy.iter().min().unwrap(),
        );
        assert!(min > 0, "every partition must own blocks: {occupancy:?}");
        assert!(
            max <= 2 * min,
            "block occupancy skew too high: {occupancy:?}"
        );
    }

    #[test]
    fn transpose_and_scale_and_subtract() {
        let c = ctx();
        let a = random(6, 9, 7);
        let b = random(6, 9, 8);
        let ba = BlockMatrix::from_local(&c, &a, 4, 2);
        let bb = BlockMatrix::from_local(&c, &b, 4, 2);
        assert!(ba.transpose().to_local().approx_eq(&a.transpose(), 1e-12));
        assert!(ba.scale(2.0).to_local().approx_eq(&a.scale(2.0), 1e-12));
        assert!(ba.subtract(&bb).to_local().approx_eq(&a.sub(&b), 1e-12));
    }

    #[test]
    fn multiply_uses_two_shuffle_rounds() {
        // The cogroup of replicated blocks plus the reduceByKey of partial
        // products — the plan shape the paper's GBJ avoids.
        let c = ctx();
        let a = random(8, 8, 9);
        let ba = BlockMatrix::from_local(&c, &a, 4, 4);
        let bb = BlockMatrix::from_local(&c, &a, 4, 4);
        let before = c.metrics().snapshot();
        ba.multiply(&bb).to_local();
        let after = c.metrics().snapshot();
        let d = after.since(&before);
        // cogroup shuffles both replicated sides (2) + reduceByKey (1).
        assert!(d.shuffle_count >= 3, "expected >= 3 shuffles, got {d:?}");
    }

    #[test]
    fn add_on_disjoint_block_sets_keeps_both() {
        let c = ctx();
        // a has only block (0,0); b has only block (1,1) non-zero content,
        // but both carry the full grid after tiling, so just verify values.
        let a = LocalMatrix::from_fn(8, 8, |i, j| if i < 4 && j < 4 { 1.0 } else { 0.0 });
        let b = LocalMatrix::from_fn(8, 8, |i, j| if i >= 4 && j >= 4 { 2.0 } else { 0.0 });
        let got = BlockMatrix::from_local(&c, &a, 4, 2)
            .add(&BlockMatrix::from_local(&c, &b, 4, 2))
            .to_local();
        assert!(got.approx_eq(&a.add(&b), 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn multiply_rejects_bad_shapes() {
        let c = ctx();
        let a = BlockMatrix::from_local(&c, &random(4, 4, 1), 2, 2);
        let b = BlockMatrix::from_local(&c, &random(6, 4, 2), 2, 2);
        let _ = a.multiply(&b);
    }

    #[test]
    fn cache_persists_product_blocks() {
        // Pin an ample budget (builder beats the SPARKLINE_STORAGE_BUDGET
        // env): this test asserts blocks actually stay resident, which a
        // deliberately tiny CI budget would legitimately void.
        let c = Context::builder()
            .workers(4)
            .default_parallelism(4)
            .storage_memory(64 << 20)
            .build();
        let a = random(8, 8, 12);
        let product = BlockMatrix::from_local(&c, &a, 4, 2)
            .multiply(&BlockMatrix::from_local(&c, &a, 4, 2))
            .cache();
        let first = product.to_local();
        assert!(first.approx_eq(&a.multiply(&a), 1e-9));
        assert!(c.storage_status().blocks_in_memory > 0);
        assert!(product.to_local().approx_eq(&first, 1e-15));
        assert!(product.unpersist() > 0);
    }

    #[test]
    fn identity_multiply_roundtrips() {
        let c = ctx();
        let a = random(8, 8, 11);
        let eye = LocalMatrix::from_fn(8, 8, |i, j| if i == j { 1.0 } else { 0.0 });
        let got = BlockMatrix::from_local(&c, &a, 4, 2)
            .multiply(&BlockMatrix::from_local(&c, &eye, 4, 2))
            .to_local();
        assert!(got.max_abs_diff(&a) < 1e-12);
    }
}
