//! Cache-stress and fault-injection harness for the block manager.
//!
//! Deterministic end-to-end proofs that memory-budgeted caching never
//! changes results: under thrashing budgets (every pass evicts), with
//! spill-to-disk, with injected task failures retried mid-read, and with
//! all three at once. The oracle is always the same pipeline evaluated
//! without `persist()`.

use sparkline::storage::StorageLevel;
use sparkline::{Context, Dataset, Event, STORAGE_BUDGET_ENV};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The reference pipeline: a shuffle (so lineage recovery crosses a stage
/// boundary) followed by a narrow map whose cost we can count.
fn pipeline(c: &Context, calls: &Arc<AtomicUsize>) -> Dataset<(i64, i64)> {
    let calls = calls.clone();
    c.parallelize((0..240i64).map(|i| (i % 12, i)).collect(), 6)
        .reduce_by_key(6, |a, b| a + b)
        .map(move |(k, v)| {
            calls.fetch_add(1, Ordering::SeqCst);
            (k, v * 2 + k)
        })
}

fn sorted(mut v: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
    v.sort_unstable();
    v
}

#[test]
fn persist_matches_uncached_under_thrashing_budget() {
    // 40-byte budget: each 6-partition block is larger, so with Memory level
    // nothing is ever resident -> every read recomputes, results identical.
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder().workers(4).build();
    let oracle = sorted(pipeline(&c, &calls).collect());

    for budget in [0usize, 40, 120, usize::MAX] {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Context::builder().workers(4).storage_memory(budget).build();
        let d = pipeline(&c, &calls).persist();
        for pass in 0..3 {
            assert_eq!(
                sorted(d.collect()),
                oracle,
                "budget {budget}, pass {pass} diverged"
            );
        }
    }
}

#[test]
fn spill_to_disk_round_trips_through_files() {
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder().workers(4).build();
    let oracle = sorted(pipeline(&c, &calls).collect());

    // Budget of one block: five of six blocks land in spill files.
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder().workers(4).storage_memory(40).build();
    c.trace();
    let d = pipeline(&c, &calls).persist_with(StorageLevel::MemoryAndDisk);
    assert_eq!(sorted(d.collect()), oracle);
    let after_first = calls.load(Ordering::SeqCst);
    assert_eq!(sorted(d.collect()), oracle);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        after_first,
        "second pass must be served from memory + disk, never recomputed"
    );
    let status = c.storage_status();
    assert!(status.spills > 0, "expected spills: {status:?}");
    assert!(status.blocks_on_disk > 0);
    let profile = c.take_profile();
    let totals = profile.cache_totals();
    assert!(totals.hits_from_disk > 0, "disk hits must be observed");
    assert_eq!(totals.misses, 6, "each partition computed exactly once");
}

#[test]
fn task_retries_do_not_corrupt_cache() {
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder().workers(4).build();
    let oracle = sorted(pipeline(&c, &calls).collect());

    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder()
        .workers(4)
        .max_task_attempts(6)
        .storage_memory(120)
        .build();
    let d = pipeline(&c, &calls).persist_with(StorageLevel::MemoryAndDisk);
    for round in 0..4 {
        let _guard = c.inject_task_failures_scoped(2);
        assert_eq!(sorted(d.collect()), oracle, "round {round} diverged");
    }
}

#[test]
fn eviction_plus_failures_still_converges() {
    // The acceptance scenario: a thrashing budget AND >= 2 injected
    // failures per run, across several runs — zero divergence allowed.
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder().workers(4).build();
    let oracle = sorted(pipeline(&c, &calls).collect());

    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder()
        .workers(4)
        .max_task_attempts(8)
        .storage_memory(80)
        .build();
    c.trace();
    let d = pipeline(&c, &calls).persist_with(StorageLevel::Memory);
    for run in 0..5 {
        let _guard = c.inject_task_failures_scoped(2);
        assert_eq!(sorted(d.collect()), oracle, "run {run} diverged");
    }
    let status = c.storage_status();
    assert!(status.evictions > 0, "budget must evict: {status:?}");
    let profile = c.take_profile();
    assert!(
        profile.cache_totals().recomputes > 0,
        "evicted blocks must recompute from lineage"
    );
    assert!(
        profile.total_failed_attempts() >= 2,
        "injected failures must surface as retries"
    );
}

#[test]
fn unpersist_mid_iteration_is_safe() {
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder().workers(4).build();
    let oracle = sorted(pipeline(&c, &calls).collect());

    let calls = Arc::new(AtomicUsize::new(0));
    let c = Context::builder()
        .workers(4)
        .storage_memory(1 << 20)
        .build();
    let d = pipeline(&c, &calls).persist();
    for round in 0..4 {
        assert_eq!(sorted(d.collect()), oracle, "round {round}");
        if round % 2 == 0 {
            assert_eq!(d.unpersist(), 6);
        }
    }
    // Rounds 0, 1 and 3 compute (the preceding round unpersisted or was the
    // first); round 2 is served from cache: 3 computing passes of 12 records.
    assert_eq!(calls.load(Ordering::SeqCst), 3 * 12);
}

#[test]
fn env_var_budget_knob_is_honored() {
    // The CI tiny-budget job drives the suite through this knob; prove the
    // plumbing works without mutating the process environment (which would
    // race other tests): an explicit builder budget must win over the env
    // var, and the env var name must be the documented one.
    assert_eq!(STORAGE_BUDGET_ENV, "SPARKLINE_STORAGE_BUDGET");
    let c = Context::builder().workers(2).storage_memory(777).build();
    assert_eq!(c.storage_status().budget, Some(777));
}

#[test]
fn cache_events_describe_the_stress_run() {
    let c = Context::builder().workers(2).storage_memory(40).build();
    c.trace();
    let calls = Arc::new(AtomicUsize::new(0));
    let d = pipeline(&c, &calls).persist();
    d.collect();
    d.collect();
    let events = c.take_events();
    let misses = events
        .iter()
        .filter(|e| matches!(e, Event::CacheMiss { .. }))
        .count();
    let recomputes = events
        .iter()
        .filter(|e| matches!(e, Event::CacheRecompute { .. }))
        .count();
    let evicts = events
        .iter()
        .filter(|e| matches!(e, Event::CacheEvict { .. }))
        .count();
    assert_eq!(misses, 6, "one first-computation per partition");
    assert!(recomputes > 0, "thrashing must recompute");
    assert!(evicts > 0, "thrashing must evict");
    // Every cache event names the same persisted dataset.
    let ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::CacheHit { dataset, .. }
            | Event::CacheMiss { dataset, .. }
            | Event::CacheEvict { dataset, .. }
            | Event::CacheSpill { dataset, .. }
            | Event::CacheRecompute { dataset, .. } => Some(*dataset),
            _ => None,
        })
        .collect();
    assert!(!ids.is_empty());
    assert!(ids.windows(2).all(|w| w[0] == w[1]));
}
