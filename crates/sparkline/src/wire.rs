//! Versioned, checksummed wire format for shuffle blocks and spill files.
//!
//! Every serialized block — a shuffle map-output bucket travelling to a
//! worker process, a spill file written by the [`crate::BlockManager`], or a
//! map output parked in the external shuffle directory — is wrapped in one
//! *frame*:
//!
//! ```text
//! +------+---------+-------------+------------+----------------+
//! | SPKL | version | len: u32 LE | crc: u32 LE| payload (len B)|
//! +------+---------+-------------+------------+----------------+
//! ```
//!
//! The payload is the [`crate::SpillCodec`] encoding of the value. The CRC
//! (CRC-32/IEEE over the payload) catches bit rot and garbled transfers; the
//! explicit length catches truncation. Decoding never panics: every way a
//! frame can be damaged surfaces as a [`WireError`], which the shuffle layer
//! converts into a retry/`FetchFailed` and the block manager converts into a
//! lineage recompute.
//!
//! The format is deliberately minimal — no compression, no schema — because
//! the frames are hop-by-hop (driver ↔ worker ↔ shuffle dir), not a durable
//! interchange format. `VERSION` is bumped on any layout change so stale
//! worker binaries fail loudly with [`WireError::BadVersion`] instead of
//! misdecoding.

use crate::storage::SpillCodec;
use std::io::{Read, Write};

/// Frame magic: identifies a sparkline wire frame.
pub const MAGIC: [u8; 4] = *b"SPKL";

/// Wire format version. Bump on any layout change.
pub const VERSION: u8 = 1;

/// Bytes of framing overhead per frame (magic + version + length + CRC).
pub const HEADER_LEN: usize = 4 + 1 + 4 + 4;

/// Hard cap on a single frame's payload, shared by encoder and decoder. A
/// length field beyond this is treated as corruption rather than an
/// allocation request — a garbled length byte must not ask the decoder to
/// reserve gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 30;

/// Everything that can go wrong decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The buffer ended before the header or payload was complete.
    Truncated,
    /// The payload length field exceeds [`MAX_PAYLOAD`].
    Oversized(u64),
    /// The payload checksum did not match the header CRC.
    CrcMismatch { expected: u32, actual: u32 },
    /// The CRC matched but the payload did not decode as the requested type
    /// (wrong type parameter or a codec bug — the frame itself is intact).
    Decode,
    /// An underlying I/O error while reading or writing a stream.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(n) => write!(f, "frame payload length {n} exceeds cap"),
            WireError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
            WireError::Decode => write!(f, "payload failed to decode"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, built at compile time — no dependencies.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes` (the classic zlib/`cksum -o 3` polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Framing over raw payload bytes.
// ---------------------------------------------------------------------------

/// Wrap already-encoded payload bytes in a frame.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload over cap");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate one frame at the start of `buf`; return the payload slice and
/// the total frame length (header + payload).
pub fn unframe_bytes(buf: &[u8]) -> Result<(&[u8], usize), WireError> {
    if buf.len() < HEADER_LEN {
        // Distinguish "not even a magic" from "header cut short" only as far
        // as the bytes allow: a wrong magic in the available prefix is
        // BadMagic, otherwise it is a truncation.
        let got = &buf[..buf.len().min(4)];
        if got != &MAGIC[..got.len()] {
            return Err(WireError::BadMagic);
        }
        return Err(WireError::Truncated);
    }
    if buf[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[4] != VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    let len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len as u64));
    }
    let expected = u32::from_le_bytes([buf[9], buf[10], buf[11], buf[12]]);
    let payload = buf
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(WireError::Truncated)?;
    let actual = crc32(payload);
    if actual != expected {
        return Err(WireError::CrcMismatch { expected, actual });
    }
    Ok((payload, HEADER_LEN + len))
}

// ---------------------------------------------------------------------------
// Typed frames over SpillCodec.
// ---------------------------------------------------------------------------

/// Encode a value as one self-contained frame.
pub fn encode_frame<T: SpillCodec>(value: &T) -> Vec<u8> {
    let mut payload = Vec::new();
    value.encode(&mut payload);
    frame_bytes(&payload)
}

/// Decode one frame holding a `T`. The whole buffer must be exactly one
/// frame; trailing bytes are corruption (a concatenated or padded file).
pub fn decode_frame<T: SpillCodec>(buf: &[u8]) -> Result<T, WireError> {
    let (payload, consumed) = unframe_bytes(buf)?;
    if consumed != buf.len() {
        return Err(WireError::Decode);
    }
    let mut pos = 0;
    let value = T::decode(payload, &mut pos).ok_or(WireError::Decode)?;
    if pos != payload.len() {
        return Err(WireError::Decode);
    }
    Ok(value)
}

/// Total wire length (header + payload) a value would occupy — the number
/// `explain_analyze` reports as true shuffle bytes.
pub fn encoded_len<T: SpillCodec>(value: &T) -> u64 {
    let mut payload = Vec::new();
    value.encode(&mut payload);
    (HEADER_LEN + payload.len()) as u64
}

// ---------------------------------------------------------------------------
// Stream helpers (sockets, files).
// ---------------------------------------------------------------------------

/// Write one frame around `payload` to a stream.
pub fn write_frame_bytes<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload over cap");
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[9..13].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame from a stream, returning the verified payload bytes.
///
/// `limit` caps the payload length accepted from this peer (use
/// [`MAX_PAYLOAD`] for no extra restriction); a header advertising more is
/// an [`WireError::Oversized`] without reading the body.
pub fn read_frame_bytes<R: Read>(r: &mut R, limit: usize) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or_truncated(r, &mut header)?;
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > limit.min(MAX_PAYLOAD) {
        return Err(WireError::Oversized(len as u64));
    }
    let expected = u32::from_le_bytes([header[9], header[10], header[11], header[12]]);
    let mut payload = vec![0u8; len];
    read_exact_or_truncated(r, &mut payload)?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(WireError::CrcMismatch { expected, actual });
    }
    Ok(payload)
}

/// `read_exact` that maps a clean EOF to [`WireError::Truncated`] (a peer
/// hanging up mid-frame is corruption, not an I/O failure).
fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(WireError::Truncated),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn frame_round_trips_typed_values() {
        let v: Vec<(u64, String)> = vec![(1, "one".into()), (2, "two".into())];
        let frame = encode_frame(&v);
        assert_eq!(frame.len() as u64, encoded_len(&v));
        let back: Vec<(u64, String)> = decode_frame(&frame).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut frame = encode_frame(&42u64);
        frame[0] = b'X';
        assert_eq!(decode_frame::<u64>(&frame), Err(WireError::BadMagic));
        let mut frame = encode_frame(&42u64);
        frame[4] = VERSION + 1;
        assert_eq!(
            decode_frame::<u64>(&frame),
            Err(WireError::BadVersion(VERSION + 1))
        );
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let frame = encode_frame(&vec![7u64, 8, 9]);
        for cut in 0..frame.len() {
            let err = decode_frame::<Vec<u64>>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = encode_frame(&1u64);
        frame.push(0);
        assert_eq!(decode_frame::<u64>(&frame), Err(WireError::Decode));
    }

    #[test]
    fn oversized_length_field_does_not_allocate() {
        let mut frame = encode_frame(&1u64);
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn wrong_type_is_a_decode_error_not_a_panic() {
        let frame = encode_frame(&"text".to_string());
        // Valid frame, wrong T: CRC passes, decode fails.
        assert_eq!(decode_frame::<Vec<f64>>(&frame), Err(WireError::Decode));
    }

    #[test]
    fn stream_round_trip_and_limit() {
        let payload = b"some shuffle bucket".to_vec();
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, &payload).unwrap();
        let back = read_frame_bytes(&mut buf.as_slice(), MAX_PAYLOAD).unwrap();
        assert_eq!(back, payload);
        let err = read_frame_bytes(&mut buf.as_slice(), 4).unwrap_err();
        assert!(matches!(err, WireError::Oversized(_)));
    }

    #[test]
    fn stream_eof_mid_frame_is_truncated() {
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, b"0123456789").unwrap();
        for cut in 0..buf.len() {
            let err = read_frame_bytes(&mut &buf[..cut], MAX_PAYLOAD).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    proptest! {
        /// Round trip for arbitrary payloads, through both the slice and the
        /// stream paths.
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(0u8..=255, 0..512)) {
            let frame = frame_bytes(&data);
            let (payload, consumed) = unframe_bytes(&frame).unwrap();
            prop_assert_eq!(payload, &data[..]);
            prop_assert_eq!(consumed, frame.len());
            let read = read_frame_bytes(&mut frame.as_slice(), MAX_PAYLOAD).unwrap();
            prop_assert_eq!(read, data);
        }

        /// Adversarial single-bit flips anywhere in the frame must never
        /// round-trip silently: every flip is either detected as an error or
        /// (impossible for CRC-32 on a single bit) changes nothing.
        #[test]
        fn prop_bit_flips_are_detected(
            data in proptest::collection::vec(0u8..=255, 0..256),
            byte_pick in 0usize..1 << 16,
            bit in 0usize..8,
        ) {
            let clean = frame_bytes(&data);
            let mut frame = clean.clone();
            let idx = byte_pick % frame.len();
            frame[idx] ^= 1 << bit;
            match unframe_bytes(&frame) {
                Err(_) => {} // detected — good
                Ok((payload, consumed)) => {
                    // A flip in the length field could make the frame appear
                    // shorter *and* still CRC-match only if the CRC of the
                    // prefix collides — assert it did not go unnoticed.
                    prop_assert!(
                        payload != &data[..] || consumed != frame.len() || frame[idx] == clean[idx],
                        "bit flip at byte {idx} bit {bit} went undetected"
                    );
                }
            }
        }

        /// Typed round trip over a realistic shuffle bucket type, including
        /// non-finite floats (compared by bit pattern).
        #[test]
        fn prop_typed_bucket_round_trip(
            pairs in proptest::collection::vec(
                (i64::MIN..i64::MAX, -1e300f64..1e300, 0usize..16),
                0..64,
            )
        ) {
            let pairs: Vec<(i64, f64)> = pairs
                .into_iter()
                .map(|(k, v, special)| {
                    // Salt in the values a range strategy can't produce.
                    let v = match special {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        3 => -0.0,
                        _ => v,
                    };
                    (k, v)
                })
                .collect();
            let frame = encode_frame(&pairs);
            let back: Vec<(i64, f64)> = decode_frame(&frame).unwrap();
            let same = pairs.len() == back.len()
                && pairs.iter().zip(&back).all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
            prop_assert!(same);
        }
    }
}
