//! Internal lock wrapper: `std::sync::Mutex` with `parking_lot`-style
//! ergonomics (no poisoning).
//!
//! The runtime catches task panics and re-raises them from the driver, so a
//! panic observed while a lock was held is already being reported through
//! that path; propagating poison from an unrelated lock acquisition would
//! only mask the original failure.

pub(crate) struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub(crate) fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}
