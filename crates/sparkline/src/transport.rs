//! Multi-process shuffle data plane: worker processes, the framed socket
//! protocol between driver and workers, and driver-side worker supervision.
//!
//! Rust task closures cannot cross a process boundary, so sparkline's worker
//! processes host the shuffle *data plane* only: each `sparkline-worker`
//! process is a block store that accepts serialized map-output buckets
//! ([`crate::wire`] frames) over a loopback socket and serves them back to
//! reduce tasks. Computation stays on the driver's executor threads; logical
//! executor `e` stores its map outputs on worker `e % n_workers`. That split
//! keeps the programming model intact while making `kill -9` a *real* fault:
//! the bytes are genuinely gone, and recovery must run through the epoch /
//! `FetchFailed` machinery (or the external shuffle directory) rather than a
//! simulated flag.
//!
//! ## Protocol
//!
//! Every request and response is one wire frame whose payload starts with a
//! 1-byte opcode/status, followed by [`crate::SpillCodec`]-encoded fields:
//!
//! | op | request                                   | response            |
//! |----|-------------------------------------------|---------------------|
//! | 0  | `PUT  shuffle, map, reduce, frame bytes`  | `OK`                |
//! | 1  | `GET  shuffle, map, reduce`               | `OK + bytes` / `NOT_FOUND` |
//! | 2  | `DROP shuffle`                            | `OK`                |
//! | 3  | `PING`                                    | `OK`                |
//!
//! Connections are per-request (loopback connects are ~10µs; a pool would
//! complicate the kill -9 story for no measurable win at this scale) and
//! carry connect/read/write timeouts so a wedged worker turns into a retry,
//! never a hang.
//!
//! ## Supervision
//!
//! [`WorkerGroup`] spawns the children, performs the port handshake over the
//! child's stdout, and runs a heartbeat thread: `PING` every interval, and a
//! worker whose last successful ping is older than the liveness deadline is
//! declared dead, killed (noop if already gone), respawned, and reported via
//! the `on_worker_lost` callback so the scheduler can sweep the executors it
//! hosted. Each child holds a stdin pipe from the driver; on driver death
//! the pipe closes and the worker exits, so no orphan processes outlive a
//! crashed test run.

use crate::storage::SpillCodec;
use crate::sync::Mutex;
use crate::wire;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Env var naming the `sparkline-worker` binary explicitly (otherwise it is
/// discovered next to the current executable).
pub const WORKER_BIN_ENV: &str = "SPARKLINE_WORKER_BIN";

const OP_PUT: u8 = 0;
const OP_GET: u8 = 1;
const OP_DROP: u8 = 2;
const OP_PING: u8 = 3;

const ST_OK: u8 = 0;
const ST_NOT_FOUND: u8 = 1;
const ST_ERR: u8 = 2;

// ---------------------------------------------------------------------------
// Worker side: the block store and its serve loop (used by the
// `sparkline-worker` binary, and in-process by the protocol tests).
// ---------------------------------------------------------------------------

/// In-memory store of shuffle map-output frames, keyed by
/// `(shuffle, map, reduce)`.
#[derive(Default)]
struct WorkerStore {
    blocks: Mutex<HashMap<(u64, u64, u64), Arc<Vec<u8>>>>,
}

impl WorkerStore {
    fn handle(&self, payload: &[u8]) -> Vec<u8> {
        let Some((&op, rest)) = payload.split_first() else {
            return vec![ST_ERR];
        };
        let mut pos = 0;
        match op {
            OP_PUT => {
                let decoded = (|| {
                    let shuffle = u64::decode(rest, &mut pos)?;
                    let map = u64::decode(rest, &mut pos)?;
                    let reduce = u64::decode(rest, &mut pos)?;
                    let data = Vec::<u8>::decode(rest, &mut pos)?;
                    (pos == rest.len()).then_some((shuffle, map, reduce, data))
                })();
                match decoded {
                    Some((shuffle, map, reduce, data)) => {
                        self.blocks
                            .lock()
                            .insert((shuffle, map, reduce), Arc::new(data));
                        vec![ST_OK]
                    }
                    None => vec![ST_ERR],
                }
            }
            OP_GET => {
                let decoded = (|| {
                    let shuffle = u64::decode(rest, &mut pos)?;
                    let map = u64::decode(rest, &mut pos)?;
                    let reduce = u64::decode(rest, &mut pos)?;
                    (pos == rest.len()).then_some((shuffle, map, reduce))
                })();
                match decoded {
                    Some(key) => match self.blocks.lock().get(&key) {
                        Some(data) => {
                            let mut out = vec![ST_OK];
                            data.as_slice().to_vec().encode(&mut out);
                            out
                        }
                        None => vec![ST_NOT_FOUND],
                    },
                    None => vec![ST_ERR],
                }
            }
            OP_DROP => match u64::decode(rest, &mut pos) {
                Some(shuffle) if pos == rest.len() => {
                    self.blocks.lock().retain(|(s, _, _), _| *s != shuffle);
                    vec![ST_OK]
                }
                _ => vec![ST_ERR],
            },
            OP_PING => vec![ST_OK],
            _ => vec![ST_ERR],
        }
    }
}

/// Serve the worker protocol on `listener` forever (one thread per
/// connection). This is the entire body of the `sparkline-worker` binary.
pub fn serve_worker(listener: TcpListener) {
    let store = Arc::new(WorkerStore::default());
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let store = store.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(&store, stream);
        });
    }
}

fn serve_connection(store: &WorkerStore, mut stream: TcpStream) -> Result<(), wire::WireError> {
    stream.set_nodelay(true).ok();
    loop {
        let request = match wire::read_frame_bytes(&mut stream, wire::MAX_PAYLOAD) {
            Ok(r) => r,
            // Clean disconnect between requests is the normal end of a
            // per-request connection.
            Err(_) => return Ok(()),
        };
        let response = store.handle(&request);
        wire::write_frame_bytes(&mut stream, &response)?;
        stream.flush()?;
    }
}

// ---------------------------------------------------------------------------
// Driver side: client.
// ---------------------------------------------------------------------------

/// Blocking client for one worker's socket. Connections are per-request and
/// every socket operation carries a timeout.
#[derive(Clone, Debug)]
pub struct WorkerClient {
    addr: SocketAddr,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl WorkerClient {
    pub fn new(addr: SocketAddr, connect_timeout: Duration, io_timeout: Duration) -> Self {
        WorkerClient {
            addr,
            connect_timeout,
            io_timeout,
        }
    }

    fn request(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| format!("set timeouts: {e}"))?;
        stream.set_nodelay(true).ok();
        wire::write_frame_bytes(&mut stream, payload).map_err(|e| format!("send: {e}"))?;
        wire::read_frame_bytes(&mut stream, wire::MAX_PAYLOAD).map_err(|e| format!("recv: {e}"))
    }

    /// Store one map-output frame on the worker.
    pub fn put(&self, shuffle: u64, map: u64, reduce: u64, frame: Vec<u8>) -> Result<(), String> {
        let mut payload = vec![OP_PUT];
        shuffle.encode(&mut payload);
        map.encode(&mut payload);
        reduce.encode(&mut payload);
        frame.encode(&mut payload);
        match self.request(&payload)?.first() {
            Some(&ST_OK) => Ok(()),
            other => Err(format!("put rejected: status {other:?}")),
        }
    }

    /// Fetch one map-output frame; `Ok(None)` when the worker does not have
    /// it (e.g. a respawned worker with an empty store).
    pub fn get(&self, shuffle: u64, map: u64, reduce: u64) -> Result<Option<Vec<u8>>, String> {
        let mut payload = vec![OP_GET];
        shuffle.encode(&mut payload);
        map.encode(&mut payload);
        reduce.encode(&mut payload);
        let response = self.request(&payload)?;
        match response.split_first() {
            Some((&ST_OK, rest)) => {
                let mut pos = 0;
                let data = Vec::<u8>::decode(rest, &mut pos)
                    .filter(|_| pos == rest.len())
                    .ok_or_else(|| "malformed GET response".to_string())?;
                Ok(Some(data))
            }
            Some((&ST_NOT_FOUND, _)) => Ok(None),
            other => Err(format!("get rejected: status {other:?}")),
        }
    }

    /// Drop every frame of `shuffle` on the worker.
    pub fn drop_shuffle(&self, shuffle: u64) -> Result<(), String> {
        let mut payload = vec![OP_DROP];
        shuffle.encode(&mut payload);
        match self.request(&payload)?.first() {
            Some(&ST_OK) => Ok(()),
            other => Err(format!("drop rejected: status {other:?}")),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), String> {
        match self.request(&[OP_PING])?.first() {
            Some(&ST_OK) => Ok(()),
            other => Err(format!("ping rejected: status {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Driver side: process supervision.
// ---------------------------------------------------------------------------

/// Tunables for [`WorkerGroup::spawn`].
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    pub connect_timeout: Duration,
    pub io_timeout: Duration,
    /// Heartbeat ping interval.
    pub heartbeat_interval: Duration,
    /// A worker whose last successful ping is older than this is declared
    /// dead and respawned.
    pub liveness_deadline: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(2_000),
            heartbeat_interval: Duration::from_millis(50),
            liveness_deadline: Duration::from_millis(500),
        }
    }
}

struct WorkerSlot {
    child: Child,
    addr: SocketAddr,
    /// Bumped on every respawn; lets racing observers (heartbeat vs. an
    /// explicit kill) tell whether someone else already handled a death.
    incarnation: u64,
}

/// A supervised group of `sparkline-worker` processes.
pub struct WorkerGroup {
    bin: PathBuf,
    config: WorkerConfig,
    slots: Vec<Mutex<WorkerSlot>>,
    stop: AtomicBool,
    heartbeat: Mutex<Option<std::thread::JoinHandle<()>>>,
    on_lost: Mutex<Option<Box<dyn Fn(usize) + Send + Sync>>>,
    /// Wall time of every successful shuffle fetch, for the bench's p50/p99.
    fetch_micros: Mutex<Vec<u64>>,
    fetch_retries: AtomicU64,
}

impl WorkerGroup {
    /// Locate the worker binary: `SPARKLINE_WORKER_BIN`, else next to the
    /// current executable (`target/<profile>/` for bins, one directory up
    /// from `target/<profile>/deps/` for test executables).
    fn find_binary() -> Result<PathBuf, String> {
        if let Ok(path) = std::env::var(WORKER_BIN_ENV) {
            let path = PathBuf::from(path);
            if path.is_file() {
                return Ok(path);
            }
            return Err(format!(
                "{WORKER_BIN_ENV}={} does not exist",
                path.display()
            ));
        }
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut dir = exe.parent();
        while let Some(d) = dir {
            let candidate = d.join("sparkline-worker");
            if candidate.is_file() {
                return Ok(candidate);
            }
            if d.file_name().is_some_and(|n| n == "target") {
                break;
            }
            dir = d.parent();
        }
        Err(format!(
            "sparkline-worker binary not found near {} (set {WORKER_BIN_ENV})",
            exe.display()
        ))
    }

    fn spawn_child(bin: &PathBuf) -> Result<(Child, SocketAddr), String> {
        let mut child = Command::new(bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        // Port handshake: the worker binds 127.0.0.1:0 and prints
        // `PORT\t<port>` as its first stdout line.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("worker handshake: {e}"))?;
        let port: u16 = line
            .trim()
            .strip_prefix("PORT\t")
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad worker handshake line {line:?}"))?;
        let addr = SocketAddr::from(([127, 0, 0, 1], port));
        Ok((child, addr))
    }

    /// Spawn `n` worker processes and start the heartbeat supervisor.
    pub fn spawn(n: usize, config: WorkerConfig) -> Result<Arc<WorkerGroup>, String> {
        assert!(n > 0, "worker group needs at least one process");
        let bin = Self::find_binary()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let (child, addr) = Self::spawn_child(&bin)?;
            slots.push(Mutex::new(WorkerSlot {
                child,
                addr,
                incarnation: 0,
            }));
        }
        let group = Arc::new(WorkerGroup {
            bin,
            config,
            slots,
            stop: AtomicBool::new(false),
            heartbeat: Mutex::new(None),
            on_lost: Mutex::new(None),
            fetch_micros: Mutex::new(Vec::new()),
            fetch_retries: AtomicU64::new(0),
        });
        let weak: Weak<WorkerGroup> = Arc::downgrade(&group);
        let handle = std::thread::Builder::new()
            .name("sparkline-heartbeat".into())
            .spawn(move || heartbeat_loop(weak))
            .map_err(|e| format!("spawn heartbeat: {e}"))?;
        *group.heartbeat.lock() = Some(handle);
        Ok(group)
    }

    /// Number of worker processes in the group.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Install the scheduler's worker-loss callback (invoked by the
    /// heartbeat supervisor *after* the worker has been respawned).
    pub fn set_on_worker_lost(&self, f: impl Fn(usize) + Send + Sync + 'static) {
        *self.on_lost.lock() = Some(Box::new(f));
    }

    fn client_for(&self, worker: usize) -> WorkerClient {
        let addr = self.slots[worker].lock().addr;
        WorkerClient::new(addr, self.config.connect_timeout, self.config.io_timeout)
    }

    /// OS process id of one worker (diagnostics / tests).
    pub fn pid(&self, worker: usize) -> u32 {
        self.slots[worker].lock().child.id()
    }

    /// Store one map-output frame on `worker`.
    pub fn put(
        &self,
        worker: usize,
        shuffle: u64,
        map: u64,
        reduce: u64,
        frame: Vec<u8>,
    ) -> Result<(), String> {
        self.client_for(worker).put(shuffle, map, reduce, frame)
    }

    /// Fetch one map-output frame from `worker`, timing the transfer. A
    /// missing block is an error here — the shuffle layer decides whether to
    /// retry, fall back to the external directory, or escalate.
    pub fn fetch(
        &self,
        worker: usize,
        shuffle: u64,
        map: u64,
        reduce: u64,
    ) -> Result<Vec<u8>, String> {
        let start = Instant::now();
        let got = self.client_for(worker).get(shuffle, map, reduce)?;
        match got {
            Some(frame) => {
                self.fetch_micros
                    .lock()
                    .push(start.elapsed().as_micros() as u64);
                Ok(frame)
            }
            None => Err(format!(
                "worker {worker} has no block for shuffle {shuffle} map {map} reduce {reduce}"
            )),
        }
    }

    /// Best-effort drop of a finished shuffle's frames on every worker.
    pub fn drop_shuffle(&self, shuffle: u64) {
        for worker in 0..self.len() {
            let _ = self.client_for(worker).drop_shuffle(shuffle);
        }
    }

    /// Count one shuffle-fetch retry (for `BENCH_shuffle.json`).
    pub fn note_retry(&self) {
        self.fetch_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful-fetch latencies (µs, unsorted) and total retries so far.
    pub fn fetch_stats(&self) -> (Vec<u64>, u64) {
        (
            self.fetch_micros.lock().clone(),
            self.fetch_retries.load(Ordering::Relaxed),
        )
    }

    /// `kill -9` one worker process and respawn it (empty store, new port).
    /// Returns the incarnation that was killed. The caller is responsible
    /// for sweeping the executors the dead incarnation hosted.
    pub fn kill9(&self, worker: usize) -> u64 {
        let mut slot = self.slots[worker].lock();
        let killed = slot.incarnation;
        slot.child.kill().ok();
        slot.child.wait().ok();
        match Self::spawn_child(&self.bin) {
            Ok((child, addr)) => {
                slot.child = child;
                slot.addr = addr;
                slot.incarnation += 1;
            }
            Err(e) => panic!("failed to respawn worker {worker}: {e}"),
        }
        killed
    }

    fn incarnation(&self, worker: usize) -> u64 {
        self.slots[worker].lock().incarnation
    }
}

impl Drop for WorkerGroup {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.heartbeat.lock().take() {
            handle.join().ok();
        }
        for slot in &self.slots {
            let mut slot = slot.lock();
            slot.child.kill().ok();
            slot.child.wait().ok();
        }
    }
}

/// Heartbeat supervisor: ping every worker each interval; one whose last
/// successful ping is older than the liveness deadline is killed, respawned,
/// and reported to the scheduler. Holds only a `Weak` so dropping the group
/// stops the loop.
fn heartbeat_loop(group: Weak<WorkerGroup>) {
    let mut last_ok: Vec<Instant> = Vec::new();
    loop {
        let interval;
        // The strong ref is scoped to one sweep so dropping the group while
        // we sleep is never blocked on this thread.
        {
            let Some(group) = group.upgrade() else { return };
            if group.stop.load(Ordering::SeqCst) {
                return;
            }
            let config = group.config;
            interval = config.heartbeat_interval;
            if last_ok.is_empty() {
                last_ok = vec![Instant::now(); group.len()];
            }
            for (worker, last) in last_ok.iter_mut().enumerate() {
                let before = group.incarnation(worker);
                if group.client_for(worker).ping().is_ok() {
                    *last = Instant::now();
                    continue;
                }
                if last.elapsed() < config.liveness_deadline {
                    continue;
                }
                // Deadline blown: the worker is dead. Respawn it unless
                // someone (an explicit kill, chaos) already did while we
                // were pinging.
                if group.incarnation(worker) == before {
                    group.kill9(worker);
                    *last = Instant::now();
                    let cb = group.on_lost.lock();
                    if let Some(f) = cb.as_ref() {
                        f(worker);
                    }
                }
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boot an in-process worker (same serve loop as the binary) and return
    /// a client for it.
    fn local_worker() -> WorkerClient {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || serve_worker(listener));
        WorkerClient::new(addr, Duration::from_millis(500), Duration::from_millis(500))
    }

    #[test]
    fn put_get_round_trip_and_not_found() {
        let client = local_worker();
        client.ping().unwrap();
        let frame = wire::encode_frame(&vec![(1u64, 2.5f64), (3, 4.5)]);
        client.put(7, 0, 1, frame.clone()).unwrap();
        assert_eq!(client.get(7, 0, 1).unwrap(), Some(frame));
        assert_eq!(client.get(7, 0, 2).unwrap(), None);
        assert_eq!(client.get(8, 0, 1).unwrap(), None);
    }

    #[test]
    fn drop_shuffle_clears_only_that_shuffle() {
        let client = local_worker();
        client.put(1, 0, 0, b"one".to_vec()).unwrap();
        client.put(2, 0, 0, b"two".to_vec()).unwrap();
        client.drop_shuffle(1).unwrap();
        assert_eq!(client.get(1, 0, 0).unwrap(), None);
        assert_eq!(client.get(2, 0, 0).unwrap(), Some(b"two".to_vec()));
    }

    #[test]
    fn put_overwrites_on_resubmission() {
        // A resubmitted map task re-PUTs its bucket; the store must keep the
        // newest bytes rather than erroring or duplicating.
        let client = local_worker();
        client.put(3, 1, 1, b"old".to_vec()).unwrap();
        client.put(3, 1, 1, b"new".to_vec()).unwrap();
        assert_eq!(client.get(3, 1, 1).unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn malformed_request_gets_error_status_and_connection_survives() {
        let client = local_worker();
        // Opcode with a garbage body: the worker answers ST_ERR (surfaced as
        // an Err by the typed client) instead of dying.
        let listener_alive = || client.ping().is_ok();
        let mut stream =
            TcpStream::connect_timeout(&client.addr, Duration::from_millis(500)).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        wire::write_frame_bytes(&mut stream, &[OP_PUT, 0xde, 0xad]).unwrap();
        let resp = wire::read_frame_bytes(&mut stream, wire::MAX_PAYLOAD).unwrap();
        assert_eq!(resp, vec![ST_ERR]);
        // Unknown opcode too.
        wire::write_frame_bytes(&mut stream, &[0x7f]).unwrap();
        let resp = wire::read_frame_bytes(&mut stream, wire::MAX_PAYLOAD).unwrap();
        assert_eq!(resp, vec![ST_ERR]);
        assert!(listener_alive());
    }

    #[test]
    fn corrupt_frame_disconnects_without_killing_listener() {
        let client = local_worker();
        let mut stream =
            TcpStream::connect_timeout(&client.addr, Duration::from_millis(500)).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        stream.write_all(b"not a frame at all").unwrap();
        drop(stream);
        // The poisoned connection is closed; fresh connections still work.
        client.ping().unwrap();
    }
}
