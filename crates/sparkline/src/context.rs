//! Execution context: configuration, the executor pool, task retry, and
//! failure injection.

use crate::metrics::Metrics;
use crate::Data;
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Builder for [`Context`].
pub struct ContextBuilder {
    workers: usize,
    default_parallelism: usize,
    max_task_attempts: u32,
}

impl Default for ContextBuilder {
    fn default() -> Self {
        ContextBuilder {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            default_parallelism: 8,
            max_task_attempts: 4,
        }
    }
}

impl ContextBuilder {
    /// Number of executor threads used to run tasks.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Default number of partitions for sources and shuffles when the caller
    /// does not specify one.
    pub fn default_parallelism(mut self, n: usize) -> Self {
        self.default_parallelism = n.max(1);
        self
    }

    /// Maximum attempts per task before the job fails (Spark's
    /// `spark.task.maxFailures`).
    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.max_task_attempts = n.max(1);
        self
    }

    pub fn build(self) -> Context {
        Context {
            inner: Arc::new(CtxInner {
                workers: self.workers,
                default_parallelism: self.default_parallelism,
                max_task_attempts: self.max_task_attempts,
                metrics: Metrics::default(),
                injected_failures: AtomicI64::new(0),
                shuffle_ids: AtomicU64::new(0),
                broadcasts: Mutex::new(Vec::new()),
            }),
        }
    }
}

pub(crate) struct CtxInner {
    pub(crate) workers: usize,
    pub(crate) default_parallelism: usize,
    pub(crate) max_task_attempts: u32,
    pub(crate) metrics: Metrics,
    injected_failures: AtomicI64,
    shuffle_ids: AtomicU64,
    // Broadcast variables are kept alive by the context, like Spark's
    // BlockManager does; they are just Arc'd values here.
    broadcasts: Mutex<Vec<Arc<dyn std::any::Any + Send + Sync>>>,
}

/// Handle to the runtime: creates datasets, runs stages, owns metrics.
///
/// Cheap to clone; all clones share one executor pool and metrics sink.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<CtxInner>,
}

impl Default for Context {
    fn default() -> Self {
        ContextBuilder::default().build()
    }
}

impl Context {
    /// A context with the default configuration.
    pub fn new() -> Context {
        Context::default()
    }

    /// Start building a customized context.
    pub fn builder() -> ContextBuilder {
        ContextBuilder::default()
    }

    /// Number of executor threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Default partition count for sources and shuffles.
    pub fn default_parallelism(&self) -> usize {
        self.inner.default_parallelism
    }

    /// Runtime metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Create a dataset from a local collection, splitting it into
    /// `partitions` roughly equal chunks.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> crate::Dataset<T> {
        crate::Dataset::from_vec(self.clone(), data, partitions.max(1))
    }

    /// [`Context::parallelize`] with the default parallelism.
    pub fn parallelize_default<T: Data>(&self, data: Vec<T>) -> crate::Dataset<T> {
        self.parallelize(data, self.inner.default_parallelism)
    }

    /// Register a broadcast value: a read-only value shared by all tasks.
    pub fn broadcast<T: Send + Sync + 'static>(&self, value: T) -> Arc<T> {
        let arc = Arc::new(value);
        self.inner
            .broadcasts
            .lock()
            .push(arc.clone() as Arc<dyn std::any::Any + Send + Sync>);
        arc
    }

    /// Make the next `n` task attempts fail with an injected panic. Used by
    /// fault-tolerance tests: the scheduler must retry and jobs must still
    /// produce correct results.
    pub fn inject_task_failures(&self, n: u32) {
        self.inner
            .injected_failures
            .fetch_add(n as i64, Ordering::SeqCst);
    }

    pub(crate) fn next_shuffle_id(&self) -> u64 {
        self.inner.shuffle_ids.fetch_add(1, Ordering::Relaxed)
    }

    fn maybe_injected_failure(&self) {
        let prev = self.inner.injected_failures.fetch_sub(1, Ordering::SeqCst);
        if prev > 0 {
            panic!("sparkline: injected task failure");
        }
        // Undo the decrement if no failure was pending.
        self.inner.injected_failures.fetch_add(1, Ordering::SeqCst);
    }

    /// Run one stage of `n` tasks on the executor pool, retrying failed tasks
    /// up to the configured attempt limit, and return the per-task results in
    /// task order.
    ///
    /// Panics (re-raising the task's panic) if any task exhausts its attempts.
    pub fn run_tasks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        self.inner.metrics.stage_run();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let failure: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let workers = self.inner.workers.min(n);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    if failure.lock().is_some() {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        return;
                    }
                    let mut attempt = 0;
                    loop {
                        self.inner.metrics.task_launched();
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            self.maybe_injected_failure();
                            f(i)
                        }));
                        match out {
                            Ok(v) => {
                                *results[i].lock() = Some(v);
                                break;
                            }
                            Err(cause) => {
                                self.inner.metrics.task_failed();
                                attempt += 1;
                                if attempt >= self.inner.max_task_attempts {
                                    *failure.lock() = Some(cause);
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        })
        .expect("executor scope");
        if let Some(cause) = failure.into_inner() {
            resume_unwind(cause);
        }
        results
            .into_iter()
            .map(|m| m.into_inner().expect("task result missing"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_returns_in_task_order() {
        let ctx = Context::builder().workers(4).build();
        let out = ctx.run_tasks(16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_zero_tasks() {
        let ctx = Context::new();
        let out: Vec<u32> = ctx.run_tasks(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn injected_failures_are_retried() {
        let ctx = Context::builder().workers(2).build();
        ctx.inject_task_failures(3);
        let out = ctx.run_tasks(8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert!(ctx.metrics().snapshot().tasks_failed >= 3);
    }

    #[test]
    #[should_panic(expected = "injected task failure")]
    fn exhausting_attempts_fails_the_job() {
        let ctx = Context::builder().workers(1).max_task_attempts(2).build();
        // More injected failures than total allowed attempts for one task.
        ctx.inject_task_failures(10);
        let _ = ctx.run_tasks(1, |i| i);
    }

    #[test]
    fn broadcast_is_shared() {
        let ctx = Context::new();
        let b = ctx.broadcast(vec![1, 2, 3]);
        let sums = ctx.run_tasks(4, |_| b.iter().sum::<i32>());
        assert_eq!(sums, vec![6; 4]);
    }

    #[test]
    fn stage_counter_increments() {
        let ctx = Context::new();
        let before = ctx.metrics().snapshot().stages_run;
        ctx.run_tasks(2, |i| i);
        ctx.run_tasks(2, |i| i);
        assert_eq!(ctx.metrics().snapshot().stages_run - before, 2);
    }
}
