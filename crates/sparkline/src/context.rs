//! Execution context: configuration, the executor pool, task retry, failure
//! injection, and the structured-event trace.

use crate::events::{Event, EventCollector};
use crate::metrics::Metrics;
use crate::profile::JobProfile;
use crate::storage::{BlockManager, StorageStatus};
use crate::sync::Mutex;
use crate::Data;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Panic message used for scheduler-injected task failures; also how the
/// tracer recognizes an injected failure when the panic is caught.
const INJECTED_FAILURE_MSG: &str = "sparkline: injected task failure";

/// Environment variable overriding the default storage budget (bytes); lets
/// CI run the whole suite under a deliberately tiny budget so eviction paths
/// are exercised on every push. An explicit
/// [`ContextBuilder::storage_memory`] wins over the variable.
pub const STORAGE_BUDGET_ENV: &str = "SPARKLINE_STORAGE_BUDGET";

thread_local! {
    /// Stage whose task is running on this executor thread. Stages nest
    /// (materializing a shuffle dependency runs a child stage from inside a
    /// parent task), but every stage spawns fresh worker threads, so the
    /// thread-local on each worker is exactly the innermost stage.
    static CURRENT_STAGE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Innermost stage running on this thread, if any — how cache events are
/// attributed to stages without threading ids through every operator.
pub(crate) fn current_stage() -> Option<u64> {
    CURRENT_STAGE.with(Cell::get)
}

/// Builder for [`Context`].
pub struct ContextBuilder {
    workers: usize,
    default_parallelism: usize,
    max_task_attempts: u32,
    storage_memory: Option<usize>,
}

impl Default for ContextBuilder {
    fn default() -> Self {
        ContextBuilder {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            default_parallelism: 8,
            max_task_attempts: 4,
            storage_memory: None,
        }
    }
}

impl ContextBuilder {
    /// Number of executor threads used to run tasks.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Default number of partitions for sources and shuffles when the caller
    /// does not specify one.
    pub fn default_parallelism(mut self, n: usize) -> Self {
        self.default_parallelism = n.max(1);
        self
    }

    /// Maximum attempts per task before the job fails (Spark's
    /// `spark.task.maxFailures`).
    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.max_task_attempts = n.max(1);
        self
    }

    /// Memory budget (bytes) for persisted dataset partitions (Spark's
    /// storage memory). Defaults to the `SPARKLINE_STORAGE_BUDGET`
    /// environment variable if set, else unlimited.
    pub fn storage_memory(mut self, bytes: usize) -> Self {
        self.storage_memory = Some(bytes);
        self
    }

    pub fn build(self) -> Context {
        let budget = self
            .storage_memory
            .or_else(|| {
                std::env::var(STORAGE_BUDGET_ENV)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
            })
            .unwrap_or(usize::MAX);
        Context {
            inner: Arc::new(CtxInner {
                workers: self.workers,
                default_parallelism: self.default_parallelism,
                max_task_attempts: self.max_task_attempts,
                metrics: Metrics::default(),
                events: EventCollector::default(),
                storage: BlockManager::new(budget),
                injected_failures: AtomicI64::new(0),
                shuffle_ids: AtomicU64::new(0),
                stage_ids: AtomicU64::new(0),
                job_ids: AtomicU64::new(0),
                dataset_ids: AtomicU64::new(0),
                active_jobs: Mutex::new(Vec::new()),
                plan_tags: Mutex::new(Vec::new()),
                broadcasts: Mutex::new(Vec::new()),
            }),
        }
    }
}

pub(crate) struct CtxInner {
    pub(crate) workers: usize,
    pub(crate) default_parallelism: usize,
    pub(crate) max_task_attempts: u32,
    pub(crate) metrics: Metrics,
    pub(crate) events: EventCollector,
    /// Memory-budgeted store for persisted dataset partitions.
    storage: BlockManager,
    injected_failures: AtomicI64,
    shuffle_ids: AtomicU64,
    stage_ids: AtomicU64,
    job_ids: AtomicU64,
    /// Ids handed to persisted datasets; key blocks in [`BlockManager`].
    dataset_ids: AtomicU64,
    /// Stack of jobs (actions) currently running on the driver; the top one
    /// is charged for stages submitted while it runs.
    active_jobs: Mutex<Vec<u64>>,
    /// Stack of plan-node tags ([`Context::scoped_tag`]); shuffles capture
    /// the top of this stack when their DAG node is *constructed*, which is
    /// when the planner is running (materialization happens later).
    plan_tags: Mutex<Vec<String>>,
    // Broadcast variables are kept alive by the context, like Spark's
    // BlockManager does; they are just Arc'd values here.
    broadcasts: Mutex<Vec<Arc<dyn std::any::Any + Send + Sync>>>,
}

/// Everything a stage reports about itself when tracing is on. Built lazily:
/// untraced runs never pay for the strings.
pub(crate) struct StageMeta {
    pub(crate) label: String,
    pub(crate) tag: Option<String>,
    pub(crate) lineage: Option<String>,
}

impl StageMeta {
    pub(crate) fn action(label: &str, lineage: String) -> StageMeta {
        StageMeta {
            label: format!("action({label})"),
            tag: None,
            lineage: Some(lineage),
        }
    }
}

/// Handle to the runtime: creates datasets, runs stages, owns metrics and
/// the event trace.
///
/// Cheap to clone; all clones share one executor pool, metrics sink and
/// event collector.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<CtxInner>,
}

impl Default for Context {
    fn default() -> Self {
        ContextBuilder::default().build()
    }
}

impl Context {
    /// A context with the default configuration.
    pub fn new() -> Context {
        Context::default()
    }

    /// Start building a customized context.
    pub fn builder() -> ContextBuilder {
        ContextBuilder::default()
    }

    /// Number of executor threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Default partition count for sources and shuffles.
    pub fn default_parallelism(&self) -> usize {
        self.inner.default_parallelism
    }

    /// Runtime metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Start collecting structured runtime events, discarding anything
    /// buffered from an earlier trace window.
    pub fn trace(&self) {
        self.inner.events.drain();
        self.inner.events.set_enabled(true);
    }

    /// Stop collecting events. Buffered events stay available to
    /// [`Context::take_events`] / [`Context::take_profile`].
    pub fn stop_trace(&self) {
        self.inner.events.set_enabled(false);
    }

    /// Is event collection currently enabled?
    pub fn is_tracing(&self) -> bool {
        self.inner.events.is_enabled()
    }

    /// Drain the raw event log collected since [`Context::trace`] (or the
    /// last take). Tracing stays in whatever state it was.
    pub fn take_events(&self) -> Vec<Event> {
        self.inner.events.drain()
    }

    /// Drain the event log and fold it into a queryable [`JobProfile`].
    pub fn take_profile(&self) -> JobProfile {
        JobProfile::from_events(&self.take_events())
    }

    /// Run `f` with `tag` as the current plan-node tag: DAG nodes (shuffles)
    /// constructed inside `f` are attributed to `tag` in traces. Used by the
    /// planner to stamp each stage with the plan node that produced it.
    pub fn scoped_tag<R>(&self, tag: impl Into<String>, f: impl FnOnce() -> R) -> R {
        self.inner.plan_tags.lock().push(tag.into());
        let _guard = PopTag(self);
        f()
    }

    /// Top of the plan-tag stack, captured by shuffle nodes at construction.
    pub(crate) fn current_tag(&self) -> Option<String> {
        self.inner.plan_tags.lock().last().cloned()
    }

    /// Run `f` as a job (one action). Emits `JobStart`/`JobEnd` and charges
    /// stages submitted inside to this job. A no-op wrapper when tracing is
    /// off.
    pub(crate) fn job_scope<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        if !self.inner.events.is_enabled() {
            return f();
        }
        let job_id = self.inner.job_ids.fetch_add(1, Ordering::Relaxed);
        self.inner.events.emit(Event::JobStart {
            job_id,
            label: label.to_string(),
            at_micros: self.inner.events.now_micros(),
        });
        self.inner.active_jobs.lock().push(job_id);
        let _guard = EndJob {
            ctx: self,
            job_id,
            started: Instant::now(),
        };
        f()
    }

    /// The context's event sink (for emission sites elsewhere in the crate).
    pub(crate) fn events(&self) -> &EventCollector {
        &self.inner.events
    }

    fn current_job(&self) -> Option<u64> {
        self.inner.active_jobs.lock().last().copied()
    }

    /// Create a dataset from a local collection, splitting it into
    /// `partitions` roughly equal chunks.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> crate::Dataset<T> {
        crate::Dataset::from_vec(self.clone(), data, partitions.max(1))
    }

    /// [`Context::parallelize`] with the default parallelism.
    pub fn parallelize_default<T: Data>(&self, data: Vec<T>) -> crate::Dataset<T> {
        self.parallelize(data, self.inner.default_parallelism)
    }

    /// Register a broadcast value: a read-only value shared by all tasks.
    pub fn broadcast<T: Send + Sync + 'static>(&self, value: T) -> Arc<T> {
        let arc = Arc::new(value);
        self.inner
            .broadcasts
            .lock()
            .push(arc.clone() as Arc<dyn std::any::Any + Send + Sync>);
        arc
    }

    /// Make the next `n` task attempts fail with an injected panic. Used by
    /// fault-tolerance tests: the scheduler must retry and jobs must still
    /// produce correct results.
    ///
    /// The counter is shared by every job on this context. Tests that run
    /// concurrent jobs (or might leave failures unconsumed) should prefer
    /// [`Context::inject_task_failures_scoped`], whose guard returns unspent
    /// failures on drop instead of leaking them into later jobs.
    pub fn inject_task_failures(&self, n: u32) {
        self.inner
            .injected_failures
            .fetch_add(n as i64, Ordering::SeqCst);
    }

    /// [`Context::inject_task_failures`] bounded to a scope: the returned
    /// guard removes up to `n` still-pending failures when dropped, so a
    /// test that didn't run enough tasks to consume its injections can't
    /// starve or fail an unrelated job later on the same context.
    ///
    /// Attribution is approximate under concurrency — the counter can't tell
    /// *whose* injection a task consumed — but the invariant tests need
    /// holds: after the guard drops, at most as many failures remain pending
    /// as other scopes injected.
    pub fn inject_task_failures_scoped(&self, n: u32) -> InjectedFailuresGuard {
        self.inject_task_failures(n);
        InjectedFailuresGuard {
            ctx: self.clone(),
            injected: n as i64,
        }
    }

    /// Injected failures not yet consumed by a task.
    pub fn pending_injected_failures(&self) -> u32 {
        self.inner.injected_failures.load(Ordering::SeqCst).max(0) as u32
    }

    /// The block manager holding persisted dataset partitions.
    pub fn storage(&self) -> &BlockManager {
        &self.inner.storage
    }

    /// Current storage accounting (budget, resident bytes, evictions...).
    pub fn storage_status(&self) -> StorageStatus {
        self.inner.storage.status()
    }

    pub(crate) fn next_dataset_id(&self) -> u64 {
        self.inner.dataset_ids.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_shuffle_id(&self) -> u64 {
        self.inner.shuffle_ids.fetch_add(1, Ordering::Relaxed)
    }

    fn maybe_injected_failure(&self) {
        // Claim one pending failure atomically. A plain fetch_sub +
        // compensating fetch_add lets two concurrent tasks both observe a
        // non-positive counter and double-restore it; the CAS loop only ever
        // decrements a positive counter.
        let claimed = self.inner.injected_failures.fetch_update(
            Ordering::SeqCst,
            Ordering::SeqCst,
            |pending| (pending > 0).then(|| pending - 1),
        );
        if claimed.is_ok() {
            panic!("{INJECTED_FAILURE_MSG}");
        }
    }

    /// Run one stage of `n` tasks on the executor pool, retrying failed tasks
    /// up to the configured attempt limit, and return the per-task results in
    /// task order.
    ///
    /// Panics (re-raising the task's panic) if any task exhausts its attempts.
    pub fn run_tasks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        self.run_stage(
            n,
            || StageMeta {
                label: "stage".to_string(),
                tag: None,
                lineage: None,
            },
            f,
        )
        .0
    }

    /// [`Context::run_tasks`] with stage metadata for the event trace.
    /// Returns the results and the stage id (so callers can attribute
    /// further per-task facts, e.g. shuffle write sizes, to the stage).
    pub(crate) fn run_stage<R, F, M>(&self, n: usize, meta: M, f: F) -> (Vec<R>, u64)
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
        M: FnOnce() -> StageMeta,
    {
        let stage_id = self.inner.stage_ids.fetch_add(1, Ordering::Relaxed);
        if n == 0 {
            return (Vec::new(), stage_id);
        }
        self.inner.metrics.stage_run();
        let tracing = self.inner.events.is_enabled();
        if tracing {
            let meta = meta();
            self.inner.events.emit(Event::StageStart {
                stage_id,
                job_id: self.current_job(),
                label: meta.label,
                tag: meta.tag,
                lineage: meta.lineage,
                tasks: n,
                at_micros: self.inner.events.now_micros(),
            });
        }
        let stage_started = Instant::now();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let failure: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let workers = self.inner.workers.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Fresh thread per stage, so this is the innermost stage
                    // even when stages nest (see [`current_stage`]).
                    CURRENT_STAGE.with(|c| c.set(Some(stage_id)));
                    loop {
                        if failure.lock().is_some() {
                            return;
                        }
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            return;
                        }
                        let mut attempt = 0;
                        loop {
                            self.inner.metrics.task_launched();
                            let task_started = tracing.then(Instant::now);
                            let out = catch_unwind(AssertUnwindSafe(|| {
                                self.maybe_injected_failure();
                                f(i)
                            }));
                            let task_micros =
                                task_started.map_or(0, |t| t.elapsed().as_micros() as u64);
                            match out {
                                Ok(v) => {
                                    if tracing {
                                        self.inner.events.emit(Event::TaskEnd {
                                            stage_id,
                                            task: i,
                                            attempt,
                                            wall_micros: task_micros,
                                            ok: true,
                                            injected: false,
                                        });
                                    }
                                    *results[i].lock() = Some(v);
                                    break;
                                }
                                Err(cause) => {
                                    self.inner.metrics.task_failed();
                                    if tracing {
                                        self.inner.events.emit(Event::TaskEnd {
                                            stage_id,
                                            task: i,
                                            attempt,
                                            wall_micros: task_micros,
                                            ok: false,
                                            injected: panic_is_injected(&cause),
                                        });
                                    }
                                    attempt += 1;
                                    if attempt >= self.inner.max_task_attempts {
                                        *failure.lock() = Some(cause);
                                        return;
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        if tracing {
            self.inner.events.emit(Event::StageEnd {
                stage_id,
                wall_micros: stage_started.elapsed().as_micros() as u64,
            });
        }
        if let Some(cause) = failure.into_inner() {
            resume_unwind(cause);
        }
        let out = results
            .into_iter()
            .map(|m| m.into_inner().expect("task result missing"))
            .collect();
        (out, stage_id)
    }
}

/// True if a caught panic payload is the scheduler's injected failure.
fn panic_is_injected(cause: &Box<dyn std::any::Any + Send>) -> bool {
    cause
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == INJECTED_FAILURE_MSG)
        || cause
            .downcast_ref::<String>()
            .is_some_and(|s| s == INJECTED_FAILURE_MSG)
}

/// Guard returned by [`Context::inject_task_failures_scoped`]. Dropping it
/// removes up to the scope's injection count from the pending counter
/// (clamped at zero), so unconsumed failures don't leak out of the scope.
pub struct InjectedFailuresGuard {
    ctx: Context,
    injected: i64,
}

impl Drop for InjectedFailuresGuard {
    fn drop(&mut self) {
        let n = self.injected;
        // Clamped CAS: never remove more than is pending (another scope's
        // injections must survive), never go negative.
        let _ = self.ctx.inner.injected_failures.fetch_update(
            Ordering::SeqCst,
            Ordering::SeqCst,
            |pending| Some(pending - n.min(pending).max(0)),
        );
    }
}

struct PopTag<'a>(&'a Context);

impl Drop for PopTag<'_> {
    fn drop(&mut self) {
        self.0.inner.plan_tags.lock().pop();
    }
}

struct EndJob<'a> {
    ctx: &'a Context,
    job_id: u64,
    started: Instant,
}

impl Drop for EndJob<'_> {
    fn drop(&mut self) {
        let mut jobs = self.ctx.inner.active_jobs.lock();
        if let Some(pos) = jobs.iter().rposition(|&j| j == self.job_id) {
            jobs.remove(pos);
        }
        drop(jobs);
        self.ctx.inner.events.emit(Event::JobEnd {
            job_id: self.job_id,
            wall_micros: self.started.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_returns_in_task_order() {
        let ctx = Context::builder().workers(4).build();
        let out = ctx.run_tasks(16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_zero_tasks() {
        let ctx = Context::new();
        let out: Vec<u32> = ctx.run_tasks(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn injected_failures_are_retried() {
        let ctx = Context::builder().workers(2).build();
        ctx.inject_task_failures(3);
        let out = ctx.run_tasks(8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert!(ctx.metrics().snapshot().tasks_failed >= 3);
    }

    #[test]
    fn injected_failure_counter_is_exact_under_concurrency() {
        // The fetch_update claim never lets concurrent tasks double-consume
        // or resurrect injected failures: with N injected and plenty of
        // tasks, exactly N fail.
        // One task may claim several injected failures back-to-back, so give
        // it headroom to retry past all of them.
        let ctx = Context::builder().workers(8).max_task_attempts(16).build();
        ctx.inject_task_failures(5);
        let _ = ctx.run_tasks(64, |i| i);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, 5);
        // Counter is spent: later stages see no failures.
        let before = ctx.metrics().snapshot().tasks_failed;
        let _ = ctx.run_tasks(64, |i| i);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, before);
    }

    #[test]
    #[should_panic(expected = "injected task failure")]
    fn exhausting_attempts_fails_the_job() {
        let ctx = Context::builder().workers(1).max_task_attempts(2).build();
        // More injected failures than total allowed attempts for one task.
        ctx.inject_task_failures(10);
        let _ = ctx.run_tasks(1, |i| i);
    }

    #[test]
    fn scoped_injection_guard_returns_unspent_failures() {
        let ctx = Context::builder().workers(1).build();
        {
            let _g = ctx.inject_task_failures_scoped(10);
            assert_eq!(ctx.pending_injected_failures(), 10);
        }
        assert_eq!(ctx.pending_injected_failures(), 0);
        let before = ctx.metrics().snapshot().tasks_failed;
        ctx.run_tasks(4, |i| i);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, before);
    }

    #[test]
    fn scoped_injection_guard_preserves_other_scopes() {
        let ctx = Context::new();
        ctx.inject_task_failures(3);
        {
            let _g = ctx.inject_task_failures_scoped(5);
            assert_eq!(ctx.pending_injected_failures(), 8);
        }
        // Only this scope's 5 are returned; the unscoped 3 survive.
        assert_eq!(ctx.pending_injected_failures(), 3);
    }

    #[test]
    fn scoped_injection_failures_are_consumed_inside_scope() {
        let ctx = Context::builder().workers(2).build();
        {
            let _g = ctx.inject_task_failures_scoped(2);
            let out = ctx.run_tasks(8, |i| i + 1);
            assert_eq!(out, (1..=8).collect::<Vec<_>>());
            assert!(ctx.metrics().snapshot().tasks_failed >= 2);
        }
        assert_eq!(ctx.pending_injected_failures(), 0);
    }

    #[test]
    fn storage_budget_knob_is_visible_in_status() {
        let ctx = Context::builder().storage_memory(4096).build();
        assert_eq!(ctx.storage_status().budget, Some(4096));
        assert_eq!(ctx.storage_status().memory_used, 0);
    }

    #[test]
    fn current_stage_tracks_innermost_stage() {
        let ctx = Context::builder().workers(2).build();
        assert_eq!(current_stage(), None, "driver thread runs outside stages");
        let stages = ctx.run_tasks(2, |_| {
            let outer = current_stage().expect("task must see its stage");
            let inner = ctx.run_tasks(1, |_| current_stage().expect("nested stage"));
            assert_ne!(inner[0], outer, "nested stage must shadow the outer");
            assert_eq!(current_stage(), Some(outer), "outer survives nesting");
            outer
        });
        assert_eq!(stages.len(), 2);
        assert_eq!(current_stage(), None);
    }

    #[test]
    fn broadcast_is_shared() {
        let ctx = Context::new();
        let b = ctx.broadcast(vec![1, 2, 3]);
        let sums = ctx.run_tasks(4, |_| b.iter().sum::<i32>());
        assert_eq!(sums, vec![6; 4]);
    }

    #[test]
    fn stage_counter_increments() {
        let ctx = Context::new();
        let before = ctx.metrics().snapshot().stages_run;
        ctx.run_tasks(2, |i| i);
        ctx.run_tasks(2, |i| i);
        assert_eq!(ctx.metrics().snapshot().stages_run - before, 2);
    }

    #[test]
    fn untraced_contexts_collect_nothing() {
        let ctx = Context::new();
        ctx.run_tasks(4, |i| i);
        assert!(ctx.take_events().is_empty());
    }

    #[test]
    fn traced_stage_emits_start_tasks_end() {
        use crate::events::Event;
        let ctx = Context::builder().workers(2).build();
        ctx.trace();
        ctx.run_tasks(3, |i| i);
        let events = ctx.take_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::StageStart { .. }))
            .count();
        let tasks = events
            .iter()
            .filter(|e| matches!(e, Event::TaskEnd { ok: true, .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::StageEnd { .. }))
            .count();
        assert_eq!((starts, tasks, ends), (1, 3, 1));
    }

    #[test]
    fn traced_retries_mark_injected_failures() {
        let ctx = Context::builder().workers(1).build();
        ctx.trace();
        ctx.inject_task_failures(2);
        ctx.run_tasks(4, |i| i);
        let profile = ctx.take_profile();
        assert_eq!(profile.total_failed_attempts(), 2);
        assert_eq!(
            profile
                .stages
                .iter()
                .map(|s| s.injected_failures)
                .sum::<u32>(),
            2
        );
    }

    #[test]
    fn scoped_tag_nests_and_restores() {
        let ctx = Context::new();
        assert_eq!(ctx.current_tag(), None);
        ctx.scoped_tag("outer", || {
            assert_eq!(ctx.current_tag().as_deref(), Some("outer"));
            ctx.scoped_tag("inner", || {
                assert_eq!(ctx.current_tag().as_deref(), Some("inner"));
            });
            assert_eq!(ctx.current_tag().as_deref(), Some("outer"));
        });
        assert_eq!(ctx.current_tag(), None);
    }

    #[test]
    fn job_scope_brackets_stages() {
        let ctx = Context::builder().workers(2).build();
        ctx.trace();
        ctx.job_scope("collect", || ctx.run_tasks(2, |i| i));
        let profile = ctx.take_profile();
        assert_eq!(profile.jobs.len(), 1);
        assert_eq!(profile.jobs[0].label, "collect");
        assert_eq!(profile.jobs[0].stage_ids.len(), 1);
    }
}
