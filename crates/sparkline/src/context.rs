//! Execution context: configuration, the executor pool, task retry, failure
//! injection, and the structured-event trace.

use crate::chaos::{ChaosController, ChaosPlan, WireFault, CHAOS_ENV};
use crate::events::{Event, EventCollector};
use crate::metrics::Metrics;
use crate::profile::JobProfile;
use crate::service::{panic_is_cancelled, CancelToken, CANCELLED_MSG};
use crate::shuffle::{BackoffPolicy, MapOutputTracker};
use crate::storage::{BlockManager, StorageStatus};
use crate::sync::Mutex;
use crate::transport::{WorkerConfig, WorkerGroup};
use crate::Data;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Panic message used for scheduler-injected task failures; also how the
/// tracer recognizes an injected failure when the panic is caught.
const INJECTED_FAILURE_MSG: &str = "sparkline: injected task failure";

/// Environment variable overriding the default storage budget (bytes); lets
/// CI run the whole suite under a deliberately tiny budget so eviction paths
/// are exercised on every push. An explicit
/// [`ContextBuilder::storage_memory`] wins over the variable.
pub const STORAGE_BUDGET_ENV: &str = "SPARKLINE_STORAGE_BUDGET";

/// Environment variable setting the number of shuffle data-plane worker
/// processes; lets CI run the whole chaos suite in multi-process mode
/// without editing every test. An explicit
/// [`ContextBuilder::worker_processes`] wins over the variable. `0` (or
/// unset) keeps the in-process shuffle path.
pub const WORKER_PROCS_ENV: &str = "SPARKLINE_WORKER_PROCS";

/// Environment variable toggling the external shuffle service in
/// multi-process mode (`0`/`false` disables it, forcing recovery through
/// partial stage resubmission). An explicit
/// [`ContextBuilder::external_shuffle`] wins over the variable.
pub const EXTERNAL_SHUFFLE_ENV: &str = "SPARKLINE_EXTERNAL_SHUFFLE";

/// Uniquifies external-shuffle directories created by contexts inside one
/// driver process ([`Context::external_shuffle_path`] base dirs).
static EXTERNAL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Strikes (kills/restarts) after which an executor is blacklisted — no
/// longer assigned worker threads — unless it is the last healthy one.
const BLACKLIST_STRIKES: u32 = 3;

/// Floor for the speculation threshold: stages whose median task is faster
/// than this never speculate (duplicating micro-tasks only burns work).
const SPECULATION_FLOOR_MICROS: u64 = 1_000;

thread_local! {
    /// Stage whose task is running on this executor thread. Stages nest
    /// (materializing a shuffle dependency runs a child stage from inside a
    /// parent task), but every stage spawns fresh worker threads, so the
    /// thread-local on each worker is exactly the innermost stage.
    static CURRENT_STAGE: Cell<Option<u64>> = const { Cell::new(None) };
    /// Logical executor this worker thread belongs to. Shuffle map outputs
    /// and cached blocks produced on the thread are owned by this executor's
    /// fault domain and are lost when it is killed.
    static CURRENT_EXECUTOR: Cell<Option<usize>> = const { Cell::new(None) };
    /// Tenant whose job is running on this thread (service-assigned id).
    /// Set on the driver by [`Context::scoped_tenant`] and re-installed on
    /// every stage worker thread, so blocks cached anywhere inside the job
    /// are charged to the tenant's storage quota.
    static CURRENT_TENANT: Cell<Option<u32>> = const { Cell::new(None) };
    /// Cancellation token of the job running on this thread, if any. Same
    /// propagation as [`CURRENT_TENANT`]: installed by
    /// [`Context::scoped_cancel`] on the driver, inherited by stage workers,
    /// checked before every task claim.
    static CURRENT_CANCEL: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Innermost stage running on this thread, if any — how cache events are
/// attributed to stages without threading ids through every operator.
pub(crate) fn current_stage() -> Option<u64> {
    CURRENT_STAGE.with(Cell::get)
}

/// Logical executor owning this thread, if it is a stage worker. Driver
/// threads return `None`: state they produce belongs to no fault domain and
/// survives every kill.
pub(crate) fn current_executor() -> Option<usize> {
    CURRENT_EXECUTOR.with(Cell::get)
}

/// Tenant owning the job on this thread, if any — how cached blocks are
/// attributed to tenant quotas without threading ids through operators.
pub(crate) fn current_tenant() -> Option<u32> {
    CURRENT_TENANT.with(Cell::get)
}

/// Cancellation token of the job on this thread, if any.
pub(crate) fn current_cancel() -> Option<CancelToken> {
    CURRENT_CANCEL.with(|c| c.borrow().clone())
}

/// Restores the previous thread-local tenant on drop (panic-safe: a job
/// unwinding through `scoped_tenant` must not leak its id to later work on
/// the driver thread).
struct RestoreTenant(Option<u32>);

impl Drop for RestoreTenant {
    fn drop(&mut self) {
        CURRENT_TENANT.with(|c| c.set(self.0));
    }
}

/// Restores the previous thread-local cancel token on drop.
struct RestoreCancel(Option<CancelToken>);

impl Drop for RestoreCancel {
    fn drop(&mut self) {
        CURRENT_CANCEL.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Where a context's chaos schedule comes from.
enum ChaosChoice {
    /// Nothing set explicitly: honor [`CHAOS_ENV`] at build time.
    Inherit,
    /// Chaos disabled even if [`CHAOS_ENV`] is set — for tests that pin
    /// exact fault-free counts.
    Off,
    /// An explicit schedule; beats the environment.
    Plan(ChaosPlan),
}

/// Builder for [`Context`].
pub struct ContextBuilder {
    workers: usize,
    executors: Option<usize>,
    default_parallelism: usize,
    max_task_attempts: u32,
    max_stage_attempts: u32,
    storage_memory: Option<usize>,
    speculation: Option<f64>,
    chaos: ChaosChoice,
    worker_processes: Option<usize>,
    external_shuffle: Option<bool>,
    resubmit_backoff: BackoffPolicy,
    fetch_backoff: BackoffPolicy,
    fetch_retries: u32,
}

impl Default for ContextBuilder {
    fn default() -> Self {
        ContextBuilder {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            executors: None,
            default_parallelism: 8,
            max_task_attempts: 4,
            max_stage_attempts: 6,
            storage_memory: None,
            speculation: None,
            chaos: ChaosChoice::Inherit,
            worker_processes: None,
            external_shuffle: None,
            resubmit_backoff: BackoffPolicy::default(),
            // Fetch retries are cheap loopback round-trips; back off hard
            // enough to ride out a worker respawn, but stay well under the
            // cost of resubmitting the map stage.
            fetch_backoff: BackoffPolicy {
                base: Duration::from_micros(100),
                multiplier: 2.0,
                cap: Duration::from_millis(5),
                jitter: 0.25,
            },
            fetch_retries: 3,
        }
    }
}

impl ContextBuilder {
    /// Number of executor threads used to run tasks.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Number of logical executors (fault domains) the worker threads are
    /// partitioned into. Each executor owns the shuffle map outputs and
    /// cached blocks produced on its threads; killing it loses that state.
    /// Defaults to one executor per worker thread.
    pub fn executors(mut self, n: usize) -> Self {
        self.executors = Some(n.max(1));
        self
    }

    /// Default number of partitions for sources and shuffles when the caller
    /// does not specify one.
    pub fn default_parallelism(mut self, n: usize) -> Self {
        self.default_parallelism = n.max(1);
        self
    }

    /// Maximum attempts per task before the job fails (Spark's
    /// `spark.task.maxFailures`). Must be at least 1; [`build`] panics on 0
    /// rather than configuring a scheduler that can never run a task.
    ///
    /// [`build`]: ContextBuilder::build
    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.max_task_attempts = n;
        self
    }

    /// Maximum times a shuffle map stage may be attempted — the first run
    /// plus resubmissions after executor loss or fetch failures (Spark's
    /// `spark.stage.maxConsecutiveAttempts`). Must be at least 1; [`build`]
    /// panics on 0.
    ///
    /// [`build`]: ContextBuilder::build
    pub fn max_stage_attempts(mut self, n: u32) -> Self {
        self.max_stage_attempts = n;
        self
    }

    /// Memory budget (bytes) for persisted dataset partitions (Spark's
    /// storage memory). Defaults to the `SPARKLINE_STORAGE_BUDGET`
    /// environment variable if set, else unlimited.
    pub fn storage_memory(mut self, bytes: usize) -> Self {
        self.storage_memory = Some(bytes);
        self
    }

    /// Enable speculative execution: once half a stage's tasks have finished,
    /// a task still running after `multiplier` × the median completed-task
    /// time gets a duplicate attempt on a *different* executor; the first
    /// result wins (Spark's `spark.speculation[.multiplier]`). Off by
    /// default.
    pub fn speculation(mut self, multiplier: f64) -> Self {
        self.speculation = Some(multiplier.max(1.0));
        self
    }

    /// Number of shuffle data-plane worker processes. `0` (the default)
    /// keeps shuffle map outputs in-process; with `n > 0` every map output
    /// is serialized to a wire frame and PUT to worker process
    /// `executor % n` over a framed loopback socket, so `kill -9` on a
    /// worker genuinely loses bytes and recovery has to run through the
    /// epoch/fetch-failure machinery. Beats [`WORKER_PROCS_ENV`].
    pub fn worker_processes(mut self, n: usize) -> Self {
        self.worker_processes = Some(n);
        self
    }

    /// In multi-process mode, also park every map-output frame in a
    /// driver-visible spool directory (an external shuffle service): reduce
    /// tasks that exhaust fetch retries against a dead worker fall back to
    /// the spool and the stage completes with **zero** resubmissions. On by
    /// default in multi-process mode; disable to force recovery through
    /// partial stage resubmission. Beats [`EXTERNAL_SHUFFLE_ENV`]. No effect
    /// in local mode.
    pub fn external_shuffle(mut self, on: bool) -> Self {
        self.external_shuffle = Some(on);
        self
    }

    /// Backoff schedule between attempts of a resubmitted shuffle map stage
    /// (after a fetch failure). The default reproduces the historical
    /// 200µs-doubling-to-10ms schedule with no jitter.
    pub fn resubmit_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.resubmit_backoff = policy;
        self
    }

    /// Backoff schedule between retries of a single shuffle fetch against a
    /// worker process, before the fetch is declared failed.
    pub fn fetch_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.fetch_backoff = policy;
        self
    }

    /// Retries per shuffle fetch (beyond the first attempt) before the
    /// fetch escalates to `FetchFailed` handling.
    pub fn fetch_retries(mut self, n: u32) -> Self {
        self.fetch_retries = n;
        self
    }

    /// Run this context under an explicit chaos schedule. Beats [`CHAOS_ENV`].
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = ChaosChoice::Plan(plan);
        self
    }

    /// Disable chaos for this context even when [`CHAOS_ENV`] is set. For
    /// tests that pin exact fault-free counts (task totals, cache misses)
    /// that any injected fault would legitimately change.
    pub fn chaos_off(mut self) -> Self {
        self.chaos = ChaosChoice::Off;
        self
    }

    pub fn build(self) -> Context {
        assert!(
            self.max_task_attempts >= 1,
            "sparkline: max_task_attempts must be >= 1 (a task needs at least one attempt)"
        );
        assert!(
            self.max_stage_attempts >= 1,
            "sparkline: max_stage_attempts must be >= 1 (a stage needs at least one attempt)"
        );
        let budget = self
            .storage_memory
            .or_else(|| {
                std::env::var(STORAGE_BUDGET_ENV)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
            })
            .unwrap_or(usize::MAX);
        let executors = self.executors.unwrap_or(self.workers).max(1);
        let chaos = match self.chaos {
            ChaosChoice::Off => None,
            ChaosChoice::Plan(plan) => Some(plan),
            ChaosChoice::Inherit => std::env::var(CHAOS_ENV)
                .ok()
                .and_then(|s| ChaosPlan::from_env(&s, executors)),
        }
        .filter(|plan| !plan.is_empty())
        .map(ChaosController::new);
        let worker_processes = self
            .worker_processes
            .or_else(|| {
                std::env::var(WORKER_PROCS_ENV)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
            })
            .unwrap_or(0);
        let worker_group = (worker_processes > 0).then(|| {
            WorkerGroup::spawn(worker_processes, WorkerConfig::default())
                .expect("sparkline: failed to spawn shuffle worker processes")
        });
        let external_on = self.external_shuffle.or_else(|| {
            std::env::var(EXTERNAL_SHUFFLE_ENV)
                .ok()
                .map(|s| !matches!(s.trim(), "0" | "false" | "off"))
        });
        let external_dir = worker_group
            .is_some()
            .then(|| external_on.unwrap_or(true))
            .filter(|&on| on)
            .map(|_| {
                let dir = std::env::temp_dir().join(format!(
                    "sparkline-shuffle-{}-{}",
                    std::process::id(),
                    EXTERNAL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir)
                    .expect("sparkline: failed to create external shuffle dir");
                dir
            });
        let ctx = Context {
            inner: Arc::new(CtxInner {
                workers: self.workers,
                default_parallelism: self.default_parallelism,
                max_task_attempts: self.max_task_attempts,
                max_stage_attempts: self.max_stage_attempts,
                speculation: self.speculation,
                executors: (0..executors).map(|_| ExecutorSlot::default()).collect(),
                blacklist_decision: Mutex::new(()),
                chaos,
                worker_group,
                external_dir,
                resubmit_backoff: self.resubmit_backoff,
                fetch_backoff: self.fetch_backoff,
                fetch_retries: self.fetch_retries,
                map_outputs: MapOutputTracker::default(),
                metrics: Metrics::default(),
                events: EventCollector::default(),
                storage: BlockManager::new(budget),
                injected_failures: AtomicI64::new(0),
                shuffle_ids: AtomicU64::new(0),
                stage_ids: AtomicU64::new(0),
                job_ids: AtomicU64::new(0),
                dataset_ids: AtomicU64::new(0),
                active_jobs: Mutex::new(Vec::new()),
                plan_tags: Mutex::new(Vec::new()),
                broadcasts: Mutex::new(Vec::new()),
            }),
        };
        // Supervision wiring: when the heartbeat declares a worker dead
        // (deadline blown) and respawns it, the context must sweep the
        // executors whose shuffle state lived in that process. Weak, so the
        // worker group's heartbeat thread never keeps a dropped context
        // alive.
        if let Some(group) = ctx.inner.worker_group.clone() {
            let weak = Arc::downgrade(&ctx.inner);
            group.set_on_worker_lost(move |worker| {
                if let Some(inner) = weak.upgrade() {
                    Context { inner }.on_worker_lost(worker);
                }
            });
        }
        ctx
    }
}

/// One logical executor: a restartable fault domain. Killing it bumps the
/// epoch (in-flight results from older epochs are discarded) and sweeps the
/// state it owned; the slot then keeps running as its own replacement, the
/// way a supervisor would restart a crashed worker process.
#[derive(Default)]
pub(crate) struct ExecutorSlot {
    /// Incremented on every kill. A task result is only accepted if the
    /// executor's epoch is unchanged since the task launched.
    epoch: AtomicU64,
    /// Lifetime kill count; drives blacklisting.
    strikes: AtomicU32,
    /// Blacklisted executors get no worker threads in new stages.
    blacklisted: AtomicBool,
}

/// Point-in-time health of one executor, from [`Context::executor_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorStatus {
    pub executor: usize,
    /// Times this executor has been killed and restarted.
    pub restarts: u64,
    pub blacklisted: bool,
}

pub(crate) struct CtxInner {
    pub(crate) workers: usize,
    pub(crate) default_parallelism: usize,
    pub(crate) max_task_attempts: u32,
    pub(crate) max_stage_attempts: u32,
    /// Speculation multiplier over the median completed-task time; `None`
    /// disables speculative execution.
    speculation: Option<f64>,
    /// The logical executor pool tasks are scheduled onto.
    executors: Vec<ExecutorSlot>,
    /// Serializes blacklist decisions so concurrent kills can't blacklist
    /// every executor at once (at least one must stay schedulable).
    blacklist_decision: Mutex<()>,
    /// Deterministic fault injector; `None` when chaos is off.
    chaos: Option<ChaosController>,
    /// Shuffle data-plane worker processes; `None` in local mode. Executor
    /// `e`'s map outputs live in worker `e % n`.
    worker_group: Option<Arc<WorkerGroup>>,
    /// Base directory of the external shuffle service spool; `None` when the
    /// service is disabled or in local mode. Removed on context drop.
    external_dir: Option<PathBuf>,
    /// Backoff between attempts of a resubmitted shuffle map stage.
    resubmit_backoff: BackoffPolicy,
    /// Backoff between retries of one shuffle fetch.
    fetch_backoff: BackoffPolicy,
    /// Fetch retries (beyond the first attempt) before `FetchFailed`.
    fetch_retries: u32,
    /// Which executor owns each shuffle map output, and at which epoch.
    pub(crate) map_outputs: MapOutputTracker,
    pub(crate) metrics: Metrics,
    pub(crate) events: EventCollector,
    /// Memory-budgeted store for persisted dataset partitions.
    storage: BlockManager,
    injected_failures: AtomicI64,
    shuffle_ids: AtomicU64,
    stage_ids: AtomicU64,
    job_ids: AtomicU64,
    /// Ids handed to persisted datasets; key blocks in [`BlockManager`].
    dataset_ids: AtomicU64,
    /// Stack of jobs (actions) currently running on the driver; the top one
    /// is charged for stages submitted while it runs.
    active_jobs: Mutex<Vec<u64>>,
    /// Stack of plan-node tags ([`Context::scoped_tag`]); shuffles capture
    /// the top of this stack when their DAG node is *constructed*, which is
    /// when the planner is running (materialization happens later).
    plan_tags: Mutex<Vec<String>>,
    // Broadcast variables are kept alive by the context, like Spark's
    // BlockManager does; they are just Arc'd values here.
    broadcasts: Mutex<Vec<Arc<dyn std::any::Any + Send + Sync>>>,
}

impl Drop for CtxInner {
    fn drop(&mut self) {
        // The external shuffle spool outlives individual shuffles (that is
        // its whole point) but not the driver.
        if let Some(dir) = &self.external_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Everything a stage reports about itself when tracing is on. Built lazily:
/// untraced runs never pay for the strings.
pub(crate) struct StageMeta {
    pub(crate) label: String,
    pub(crate) tag: Option<String>,
    pub(crate) lineage: Option<String>,
}

impl StageMeta {
    pub(crate) fn action(label: &str, lineage: String) -> StageMeta {
        StageMeta {
            label: format!("action({label})"),
            tag: None,
            lineage: Some(lineage),
        }
    }
}

/// Handle to the runtime: creates datasets, runs stages, owns metrics and
/// the event trace.
///
/// Cheap to clone; all clones share one executor pool, metrics sink and
/// event collector.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<CtxInner>,
}

impl Default for Context {
    fn default() -> Self {
        ContextBuilder::default().build()
    }
}

impl Context {
    /// A context with the default configuration.
    pub fn new() -> Context {
        Context::default()
    }

    /// Start building a customized context.
    pub fn builder() -> ContextBuilder {
        ContextBuilder::default()
    }

    /// Number of executor threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Number of logical executors (fault domains).
    pub fn executors(&self) -> usize {
        self.inner.executors.len()
    }

    /// Health of every executor: restart counts and blacklist state.
    pub fn executor_status(&self) -> Vec<ExecutorStatus> {
        self.inner
            .executors
            .iter()
            .enumerate()
            .map(|(executor, slot)| ExecutorStatus {
                executor,
                restarts: slot.epoch.load(Ordering::SeqCst),
                blacklisted: slot.blacklisted.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Kill one logical executor, as a chaos schedule (or a test) would:
    /// its shuffle map outputs and cached blocks are lost, results of tasks
    /// currently running on it are discarded when they complete, and the
    /// executor immediately restarts empty. Returns false for an unknown
    /// executor id.
    ///
    /// Repeated kills accrue strikes; after [`BLACKLIST_STRIKES`] the
    /// executor is blacklisted (no longer assigned worker threads) unless it
    /// is the last healthy one.
    ///
    /// In multi-process mode an executor's shuffle state lives inside a
    /// worker process's fault domain, so killing the executor promotes to
    /// `kill -9` on the hosting process — which also takes down every other
    /// executor resident in it, exactly as losing a real machine would.
    pub fn kill_executor(&self, executor: usize) -> bool {
        if let Some(group) = &self.inner.worker_group {
            if executor >= self.inner.executors.len() {
                return false;
            }
            return self.kill_worker(executor % group.len());
        }
        self.kill_executor_inner(executor)
    }

    /// `kill -9` one shuffle worker process: the map-output frames it hosted
    /// are gone for real, every executor mapped onto it is swept
    /// (epoch-bumped, blocks and tracker entries dropped), and a fresh empty
    /// process is respawned in the slot. Returns false for an unknown worker
    /// or in local mode.
    pub fn kill_worker(&self, worker: usize) -> bool {
        let Some(group) = self.inner.worker_group.clone() else {
            return false;
        };
        if worker >= group.len() {
            return false;
        }
        group.kill9(worker);
        self.on_worker_lost(worker);
        true
    }

    /// Sweep the driver-side state of a worker process that just died (or
    /// was declared dead by the heartbeat): bump the epoch of every executor
    /// hosted there and emit one `WorkerLost` event. Runs on whichever
    /// thread noticed the death — a map task whose PUT failed, the heartbeat
    /// thread, or [`Context::kill_worker`] itself.
    pub(crate) fn on_worker_lost(&self, worker: usize) {
        let Some(group) = &self.inner.worker_group else {
            return;
        };
        let hosts = group.len();
        let mut swept = 0u64;
        for executor in 0..self.inner.executors.len() {
            if executor % hosts == worker {
                self.kill_executor_inner(executor);
                swept += 1;
            }
        }
        if self.inner.events.is_enabled() {
            self.inner.events.emit(Event::WorkerLost {
                worker,
                executors: swept,
                at_micros: self.inner.events.now_micros(),
            });
        }
    }

    /// A map task failed to PUT its output to `worker` (connection refused,
    /// timeout): treat the process as dead — kill it for certain, respawn
    /// it, and sweep its executors so the in-flight tasks that stored there
    /// are discarded and requeued by the epoch gate.
    pub(crate) fn handle_worker_failure(&self, worker: usize) {
        let _ = self.kill_worker(worker);
    }

    /// Kill one logical executor without promoting to a process kill; the
    /// shared implementation behind [`Context::kill_executor`] (local mode)
    /// and the per-executor sweep of [`Context::on_worker_lost`]
    /// (multi-process mode, where the process is already dead).
    fn kill_executor_inner(&self, executor: usize) -> bool {
        let Some(slot) = self.inner.executors.get(executor) else {
            return false;
        };
        // Epoch first: anything the dead executor still manages to finish is
        // now stale and will be discarded at the result gate.
        let dead_epoch = slot.epoch.fetch_add(1, Ordering::SeqCst);
        let lost_blocks = self.inner.storage.remove_executor(executor);
        let lost_map_outputs = self.inner.map_outputs.remove_executor(executor, dead_epoch);
        let strikes = slot.strikes.fetch_add(1, Ordering::SeqCst) + 1;
        if strikes >= BLACKLIST_STRIKES {
            let _serialized = self.inner.blacklist_decision.lock();
            let healthy = self
                .inner
                .executors
                .iter()
                .filter(|s| !s.blacklisted.load(Ordering::SeqCst))
                .count();
            // Never blacklist the last healthy executor: a pool that cannot
            // schedule anything would hang every later stage.
            if healthy > 1 && !slot.blacklisted.load(Ordering::SeqCst) {
                slot.blacklisted.store(true, Ordering::SeqCst);
            }
        }
        if self.inner.events.is_enabled() {
            self.inner.events.emit(Event::ExecutorLost {
                executor,
                lost_map_outputs: lost_map_outputs as u64,
                lost_blocks: lost_blocks as u64,
                at_micros: self.inner.events.now_micros(),
            });
        }
        true
    }

    /// Current epoch of one executor; results computed under an older epoch
    /// are stale.
    pub(crate) fn executor_epoch(&self, executor: usize) -> u64 {
        self.inner.executors[executor].epoch.load(Ordering::SeqCst)
    }

    /// Executors eligible for worker threads. Never empty: blacklisting
    /// always spares the last healthy executor.
    fn healthy_executors(&self) -> Vec<usize> {
        let healthy: Vec<usize> = self
            .inner
            .executors
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.blacklisted.load(Ordering::SeqCst))
            .map(|(i, _)| i)
            .collect();
        if healthy.is_empty() {
            vec![0]
        } else {
            healthy
        }
    }

    /// Configured task-attempt limit ([`ContextBuilder::max_task_attempts`]).
    pub fn max_task_attempts(&self) -> u32 {
        self.inner.max_task_attempts
    }

    /// Configured stage-attempt limit ([`ContextBuilder::max_stage_attempts`]).
    pub fn max_stage_attempts(&self) -> u32 {
        self.inner.max_stage_attempts
    }

    /// Configured speculation multiplier, `None` when speculation is off
    /// ([`ContextBuilder::speculation`]).
    pub fn speculation_multiplier(&self) -> Option<f64> {
        self.inner.speculation
    }

    /// Number of shuffle data-plane worker processes; `0` in local mode
    /// ([`ContextBuilder::worker_processes`] or [`WORKER_PROCS_ENV`]).
    pub fn worker_processes(&self) -> usize {
        self.inner.worker_group.as_ref().map_or(0, |g| g.len())
    }

    /// Is the external shuffle service spool active?
    /// ([`ContextBuilder::external_shuffle`] or [`EXTERNAL_SHUFFLE_ENV`];
    /// always false in local mode.)
    pub fn external_shuffle_enabled(&self) -> bool {
        self.inner.external_dir.is_some()
    }

    /// Configured stage-resubmission backoff
    /// ([`ContextBuilder::resubmit_backoff`]).
    pub fn resubmit_backoff(&self) -> BackoffPolicy {
        self.inner.resubmit_backoff
    }

    /// Configured shuffle-fetch retry backoff
    /// ([`ContextBuilder::fetch_backoff`]).
    pub fn fetch_backoff(&self) -> BackoffPolicy {
        self.inner.fetch_backoff
    }

    /// Configured shuffle-fetch retry limit
    /// ([`ContextBuilder::fetch_retries`]).
    pub fn fetch_retries(&self) -> u32 {
        self.inner.fetch_retries
    }

    /// The shuffle worker-process group, if this context runs multi-process.
    pub(crate) fn worker_group(&self) -> Option<Arc<WorkerGroup>> {
        self.inner.worker_group.clone()
    }

    /// Successful shuffle-fetch latencies (µs, unsorted) and total fetch
    /// retries on the worker data plane so far — the raw series behind
    /// `BENCH_shuffle.json`'s p50/p99. `None` in local mode.
    pub fn worker_fetch_stats(&self) -> Option<(Vec<u64>, u64)> {
        self.inner.worker_group.as_ref().map(|g| g.fetch_stats())
    }

    /// Spool directory for one shuffle's external frames, `None` when the
    /// external shuffle service is off. The directory itself is created
    /// lazily by the first map task that writes into it.
    pub(crate) fn external_shuffle_path(&self, shuffle_id: u64) -> Option<PathBuf> {
        self.inner
            .external_dir
            .as_ref()
            .map(|d| d.join(format!("s{shuffle_id}")))
    }

    /// Effective storage budget in bytes ([`ContextBuilder::storage_memory`]
    /// or the [`STORAGE_BUDGET_ENV`] override); `None` means unlimited.
    pub fn storage_memory(&self) -> Option<usize> {
        self.storage_status().budget.map(|b| b as usize)
    }

    /// Run `f` with `tenant` as the current tenant on this thread: blocks
    /// cached inside (on this thread or any stage worker it drives) are
    /// charged to the tenant's storage quota, and per-tenant usage shows up
    /// in [`Context::storage_status`]. Nests and restores on unwind.
    pub fn scoped_tenant<R>(&self, tenant: u32, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_TENANT.with(|c| c.replace(Some(tenant)));
        let _restore = RestoreTenant(prev);
        f()
    }

    /// Run `f` under `token`: stages started inside (on this thread or any
    /// worker thread they spawn) check the token before claiming each task,
    /// and when it is cancelled the innermost stage stops launching tasks
    /// and unwinds with [`CANCELLED_MSG`] as the panic payload (catch it and
    /// test with [`crate::service::panic_is_cancelled`]). Nests and restores
    /// on unwind.
    pub fn scoped_cancel<R>(&self, token: CancelToken, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_CANCEL.with(|c| c.borrow_mut().replace(token));
        let _restore = RestoreCancel(prev);
        f()
    }

    /// Chaos hook at every task launch: applies any kills scheduled for this
    /// point in the schedule, then any delay. Runs on the launching worker
    /// thread, before the task body.
    fn chaos_task_start(&self) {
        let Some(chaos) = &self.inner.chaos else {
            return;
        };
        let faults = chaos.on_task_start();
        for executor in faults.kill {
            self.kill_executor(executor);
        }
        for executor in faults.kill_worker_of {
            // Process-level fault: kill -9 the worker hosting this executor.
            // In local mode there is no process to kill; degrade to an
            // executor kill so one chaos schedule exercises both modes.
            match &self.inner.worker_group {
                Some(group) => {
                    self.kill_worker(executor % group.len());
                }
                None => {
                    self.kill_executor_inner(executor);
                }
            }
        }
        if !faults.delay.is_zero() {
            std::thread::sleep(faults.delay);
        }
    }

    /// Chaos hook at a shuffle's map→reduce barrier: kill the owners of the
    /// scheduled map partitions of *this* shuffle, deterministically losing
    /// specific map outputs regardless of thread scheduling.
    pub(crate) fn chaos_barrier(&self, shuffle_id: u64) {
        let Some(chaos) = &self.inner.chaos else {
            return;
        };
        for map_partition in chaos.on_barrier() {
            if let Some(owner) = self.inner.map_outputs.owner(shuffle_id, map_partition) {
                self.kill_executor(owner);
            }
        }
    }

    /// Chaos hook at a reduce task's fetch of the map outputs: true if this
    /// fetch should fail.
    pub(crate) fn chaos_fetch_should_fail(&self) -> bool {
        self.inner
            .chaos
            .as_ref()
            .is_some_and(ChaosController::on_fetch)
    }

    /// Chaos hook on every wire fetch in multi-process mode: the stream
    /// fault (drop / delay / garble) to apply to this fetch, if any.
    pub(crate) fn chaos_wire_fault(&self) -> Option<WireFault> {
        self.inner
            .chaos
            .as_ref()
            .and_then(ChaosController::on_wire_fetch)
    }

    /// The chaos schedule this context runs under, if any.
    pub fn chaos_plan(&self) -> Option<&ChaosPlan> {
        self.inner.chaos.as_ref().map(ChaosController::plan)
    }

    /// Default partition count for sources and shuffles.
    pub fn default_parallelism(&self) -> usize {
        self.inner.default_parallelism
    }

    /// Runtime metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Start collecting structured runtime events, discarding anything
    /// buffered from an earlier trace window.
    pub fn trace(&self) {
        self.inner.events.drain();
        self.inner.events.set_enabled(true);
    }

    /// Stop collecting events. Buffered events stay available to
    /// [`Context::take_events`] / [`Context::take_profile`].
    pub fn stop_trace(&self) {
        self.inner.events.set_enabled(false);
    }

    /// Is event collection currently enabled?
    pub fn is_tracing(&self) -> bool {
        self.inner.events.is_enabled()
    }

    /// Drain the raw event log collected since [`Context::trace`] (or the
    /// last take). Tracing stays in whatever state it was.
    pub fn take_events(&self) -> Vec<Event> {
        self.inner.events.drain()
    }

    /// Drain the event log and fold it into a queryable [`JobProfile`].
    pub fn take_profile(&self) -> JobProfile {
        JobProfile::from_events(&self.take_events())
    }

    /// Run `f` with `tag` as the current plan-node tag: DAG nodes (shuffles)
    /// constructed inside `f` are attributed to `tag` in traces. Used by the
    /// planner to stamp each stage with the plan node that produced it.
    pub fn scoped_tag<R>(&self, tag: impl Into<String>, f: impl FnOnce() -> R) -> R {
        self.inner.plan_tags.lock().push(tag.into());
        let _guard = PopTag(self);
        f()
    }

    /// Top of the plan-tag stack, captured by shuffle nodes at construction.
    pub(crate) fn current_tag(&self) -> Option<String> {
        self.inner.plan_tags.lock().last().cloned()
    }

    /// Run `f` as a job (one action). Emits `JobStart`/`JobEnd` and charges
    /// stages submitted inside to this job. A no-op wrapper when tracing is
    /// off.
    pub(crate) fn job_scope<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        if !self.inner.events.is_enabled() {
            return f();
        }
        let job_id = self.inner.job_ids.fetch_add(1, Ordering::Relaxed);
        self.inner.events.emit(Event::JobStart {
            job_id,
            label: label.to_string(),
            at_micros: self.inner.events.now_micros(),
        });
        self.inner.active_jobs.lock().push(job_id);
        let _guard = EndJob {
            ctx: self,
            job_id,
            started: Instant::now(),
        };
        f()
    }

    /// The context's event sink (for emission sites elsewhere in the crate).
    pub(crate) fn events(&self) -> &EventCollector {
        &self.inner.events
    }

    /// Emit a custom event into the trace; a no-op when tracing is off. The
    /// closure receives the collector's monotonic timestamp (micros since
    /// context creation) and is only called when tracing is on, so callers
    /// pay nothing to build payloads otherwise. Used by higher layers (the
    /// planner's `plan.chosen` record) to put their own events on the bus.
    pub fn emit_event(&self, make: impl FnOnce(u64) -> Event) {
        if self.inner.events.is_enabled() {
            let at = self.inner.events.now_micros();
            self.inner.events.emit(make(at));
        }
    }

    fn current_job(&self) -> Option<u64> {
        self.inner.active_jobs.lock().last().copied()
    }

    /// Create a dataset from a local collection, splitting it into
    /// `partitions` roughly equal chunks.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> crate::Dataset<T> {
        crate::Dataset::from_vec(self.clone(), data, partitions.max(1))
    }

    /// [`Context::parallelize`] with the default parallelism.
    pub fn parallelize_default<T: Data>(&self, data: Vec<T>) -> crate::Dataset<T> {
        self.parallelize(data, self.inner.default_parallelism)
    }

    /// Register a broadcast value: a read-only value shared by all tasks.
    pub fn broadcast<T: Send + Sync + 'static>(&self, value: T) -> Arc<T> {
        let arc = Arc::new(value);
        self.inner
            .broadcasts
            .lock()
            .push(arc.clone() as Arc<dyn std::any::Any + Send + Sync>);
        arc
    }

    /// Make the next `n` task attempts fail with an injected panic. Used by
    /// fault-tolerance tests: the scheduler must retry and jobs must still
    /// produce correct results.
    ///
    /// The counter is shared by every job on this context. Tests that run
    /// concurrent jobs (or might leave failures unconsumed) should prefer
    /// [`Context::inject_task_failures_scoped`], whose guard returns unspent
    /// failures on drop instead of leaking them into later jobs.
    pub fn inject_task_failures(&self, n: u32) {
        self.inner
            .injected_failures
            .fetch_add(n as i64, Ordering::SeqCst);
    }

    /// [`Context::inject_task_failures`] bounded to a scope: the returned
    /// guard removes up to `n` still-pending failures when dropped, so a
    /// test that didn't run enough tasks to consume its injections can't
    /// starve or fail an unrelated job later on the same context.
    ///
    /// Attribution is approximate under concurrency — the counter can't tell
    /// *whose* injection a task consumed — but the invariant tests need
    /// holds: after the guard drops, at most as many failures remain pending
    /// as other scopes injected.
    pub fn inject_task_failures_scoped(&self, n: u32) -> InjectedFailuresGuard {
        self.inject_task_failures(n);
        InjectedFailuresGuard {
            ctx: self.clone(),
            injected: n as i64,
        }
    }

    /// Injected failures not yet consumed by a task.
    pub fn pending_injected_failures(&self) -> u32 {
        self.inner.injected_failures.load(Ordering::SeqCst).max(0) as u32
    }

    /// The block manager holding persisted dataset partitions.
    pub fn storage(&self) -> &BlockManager {
        &self.inner.storage
    }

    /// Current storage accounting (budget, resident bytes, evictions...).
    pub fn storage_status(&self) -> StorageStatus {
        self.inner.storage.status()
    }

    pub(crate) fn next_dataset_id(&self) -> u64 {
        self.inner.dataset_ids.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_shuffle_id(&self) -> u64 {
        self.inner.shuffle_ids.fetch_add(1, Ordering::Relaxed)
    }

    fn maybe_injected_failure(&self) {
        // Claim one pending failure atomically. A plain fetch_sub +
        // compensating fetch_add lets two concurrent tasks both observe a
        // non-positive counter and double-restore it; the CAS loop only ever
        // decrements a positive counter.
        let claimed = self.inner.injected_failures.fetch_update(
            Ordering::SeqCst,
            Ordering::SeqCst,
            |pending| (pending > 0).then(|| pending - 1),
        );
        if claimed.is_ok() {
            panic!("{INJECTED_FAILURE_MSG}");
        }
    }

    /// Run one stage of `n` tasks on the executor pool, retrying failed tasks
    /// up to the configured attempt limit, and return the per-task results in
    /// task order.
    ///
    /// Panics (re-raising the task's panic) if any task exhausts its attempts.
    pub fn run_tasks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        self.run_stage(
            n,
            || StageMeta {
                label: "stage".to_string(),
                tag: None,
                lineage: None,
            },
            f,
        )
        .0
    }

    /// [`Context::run_tasks`] with stage metadata for the event trace.
    /// Returns the results and the stage id (so callers can attribute
    /// further per-task facts, e.g. shuffle write sizes, to the stage).
    pub(crate) fn run_stage<R, F, M>(&self, n: usize, meta: M, f: F) -> (Vec<R>, u64)
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
        M: FnOnce() -> StageMeta,
    {
        let stage_id = self.inner.stage_ids.fetch_add(1, Ordering::Relaxed);
        if n == 0 {
            return (Vec::new(), stage_id);
        }
        self.inner.metrics.stage_run();
        let tracing = self.inner.events.is_enabled();
        if tracing {
            let meta = meta();
            self.inner.events.emit(Event::StageStart {
                stage_id,
                job_id: self.current_job(),
                label: meta.label,
                tag: meta.tag,
                lineage: meta.lineage,
                tasks: n,
                at_micros: self.inner.events.now_micros(),
            });
        }
        let stage_started = Instant::now();
        let shared = StageShared {
            ctx: self,
            f: &f,
            n,
            stage_id,
            tracing,
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            requeued: Mutex::new(Vec::new()),
            done: AtomicUsize::new(0),
            failure: Mutex::new(None),
            completed_micros: Mutex::new(Vec::new()),
            running: (0..n).map(|_| Mutex::new(None)).collect(),
            tenant: current_tenant(),
            cancel: current_cancel(),
        };
        // Map worker threads round-robin onto the healthy executors, fixed
        // for the stage's lifetime (a kill restarts the executor in place,
        // it does not remove capacity).
        let healthy = self.healthy_executors();
        let workers = self.inner.workers.min(n);
        std::thread::scope(|scope| {
            let shared = &shared;
            for t in 0..workers {
                let executor = healthy[t % healthy.len()];
                scope.spawn(move || shared.worker(executor));
            }
        });
        if tracing {
            self.inner.events.emit(Event::StageEnd {
                stage_id,
                wall_micros: stage_started.elapsed().as_micros() as u64,
            });
        }
        if let Some(cause) = shared.failure.into_inner() {
            resume_unwind(cause);
        }
        let out = shared
            .results
            .into_iter()
            .map(|m| m.into_inner().expect("task result missing"))
            .collect();
        (out, stage_id)
    }
}

/// A task attempt currently executing, for the speculation scanner.
struct RunningTask {
    started: Instant,
    executor: usize,
    /// A duplicate attempt has already been launched; never speculate twice.
    speculated: bool,
}

/// Per-stage scheduler state shared by the stage's worker threads.
struct StageShared<'a, R, F> {
    ctx: &'a Context,
    f: &'a F,
    n: usize,
    stage_id: u64,
    tracing: bool,
    results: Vec<Mutex<Option<R>>>,
    /// Next fresh task index.
    next: AtomicUsize,
    /// Tasks whose results were discarded because their executor died
    /// mid-flight; they go back to the front of the queue.
    requeued: Mutex<Vec<usize>>,
    /// Count of tasks with an accepted result.
    done: AtomicUsize,
    failure: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Durations of accepted results — the speculation baseline.
    completed_micros: Mutex<Vec<u64>>,
    running: Vec<Mutex<Option<RunningTask>>>,
    /// Tenant/cancel context captured from the submitting (driver) thread
    /// and re-installed on every worker, so nested stages inherit them.
    tenant: Option<u32>,
    cancel: Option<CancelToken>,
}

impl<R: Send, F: Fn(usize) -> R + Send + Sync> StageShared<'_, R, F> {
    fn worker(&self, executor: usize) {
        // Fresh thread per stage, so these are the innermost stage/executor
        // even when stages nest (see [`current_stage`]).
        CURRENT_STAGE.with(|c| c.set(Some(self.stage_id)));
        CURRENT_EXECUTOR.with(|c| c.set(Some(executor)));
        CURRENT_TENANT.with(|c| c.set(self.tenant));
        CURRENT_CANCEL.with(|c| *c.borrow_mut() = self.cancel.clone());
        loop {
            // Fail fast: once any task has permanently failed the stage's
            // outcome is fixed, so launching still-queued tasks is pure
            // wasted work (and noise in the trace).
            if self.failure.lock().is_some() {
                return;
            }
            // Cooperative cancellation boundary: in-flight tasks finish,
            // nothing further launches, the stage unwinds as cancelled.
            if self.observe_cancellation() {
                return;
            }
            let task = self.requeued.lock().pop().or_else(|| {
                let i = self.next.fetch_add(1, Ordering::SeqCst);
                (i < self.n).then_some(i)
            });
            match task {
                Some(i) => self.run_task(i, executor, false),
                None => {
                    if self.done.load(Ordering::SeqCst) >= self.n {
                        return;
                    }
                    match self.speculation_target(executor) {
                        Some(i) => self.run_task(i, executor, true),
                        // Speculation on: idle-wait for a straggler to cross
                        // the threshold (or for the stage to finish).
                        None if self.ctx.inner.speculation.is_some() => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        // Speculation off: whoever still runs a task will
                        // also drain any requeue it causes, so idle workers
                        // can leave.
                        None => return,
                    }
                }
            }
        }
    }

    /// Run one task to acceptance, retrying panics up to the attempt limit.
    fn run_task(&self, i: usize, executor: usize, speculative: bool) {
        let inner = &self.ctx.inner;
        let mut attempt = 0;
        loop {
            if self.failure.lock().is_some() {
                return;
            }
            // Chaos fires at launch boundaries on the launching thread, so a
            // schedule replays identically for a given task order.
            self.ctx.chaos_task_start();
            let epoch = inner.executors[executor].epoch.load(Ordering::SeqCst);
            if !speculative {
                *self.running[i].lock() = Some(RunningTask {
                    started: Instant::now(),
                    executor,
                    speculated: false,
                });
            }
            inner.metrics.task_launched();
            let task_started = Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| {
                self.ctx.maybe_injected_failure();
                (self.f)(i)
            }));
            let task_micros = task_started.elapsed().as_micros() as u64;
            match out {
                Ok(v) => {
                    if inner.executors[executor].epoch.load(Ordering::SeqCst) != epoch {
                        // The executor died (and restarted) while this task
                        // ran: its result is part of the lost state. Put the
                        // partition back in the queue; this is loss, not a
                        // task failure, so no failure count and no TaskEnd.
                        if !speculative {
                            self.requeued.lock().push(i);
                        }
                        return;
                    }
                    let mut slot = self.results[i].lock();
                    if slot.is_none() {
                        *slot = Some(v);
                        drop(slot);
                        self.done.fetch_add(1, Ordering::SeqCst);
                        self.completed_micros.lock().push(task_micros);
                        *self.running[i].lock() = None;
                        if self.tracing {
                            inner.events.emit(Event::TaskEnd {
                                stage_id: self.stage_id,
                                task: i,
                                attempt,
                                wall_micros: task_micros,
                                ok: true,
                                injected: false,
                            });
                        }
                    }
                    // else: a duplicate attempt already delivered this
                    // partition; first result won, drop ours.
                    return;
                }
                Err(cause) if panic_is_cancelled(&cause) => {
                    // A nested stage unwound as cancelled inside this task:
                    // that is the job being cancelled, not this task failing.
                    // Don't retry, don't count a failure — pin the stage's
                    // outcome so the cancellation keeps propagating.
                    let mut failure = self.failure.lock();
                    if failure.is_none() {
                        *failure = Some(cause);
                    }
                    return;
                }
                Err(cause) => {
                    inner.metrics.task_failed();
                    if self.tracing {
                        inner.events.emit(Event::TaskEnd {
                            stage_id: self.stage_id,
                            task: i,
                            attempt,
                            wall_micros: task_micros,
                            ok: false,
                            injected: panic_is_injected(&cause),
                        });
                    }
                    attempt += 1;
                    if attempt >= inner.max_task_attempts {
                        *self.failure.lock() = Some(cause);
                        return;
                    }
                }
            }
        }
    }

    /// If this stage runs under a cancelled token, pin the stage's outcome
    /// to the cancellation payload (first observer wins; a real task failure
    /// that landed first keeps priority) and emit one `JobCancelled` event
    /// per token. Returns true when the worker should stop claiming tasks.
    fn observe_cancellation(&self) -> bool {
        let Some(token) = &self.cancel else {
            return false;
        };
        if !token.is_cancelled() {
            return false;
        }
        let mut failure = self.failure.lock();
        if failure.is_none() {
            *failure = Some(Box::new(CANCELLED_MSG));
        }
        drop(failure);
        if token.first_report() {
            self.ctx.emit_event(|at| Event::JobCancelled {
                tenant: token.tenant().to_string(),
                job: token.job(),
                stage_id: Some(self.stage_id),
                at_micros: at,
            });
        }
        true
    }

    /// Find a straggler worth duplicating on `executor`: speculation is on,
    /// at least half the stage has finished, the candidate has been running
    /// longer than multiplier × median on a *different* executor, and nobody
    /// speculated it yet.
    fn speculation_target(&self, executor: usize) -> Option<usize> {
        let multiplier = self.ctx.inner.speculation?;
        let threshold = {
            let completed = self.completed_micros.lock();
            if completed.len() * 2 < self.n {
                return None;
            }
            let mut sorted = completed.clone();
            drop(completed);
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            ((median as f64 * multiplier) as u64).max(SPECULATION_FLOOR_MICROS)
        };
        for i in 0..self.n {
            if self.results[i].lock().is_some() {
                continue;
            }
            let mut running = self.running[i].lock();
            if let Some(task) = running.as_mut() {
                if !task.speculated
                    && task.executor != executor
                    && task.started.elapsed().as_micros() as u64 >= threshold
                {
                    task.speculated = true;
                    drop(running);
                    if self.tracing {
                        self.ctx.inner.events.emit(Event::TaskSpeculated {
                            stage_id: self.stage_id,
                            task: i,
                            executor,
                        });
                    }
                    return Some(i);
                }
            }
        }
        None
    }
}

/// True if a caught panic payload is the scheduler's injected failure.
fn panic_is_injected(cause: &Box<dyn std::any::Any + Send>) -> bool {
    cause
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == INJECTED_FAILURE_MSG)
        || cause
            .downcast_ref::<String>()
            .is_some_and(|s| s == INJECTED_FAILURE_MSG)
}

/// Guard returned by [`Context::inject_task_failures_scoped`]. Dropping it
/// removes up to the scope's injection count from the pending counter
/// (clamped at zero), so unconsumed failures don't leak out of the scope.
pub struct InjectedFailuresGuard {
    ctx: Context,
    injected: i64,
}

impl Drop for InjectedFailuresGuard {
    fn drop(&mut self) {
        let n = self.injected;
        // Clamped CAS: never remove more than is pending (another scope's
        // injections must survive), never go negative.
        let _ = self.ctx.inner.injected_failures.fetch_update(
            Ordering::SeqCst,
            Ordering::SeqCst,
            |pending| Some(pending - n.min(pending).max(0)),
        );
    }
}

struct PopTag<'a>(&'a Context);

impl Drop for PopTag<'_> {
    fn drop(&mut self) {
        self.0.inner.plan_tags.lock().pop();
    }
}

struct EndJob<'a> {
    ctx: &'a Context,
    job_id: u64,
    started: Instant,
}

impl Drop for EndJob<'_> {
    fn drop(&mut self) {
        let mut jobs = self.ctx.inner.active_jobs.lock();
        if let Some(pos) = jobs.iter().rposition(|&j| j == self.job_id) {
            jobs.remove(pos);
        }
        drop(jobs);
        self.ctx.inner.events.emit(Event::JobEnd {
            job_id: self.job_id,
            wall_micros: self.started.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_returns_in_task_order() {
        let ctx = Context::builder().workers(4).build();
        let out = ctx.run_tasks(16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_zero_tasks() {
        let ctx = Context::new();
        let out: Vec<u32> = ctx.run_tasks(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn injected_failures_are_retried() {
        let ctx = Context::builder().workers(2).build();
        ctx.inject_task_failures(3);
        let out = ctx.run_tasks(8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert!(ctx.metrics().snapshot().tasks_failed >= 3);
    }

    #[test]
    fn injected_failure_counter_is_exact_under_concurrency() {
        // The fetch_update claim never lets concurrent tasks double-consume
        // or resurrect injected failures: with N injected and plenty of
        // tasks, exactly N fail.
        // One task may claim several injected failures back-to-back, so give
        // it headroom to retry past all of them.
        let ctx = Context::builder().workers(8).max_task_attempts(16).build();
        ctx.inject_task_failures(5);
        let _ = ctx.run_tasks(64, |i| i);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, 5);
        // Counter is spent: later stages see no failures.
        let before = ctx.metrics().snapshot().tasks_failed;
        let _ = ctx.run_tasks(64, |i| i);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, before);
    }

    #[test]
    #[should_panic(expected = "injected task failure")]
    fn exhausting_attempts_fails_the_job() {
        let ctx = Context::builder().workers(1).max_task_attempts(2).build();
        // More injected failures than total allowed attempts for one task.
        ctx.inject_task_failures(10);
        let _ = ctx.run_tasks(1, |i| i);
    }

    #[test]
    fn scoped_injection_guard_returns_unspent_failures() {
        let ctx = Context::builder().workers(1).build();
        {
            let _g = ctx.inject_task_failures_scoped(10);
            assert_eq!(ctx.pending_injected_failures(), 10);
        }
        assert_eq!(ctx.pending_injected_failures(), 0);
        let before = ctx.metrics().snapshot().tasks_failed;
        ctx.run_tasks(4, |i| i);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, before);
    }

    #[test]
    fn scoped_injection_guard_preserves_other_scopes() {
        let ctx = Context::new();
        ctx.inject_task_failures(3);
        {
            let _g = ctx.inject_task_failures_scoped(5);
            assert_eq!(ctx.pending_injected_failures(), 8);
        }
        // Only this scope's 5 are returned; the unscoped 3 survive.
        assert_eq!(ctx.pending_injected_failures(), 3);
    }

    #[test]
    fn scoped_injection_failures_are_consumed_inside_scope() {
        let ctx = Context::builder().workers(2).build();
        {
            let _g = ctx.inject_task_failures_scoped(2);
            let out = ctx.run_tasks(8, |i| i + 1);
            assert_eq!(out, (1..=8).collect::<Vec<_>>());
            assert!(ctx.metrics().snapshot().tasks_failed >= 2);
        }
        assert_eq!(ctx.pending_injected_failures(), 0);
    }

    #[test]
    fn storage_budget_knob_is_visible_in_status() {
        let ctx = Context::builder().storage_memory(4096).build();
        assert_eq!(ctx.storage_status().budget, Some(4096));
        assert_eq!(ctx.storage_status().memory_used, 0);
    }

    #[test]
    fn current_stage_tracks_innermost_stage() {
        let ctx = Context::builder().workers(2).build();
        assert_eq!(current_stage(), None, "driver thread runs outside stages");
        let stages = ctx.run_tasks(2, |_| {
            let outer = current_stage().expect("task must see its stage");
            let inner = ctx.run_tasks(1, |_| current_stage().expect("nested stage"));
            assert_ne!(inner[0], outer, "nested stage must shadow the outer");
            assert_eq!(current_stage(), Some(outer), "outer survives nesting");
            outer
        });
        assert_eq!(stages.len(), 2);
        assert_eq!(current_stage(), None);
    }

    #[test]
    fn broadcast_is_shared() {
        let ctx = Context::new();
        let b = ctx.broadcast(vec![1, 2, 3]);
        let sums = ctx.run_tasks(4, |_| b.iter().sum::<i32>());
        assert_eq!(sums, vec![6; 4]);
    }

    #[test]
    fn stage_counter_increments() {
        let ctx = Context::new();
        let before = ctx.metrics().snapshot().stages_run;
        ctx.run_tasks(2, |i| i);
        ctx.run_tasks(2, |i| i);
        assert_eq!(ctx.metrics().snapshot().stages_run - before, 2);
    }

    #[test]
    fn untraced_contexts_collect_nothing() {
        let ctx = Context::new();
        ctx.run_tasks(4, |i| i);
        assert!(ctx.take_events().is_empty());
    }

    #[test]
    fn traced_stage_emits_start_tasks_end() {
        use crate::events::Event;
        let ctx = Context::builder().workers(2).build();
        ctx.trace();
        ctx.run_tasks(3, |i| i);
        let events = ctx.take_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::StageStart { .. }))
            .count();
        let tasks = events
            .iter()
            .filter(|e| matches!(e, Event::TaskEnd { ok: true, .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::StageEnd { .. }))
            .count();
        assert_eq!((starts, tasks, ends), (1, 3, 1));
    }

    #[test]
    fn traced_retries_mark_injected_failures() {
        let ctx = Context::builder().workers(1).build();
        ctx.trace();
        ctx.inject_task_failures(2);
        ctx.run_tasks(4, |i| i);
        let profile = ctx.take_profile();
        assert_eq!(profile.total_failed_attempts(), 2);
        assert_eq!(
            profile
                .stages
                .iter()
                .map(|s| s.injected_failures)
                .sum::<u32>(),
            2
        );
    }

    #[test]
    fn scoped_tag_nests_and_restores() {
        let ctx = Context::new();
        assert_eq!(ctx.current_tag(), None);
        ctx.scoped_tag("outer", || {
            assert_eq!(ctx.current_tag().as_deref(), Some("outer"));
            ctx.scoped_tag("inner", || {
                assert_eq!(ctx.current_tag().as_deref(), Some("inner"));
            });
            assert_eq!(ctx.current_tag().as_deref(), Some("outer"));
        });
        assert_eq!(ctx.current_tag(), None);
    }

    #[test]
    fn job_scope_brackets_stages() {
        let ctx = Context::builder().workers(2).build();
        ctx.trace();
        ctx.job_scope("collect", || ctx.run_tasks(2, |i| i));
        let profile = ctx.take_profile();
        assert_eq!(profile.jobs.len(), 1);
        assert_eq!(profile.jobs[0].label, "collect");
        assert_eq!(profile.jobs[0].stage_ids.len(), 1);
    }

    #[test]
    #[should_panic(expected = "max_task_attempts must be >= 1")]
    fn builder_rejects_zero_task_attempts() {
        let _ = Context::builder().max_task_attempts(0).build();
    }

    #[test]
    #[should_panic(expected = "max_stage_attempts must be >= 1")]
    fn builder_rejects_zero_stage_attempts() {
        let _ = Context::builder().max_stage_attempts(0).build();
    }

    #[test]
    fn executor_pool_defaults_to_one_per_worker() {
        let ctx = Context::builder().workers(3).chaos_off().build();
        assert_eq!(ctx.executors(), 3);
        let ctx = Context::builder()
            .workers(4)
            .executors(2)
            .chaos_off()
            .build();
        assert_eq!(ctx.executors(), 2);
        assert_eq!(ctx.executor_status().len(), 2);
        assert!(ctx
            .executor_status()
            .iter()
            .all(|s| s.restarts == 0 && !s.blacklisted));
    }

    #[test]
    fn kill_executor_restarts_and_eventually_blacklists() {
        let ctx = Context::builder()
            .workers(2)
            .executors(2)
            .chaos_off()
            .build();
        assert!(!ctx.kill_executor(99), "unknown executor id");
        for _ in 0..BLACKLIST_STRIKES {
            assert!(ctx.kill_executor(0));
        }
        let status = ctx.executor_status();
        assert_eq!(status[0].restarts, u64::from(BLACKLIST_STRIKES));
        assert!(status[0].blacklisted);
        // The last healthy executor survives any number of strikes.
        for _ in 0..BLACKLIST_STRIKES + 2 {
            assert!(ctx.kill_executor(1));
        }
        assert!(!ctx.executor_status()[1].blacklisted);
        // And stages still run on the surviving executor.
        assert_eq!(ctx.run_tasks(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn kill_mid_stage_discards_and_reruns_the_victim_task() {
        let ctx = Context::builder()
            .workers(2)
            .executors(2)
            .chaos_off()
            .build();
        ctx.trace();
        let killed = AtomicBool::new(false);
        let runs = AtomicUsize::new(0);
        let out = ctx.run_tasks(8, |i| {
            runs.fetch_add(1, Ordering::SeqCst);
            if i == 3 && !killed.swap(true, Ordering::SeqCst) {
                // Kill our own executor mid-task: the completed result must
                // be discarded and the task rerun on the restarted slot.
                ctx.kill_executor(current_executor().expect("worker thread"));
            }
            i * 10
        });
        assert_eq!(out, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(runs.load(Ordering::SeqCst), 9, "task 3 runs twice");
        let events = ctx.take_events();
        let lost = events
            .iter()
            .filter(|e| matches!(e, Event::ExecutorLost { .. }))
            .count();
        let ok_ends = events
            .iter()
            .filter(|e| matches!(e, Event::TaskEnd { ok: true, .. }))
            .count();
        assert_eq!(lost, 1);
        // The discarded attempt emits no TaskEnd; kills are loss, not failure.
        assert_eq!(ok_ends, 8);
        assert_eq!(ctx.metrics().snapshot().tasks_failed, 0);
    }

    #[test]
    fn permanent_failure_stops_launching_queued_tasks() {
        let ctx = Context::builder()
            .workers(1)
            .max_task_attempts(1)
            .chaos_off()
            .build();
        ctx.inject_task_failures(1);
        let launched = Arc::new(AtomicUsize::new(0));
        let launched2 = launched.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            ctx.run_tasks(64, move |i| {
                launched2.fetch_add(1, Ordering::SeqCst);
                i
            })
        }));
        assert!(result.is_err(), "exhausted attempts must fail the job");
        // Fail-fast: the single worker stops at the failed task instead of
        // burning through the remaining 63.
        assert!(
            launched.load(Ordering::SeqCst) < 8,
            "ran {} tasks after a permanent failure",
            launched.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn speculation_duplicates_stragglers_and_first_result_wins() {
        let ctx = Context::builder()
            .workers(2)
            .executors(2)
            .speculation(1.5)
            .chaos_off()
            .build();
        ctx.trace();
        let straggles = AtomicBool::new(true);
        let out = ctx.run_tasks(6, |i| {
            // Task 0's first attempt stalls; its speculative copy (and every
            // other task) returns immediately.
            if i == 0 && straggles.swap(false, Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(200));
            }
            i + 100
        });
        assert_eq!(out, (100..106).collect::<Vec<_>>());
        let events = ctx.take_events();
        let speculated = events
            .iter()
            .filter(|e| matches!(e, Event::TaskSpeculated { task: 0, .. }))
            .count();
        assert_eq!(speculated, 1, "straggler gets exactly one duplicate");
        // Only the winning attempt reports a TaskEnd per task.
        let ok_ends = events
            .iter()
            .filter(|e| matches!(e, Event::TaskEnd { ok: true, .. }))
            .count();
        assert_eq!(ok_ends, 6);
    }

    #[test]
    fn builder_knobs_read_back_from_a_running_context() {
        let resubmit = BackoffPolicy {
            base: Duration::from_millis(1),
            multiplier: 3.0,
            cap: Duration::from_millis(40),
            jitter: 0.5,
        };
        let fetch = BackoffPolicy {
            base: Duration::from_micros(50),
            multiplier: 1.5,
            cap: Duration::from_millis(2),
            jitter: 0.0,
        };
        let ctx = Context::builder()
            .workers(3)
            .executors(2)
            .default_parallelism(5)
            .max_task_attempts(7)
            .max_stage_attempts(9)
            .storage_memory(1 << 20)
            .speculation(2.5)
            .resubmit_backoff(resubmit)
            .fetch_backoff(fetch)
            .fetch_retries(5)
            .chaos_off()
            .build();
        assert_eq!(ctx.workers(), 3);
        assert_eq!(ctx.executors(), 2);
        assert_eq!(ctx.default_parallelism(), 5);
        assert_eq!(ctx.max_task_attempts(), 7);
        assert_eq!(ctx.max_stage_attempts(), 9);
        assert_eq!(ctx.storage_memory(), Some(1 << 20));
        assert_eq!(ctx.speculation_multiplier(), Some(2.5));
        assert_eq!(ctx.resubmit_backoff(), resubmit);
        assert_eq!(ctx.fetch_backoff(), fetch);
        assert_eq!(ctx.fetch_retries(), 5);
        // Local mode: no worker processes, no external spool.
        assert_eq!(ctx.worker_processes(), 0);
        assert!(!ctx.external_shuffle_enabled());
    }

    #[test]
    fn kill_worker_is_a_no_op_in_local_mode() {
        let ctx = Context::builder().workers(2).chaos_off().build();
        assert!(!ctx.kill_worker(0));
        assert_eq!(ctx.run_tasks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn scoped_tenant_nests_and_restores_on_unwind() {
        let ctx = Context::new();
        assert_eq!(current_tenant(), None);
        ctx.scoped_tenant(1, || {
            assert_eq!(current_tenant(), Some(1));
            ctx.scoped_tenant(2, || assert_eq!(current_tenant(), Some(2)));
            assert_eq!(current_tenant(), Some(1));
            let _ = catch_unwind(AssertUnwindSafe(|| ctx.scoped_tenant(3, || panic!("boom"))));
            assert_eq!(current_tenant(), Some(1), "restored on unwind");
        });
        assert_eq!(current_tenant(), None);
    }

    #[test]
    fn workers_inherit_tenant_and_cancel_from_the_driver() {
        let ctx = Context::builder().workers(2).chaos_off().build();
        let token = CancelToken::new("alice", 1);
        ctx.scoped_tenant(7, || {
            ctx.scoped_cancel(token, || {
                let seen =
                    ctx.run_tasks(4, |_| (current_tenant(), current_cancel().map(|t| t.job())));
                assert!(seen.iter().all(|&s| s == (Some(7), Some(1))));
            })
        });
    }

    #[test]
    fn cancellation_stops_at_the_next_task_boundary() {
        let ctx = Context::builder().workers(2).chaos_off().build();
        ctx.trace();
        let token = CancelToken::new("alice", 42);
        let launched = Arc::new(AtomicUsize::new(0));
        let (t2, l2) = (token.clone(), launched.clone());
        let result = catch_unwind(AssertUnwindSafe(|| {
            ctx.scoped_cancel(token.clone(), || {
                ctx.run_tasks(64, move |i| {
                    l2.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        t2.cancel();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    i
                })
            })
        }));
        let cause = result.expect_err("cancelled job must unwind");
        assert!(crate::service::panic_is_cancelled(&cause));
        // In-flight tasks finish, nothing further launches: with 2 workers
        // at most one extra task can slip in per worker after the cancel.
        assert!(
            launched.load(Ordering::SeqCst) <= 4,
            "launched {} tasks after cancellation",
            launched.load(Ordering::SeqCst)
        );
        let cancels = ctx
            .take_events()
            .iter()
            .filter(
                |e| matches!(e, Event::JobCancelled { tenant, job: 42, .. } if tenant == "alice"),
            )
            .count();
        assert_eq!(cancels, 1, "exactly one JobCancelled per token");
        // The pool is free again: later jobs run normally.
        assert_eq!(ctx.run_tasks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn cancellation_propagates_out_of_nested_stages_without_retries() {
        let ctx = Context::builder().workers(2).chaos_off().build();
        let token = CancelToken::new("bob", 5);
        let before = ctx.metrics().snapshot().tasks_failed;
        let t2 = token.clone();
        let nested_ctx = ctx.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            ctx.scoped_cancel(token.clone(), || {
                ctx.run_tasks(2, move |_| {
                    // Nested stage observes the cancellation and unwinds
                    // through the parent task.
                    t2.cancel();
                    nested_ctx.run_tasks(8, |i| i)
                })
            })
        }));
        let cause = result.expect_err("cancellation must reach the driver");
        assert!(crate::service::panic_is_cancelled(&cause));
        assert_eq!(
            ctx.metrics().snapshot().tasks_failed,
            before,
            "cancellation is not a task failure and must not be retried"
        );
    }

    #[test]
    fn chaos_plan_is_visible_on_the_context() {
        let plan = ChaosPlan::new().with_kill_at_task(10, 0);
        let ctx = Context::builder()
            .workers(2)
            .executors(2)
            .chaos(plan)
            .build();
        assert!(ctx.chaos_plan().is_some());
        let ctx = Context::builder().chaos_off().build();
        assert!(ctx.chaos_plan().is_none());
    }
}
