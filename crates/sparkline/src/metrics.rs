//! Runtime metrics: task/stage counters and per-shuffle detail.
//!
//! The evaluation in the paper argues about *data shuffled*; these metrics
//! make every plan's shuffle volume observable so the benchmark harness and
//! the plan-shape tests can assert it.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Detail record for one shuffle dependency that was materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleDetail {
    /// Monotonically increasing shuffle id within a [`crate::Context`].
    pub shuffle_id: u64,
    /// Human-readable operator name (e.g. `reduceByKey`, `cogroup.left`).
    pub operator: String,
    /// Estimated bytes written by all map tasks.
    pub bytes_written: u64,
    /// Records written after map-side combining (if enabled).
    pub records_written: u64,
    /// Records fed into the map side before combining.
    pub records_in: u64,
    /// Number of map partitions.
    pub map_partitions: usize,
    /// Number of reduce partitions.
    pub reduce_partitions: usize,
}

/// Shared, thread-safe metrics sink for a [`crate::Context`].
#[derive(Default)]
pub struct Metrics {
    tasks_launched: AtomicU64,
    tasks_failed: AtomicU64,
    stages_run: AtomicU64,
    shuffle_bytes: AtomicU64,
    shuffle_records: AtomicU64,
    shuffles: Mutex<Vec<ShuffleDetail>>,
}

/// A point-in-time copy of the counters, suitable for diffing around a job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub tasks_launched: u64,
    pub tasks_failed: u64,
    pub stages_run: u64,
    pub shuffle_bytes: u64,
    pub shuffle_records: u64,
    pub shuffle_count: u64,
}

impl MetricsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_launched: self.tasks_launched.saturating_sub(earlier.tasks_launched),
            tasks_failed: self.tasks_failed.saturating_sub(earlier.tasks_failed),
            stages_run: self.stages_run.saturating_sub(earlier.stages_run),
            shuffle_bytes: self.shuffle_bytes.saturating_sub(earlier.shuffle_bytes),
            shuffle_records: self.shuffle_records.saturating_sub(earlier.shuffle_records),
            shuffle_count: self.shuffle_count.saturating_sub(earlier.shuffle_count),
        }
    }
}

impl Metrics {
    pub(crate) fn task_launched(&self) {
        self.tasks_launched.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn task_failed(&self) {
        self.tasks_failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stage_run(&self) {
        self.stages_run.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shuffle(&self, detail: ShuffleDetail) {
        self.shuffle_bytes
            .fetch_add(detail.bytes_written, Ordering::Relaxed);
        self.shuffle_records
            .fetch_add(detail.records_written, Ordering::Relaxed);
        self.shuffles.lock().push(detail);
    }

    /// Copy of the scalar counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_launched: self.tasks_launched.load(Ordering::Relaxed),
            tasks_failed: self.tasks_failed.load(Ordering::Relaxed),
            stages_run: self.stages_run.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            shuffle_count: self.shuffles.lock().len() as u64,
        }
    }

    /// Detail for every shuffle materialized so far, in materialization order.
    pub fn shuffle_details(&self) -> Vec<ShuffleDetail> {
        self.shuffles.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let m = Metrics::default();
        m.task_launched();
        m.task_launched();
        let a = m.snapshot();
        m.task_launched();
        m.stage_run();
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.tasks_launched, 1);
        assert_eq!(d.stages_run, 1);
        assert_eq!(d.shuffle_bytes, 0);
    }

    #[test]
    fn shuffle_detail_is_accumulated() {
        let m = Metrics::default();
        m.record_shuffle(ShuffleDetail {
            shuffle_id: 0,
            operator: "reduceByKey".into(),
            bytes_written: 128,
            records_written: 4,
            records_in: 16,
            map_partitions: 2,
            reduce_partitions: 2,
        });
        let s = m.snapshot();
        assert_eq!(s.shuffle_bytes, 128);
        assert_eq!(s.shuffle_records, 4);
        assert_eq!(s.shuffle_count, 1);
        assert_eq!(m.shuffle_details()[0].operator, "reduceByKey");
    }
}
