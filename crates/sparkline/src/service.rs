//! Runtime primitives for the multi-tenant query service: cooperative
//! cancellation tokens and an admission-controlled weighted-fair scheduler.
//!
//! These live in sparkline (not the `service` crate) because the scheduler's
//! task loop must observe cancellation at task boundaries and the block
//! manager must attribute blocks to tenants — both are runtime concerns. The
//! `service` crate layers sessions, the plan cache, and the wire protocol on
//! top.
//!
//! ## Cancellation
//!
//! A [`CancelToken`] is installed on the driver thread with
//! [`crate::Context::scoped_cancel`]; [`crate::Context::run_stage`] captures
//! it and re-installs it on every worker thread, so nested stages (a shuffle
//! dependency materialized from inside a parent task) inherit it too. Workers
//! check the token *before claiming each task*: in-flight tasks run to
//! completion, no further tasks launch, and the stage unwinds with
//! [`CANCELLED_MSG`] as the panic payload — the same propagation path as a
//! permanently failed task, which is what frees the executor slots. The first
//! worker to observe the cancellation emits one
//! [`crate::events::Event::JobCancelled`].
//!
//! ## Fair scheduling
//!
//! [`FairScheduler`] implements stride scheduling over admission slots: each
//! tenant accrues virtual time proportional to its jobs' wall time divided by
//! its weight, and when a slot frees the waiter with the smallest virtual
//! time is admitted. A noisy neighbor running long jobs back-to-back
//! therefore accrues virtual time quickly and queues behind well-behaved
//! tenants instead of monopolizing the pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Panic payload used to unwind a cancelled job out of `run_stage`; how the
/// service recognizes a cancellation (vs. a genuine task failure) when it
/// catches the unwind. Analogous to the injected-failure marker.
pub const CANCELLED_MSG: &str = "sparkline: job cancelled";

/// True if a caught panic payload is a job cancellation.
pub fn panic_is_cancelled(cause: &Box<dyn std::any::Any + Send>) -> bool {
    cause
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == CANCELLED_MSG)
        || cause
            .downcast_ref::<String>()
            .is_some_and(|s| s == CANCELLED_MSG)
}

struct CancelInner {
    cancelled: AtomicBool,
    /// Ensures exactly one `JobCancelled` event per token however many
    /// workers observe the cancellation.
    reported: AtomicBool,
    tenant: String,
    job: u64,
}

/// Cooperative cancellation handle for one service-level job.
///
/// Cloning shares the flag. [`CancelToken::cancel`] is asynchronous: the job
/// observes it at its next task boundary (see the module docs).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, uncancelled token for `job` owned by `tenant`.
    pub fn new(tenant: impl Into<String>, job: u64) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                reported: AtomicBool::new(false),
                tenant: tenant.into(),
                job,
            }),
        }
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Tenant that owns the job this token guards.
    pub fn tenant(&self) -> &str {
        &self.inner.tenant
    }

    /// Service-level job id this token guards.
    pub fn job(&self) -> u64 {
        self.inner.job
    }

    /// True exactly once: the first caller after cancellation wins the right
    /// to emit the `JobCancelled` event.
    pub(crate) fn first_report(&self) -> bool {
        !self.inner.reported.swap(true, Ordering::SeqCst)
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("tenant", &self.inner.tenant)
            .field("job", &self.inner.job)
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Virtual time is tracked in micros scaled by this factor so integer
/// division by a weight keeps sub-microsecond resolution.
const VTIME_SCALE: u64 = 1 << 10;

struct FairState {
    /// Jobs currently holding an admission slot.
    in_flight: usize,
    /// FIFO tiebreak among equal virtual times.
    next_ticket: u64,
    /// `(ticket, tenant, vtime at entry)` for every blocked `admit` call.
    /// Entry vtime is only a lower bound: head selection re-reads the
    /// tenant's *current* virtual time, so charges accrued while a job waits
    /// (e.g. the same tenant's earlier job finishing) push it further back.
    waiters: Vec<(u64, u32, u64)>,
    /// Accrued scaled virtual time per tenant.
    vtime: HashMap<u32, u64>,
    /// Relative shares; absent means weight 1.
    weights: HashMap<u32, u32>,
    /// Monotone floor: a tenant entering after a long absence starts at the
    /// pool's current virtual time instead of its stale (tiny) one, so it
    /// cannot starve everyone by replaying its idle period.
    floor: u64,
}

/// Admission-controlled weighted-fair job scheduler (stride scheduling).
///
/// Layered *above* the executor pool: a slot here is the right to run one
/// job's stages on the shared [`crate::Context`]; the executor threads below
/// stay oblivious. See the module docs for the policy.
pub struct FairScheduler {
    slots: usize,
    state: Mutex<FairState>,
    available: Condvar,
}

impl FairScheduler {
    /// A scheduler admitting at most `slots` concurrent jobs.
    pub fn new(slots: usize) -> Arc<FairScheduler> {
        Arc::new(FairScheduler {
            slots: slots.max(1),
            state: Mutex::new(FairState {
                in_flight: 0,
                next_ticket: 0,
                waiters: Vec::new(),
                vtime: HashMap::new(),
                weights: HashMap::new(),
                floor: 0,
            }),
            available: Condvar::new(),
        })
    }

    /// Maximum concurrently admitted jobs.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Set a tenant's relative share (default 1). A tenant with weight 2
    /// accrues virtual time half as fast, so it gets roughly twice the pool
    /// time of a weight-1 tenant under contention.
    pub fn set_weight(&self, tenant: u32, weight: u32) {
        self.lock().weights.insert(tenant, weight.max(1));
    }

    fn lock(&self) -> MutexGuard<'_, FairState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Block until a slot is free and this tenant has the smallest virtual
    /// time among waiters, then take the slot. The returned guard releases
    /// the slot and charges the tenant's virtual time when dropped.
    pub fn admit(self: &Arc<Self>, tenant: u32) -> AdmissionGuard {
        let queued = Instant::now();
        let mut st = self.lock();
        let entry_vtime = (*st.vtime.get(&tenant).unwrap_or(&0)).max(st.floor);
        st.vtime.insert(tenant, entry_vtime);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiters.push((ticket, tenant, entry_vtime));
        loop {
            let head = st
                .waiters
                .iter()
                .min_by_key(|&&(t, ten, v)| (st.vtime.get(&ten).copied().unwrap_or(0).max(v), t))
                .copied();
            if st.in_flight < self.slots && head.map(|(t, _, _)| t) == Some(ticket) {
                st.waiters.retain(|&(t, _, _)| t != ticket);
                st.in_flight += 1;
                st.floor = st.floor.max(entry_vtime);
                drop(st);
                // Other waiters may now be at the head with free slots left.
                self.available.notify_all();
                return AdmissionGuard {
                    sched: self.clone(),
                    tenant,
                    queue_micros: queued.elapsed().as_micros() as u64,
                    admitted: Instant::now(),
                };
            }
            st = self.available.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// One admitted job's slot. Dropping it frees the slot and charges the
/// tenant's virtual time with the job's wall time over its weight.
pub struct AdmissionGuard {
    sched: Arc<FairScheduler>,
    tenant: u32,
    queue_micros: u64,
    admitted: Instant,
}

impl AdmissionGuard {
    /// Wall micros this job waited in the admission queue.
    pub fn queue_micros(&self) -> u64 {
        self.queue_micros
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let wall = self.admitted.elapsed().as_micros() as u64;
        let mut st = self.sched.lock();
        st.in_flight -= 1;
        let weight = u64::from(*st.weights.get(&self.tenant).unwrap_or(&1)).max(1);
        // `+1` keeps virtual time strictly monotone even for zero-length
        // jobs, so a tenant spinning on empty jobs still falls behind.
        let charge = wall * VTIME_SCALE / weight + 1;
        *st.vtime.entry(self.tenant).or_insert(0) += charge;
        drop(st);
        self.sched.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn cancel_token_is_sticky_and_reports_once() {
        let t = CancelToken::new("alice", 7);
        assert!(!t.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!((t.tenant(), t.job()), ("alice", 7));
        assert!(t.first_report());
        assert!(!t.first_report(), "second observer must not re-report");
        let clone = t.clone();
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn scheduler_caps_concurrency_at_slots() {
        let sched = FairScheduler::new(2);
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for i in 0..8u32 {
                let sched = sched.clone();
                let peak = &peak;
                let live = &live;
                scope.spawn(move || {
                    let _slot = sched.admit(i % 3);
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn heavier_user_accrues_vtime_and_yields_to_light_user() {
        // One slot; the noisy tenant (0) holds it with back-to-back jobs
        // while the light tenant (1) submits. Stride scheduling must admit
        // the light tenant ahead of the noisy tenant's later jobs.
        let sched = FairScheduler::new(1);
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            // Seed: noisy job holds the slot so everyone below queues.
            let first = sched.admit(0);
            for _ in 0..3 {
                let sched = sched.clone();
                let order = &order;
                scope.spawn(move || {
                    let _slot = sched.admit(0);
                    order.lock().unwrap().push(0u32);
                    std::thread::sleep(Duration::from_millis(10));
                });
            }
            // Let the noisy waiters register first.
            std::thread::sleep(Duration::from_millis(20));
            let sched2 = sched.clone();
            let order = &order;
            scope.spawn(move || {
                let _slot = sched2.admit(1);
                order.lock().unwrap().push(1u32);
            });
            std::thread::sleep(Duration::from_millis(20));
            // Charge tenant 0 for the seed job and release the slot.
            drop(first);
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 4);
        // The light tenant (vtime 0) must not be last behind three noisy
        // jobs, each of which charges tenant 0 ~10ms of virtual time.
        let light_pos = order.iter().position(|&t| t == 1).unwrap();
        assert!(
            light_pos <= 1,
            "light tenant admitted at position {light_pos} of {order:?}"
        );
    }

    #[test]
    fn weights_bias_admission_order() {
        // One slot, two tenants with equal demand; tenant 2 has weight 4 so
        // its jobs charge a quarter of the virtual time and it should win
        // the head-to-head admissions after both have run once.
        let sched = FairScheduler::new(1);
        sched.set_weight(2, 4);
        sched.set_weight(3, 1);
        // Charge both tenants one identical job's worth of time.
        for t in [2u32, 3] {
            let slot = sched.admit(t);
            std::thread::sleep(Duration::from_millis(4));
            drop(slot);
        }
        let v = {
            let st = sched.lock();
            (st.vtime[&2], st.vtime[&3])
        };
        assert!(v.0 < v.1, "weight-4 tenant must accrue less vtime: {v:?}");
    }
}
