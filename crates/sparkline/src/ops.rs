//! Physical operator DAG nodes (the "RDD" objects behind a [`crate::Dataset`]).

use crate::context::Context;
use crate::sync::Mutex;
use crate::Data;
use std::sync::Arc;

/// A node in the operator DAG. `compute` materializes one partition; narrow
/// operators call their parent's `compute` recursively (pipelining within the
/// same task), wide operators materialize a shuffle first.
pub trait Op<T: Data>: Send + Sync + 'static {
    /// Number of partitions this operator produces.
    fn num_partitions(&self) -> usize;

    /// Materialize partition `part`.
    fn compute(&self, part: usize, ctx: &Context) -> Vec<T>;

    /// Descriptor of the key partitioner this output is partitioned by, if
    /// any — `Some` only for key-value datasets that went through a
    /// partitioner-aware shuffle. Used for co-partitioned narrow joins.
    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        None
    }

    /// Block-manager dataset id, `Some` only for persist nodes — how
    /// [`crate::Dataset::unpersist`] finds the blocks to drop.
    fn cache_id(&self) -> Option<u64> {
        None
    }

    /// Operator name for debugging / plan explanation.
    fn name(&self) -> String;
}

/// Leaf: an in-memory collection split into near-equal chunks.
pub struct SourceOp<T> {
    parts: Vec<Arc<Vec<T>>>,
}

impl<T: Data> SourceOp<T> {
    pub fn new(data: Vec<T>, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        let total = data.len();
        let chunk = total.div_ceil(partitions).max(1);
        let mut parts: Vec<Arc<Vec<T>>> = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            let p: Vec<T> = it.by_ref().take(chunk).collect();
            parts.push(Arc::new(p));
        }
        SourceOp { parts }
    }
}

impl<T: Data> Op<T> for SourceOp<T> {
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    fn compute(&self, part: usize, _ctx: &Context) -> Vec<T> {
        self.parts[part].as_ref().clone()
    }

    fn name(&self) -> String {
        format!("source[{}]", self.parts.len())
    }
}

/// Narrow transformation: partition-at-a-time function over the parent.
/// Implements `map`, `flat_map`, `filter`, `map_partitions`, `map_values`.
pub struct MapPartitionsOp<T: Data, U: Data> {
    pub(crate) parent: Arc<dyn Op<T>>,
    pub(crate) f: Arc<dyn Fn(usize, Vec<T>) -> Vec<U> + Send + Sync>,
    /// If true, the output keeps the parent's partitioner descriptor (legal
    /// only when keys are not changed, e.g. `map_values`).
    pub(crate) preserves_partitioning: bool,
    pub(crate) label: String,
}

impl<T: Data, U: Data> Op<U> for MapPartitionsOp<T, U> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> Vec<U> {
        let input = self.parent.compute(part, ctx);
        (self.f)(part, input)
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        if self.preserves_partitioning {
            self.parent.partitioner_descriptor()
        } else {
            None
        }
    }

    fn name(&self) -> String {
        format!("{} <- {}", self.label, self.parent.name())
    }
}

/// Concatenation of two datasets; partitions of `left` come first.
pub struct UnionOp<T: Data> {
    pub(crate) left: Arc<dyn Op<T>>,
    pub(crate) right: Arc<dyn Op<T>>,
}

impl<T: Data> Op<T> for UnionOp<T> {
    fn num_partitions(&self) -> usize {
        self.left.num_partitions() + self.right.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> Vec<T> {
        let nl = self.left.num_partitions();
        if part < nl {
            self.left.compute(part, ctx)
        } else {
            self.right.compute(part - nl, ctx)
        }
    }

    fn name(&self) -> String {
        format!("union({}, {})", self.left.name(), self.right.name())
    }
}

/// Caches each partition on first computation (Spark's `persist(MEMORY_ONLY)`).
pub struct CachedOp<T: Data> {
    pub(crate) parent: Arc<dyn Op<T>>,
    pub(crate) slots: Vec<Mutex<Option<Arc<Vec<T>>>>>,
}

impl<T: Data> CachedOp<T> {
    pub(crate) fn new(parent: Arc<dyn Op<T>>) -> Self {
        let n = parent.num_partitions();
        CachedOp {
            parent,
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }
}

impl<T: Data> Op<T> for CachedOp<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> Vec<T> {
        let mut slot = self.slots[part].lock();
        if let Some(cached) = slot.as_ref() {
            return cached.as_ref().clone();
        }
        let data = Arc::new(self.parent.compute(part, ctx));
        *slot = Some(data.clone());
        data.as_ref().clone()
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        self.parent.partitioner_descriptor()
    }

    fn name(&self) -> String {
        format!("cache({})", self.parent.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_splits_evenly() {
        let op = SourceOp::new((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(op.num_partitions(), 3);
        let ctx = Context::new();
        let all: Vec<i32> = (0..3).flat_map(|p| op.compute(p, &ctx)).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn source_with_more_partitions_than_items() {
        let op = SourceOp::new(vec![1, 2], 5);
        assert_eq!(op.num_partitions(), 5);
        let ctx = Context::new();
        let total: usize = (0..5).map(|p| op.compute(p, &ctx).len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn cached_computes_parent_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let src: Arc<dyn Op<i32>> = Arc::new(SourceOp::new(vec![1, 2, 3], 1));
        let counted = Arc::new(MapPartitionsOp {
            parent: src,
            f: Arc::new(move |_, v: Vec<i32>| {
                calls2.fetch_add(1, Ordering::SeqCst);
                v
            }),
            preserves_partitioning: false,
            label: "count".into(),
        });
        let cached = CachedOp::new(counted as Arc<dyn Op<i32>>);
        let ctx = Context::new();
        assert_eq!(cached.compute(0, &ctx), vec![1, 2, 3]);
        assert_eq!(cached.compute(0, &ctx), vec![1, 2, 3]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
