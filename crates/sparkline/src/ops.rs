//! Physical operator DAG nodes (the "RDD" objects behind a [`crate::Dataset`]).

use crate::context::Context;
use crate::stream::{instrument, PartitionStream};
use crate::sync::Mutex;
use crate::Data;
use std::sync::Arc;

/// A node in the operator DAG. `compute` produces one partition as a
/// pull-based [`PartitionStream`]; narrow operators call their parent's
/// `compute` recursively and stack lazy adapters onto the stream (pipelining
/// within the same task, no intermediate collections), wide operators
/// materialize a shuffle first and hand out zero-copy shared views of it.
///
/// Streams are re-creatable: every `compute` call rebuilds from lineage, so
/// task retries, speculation, and cache recomputation see identical data.
pub trait Op<T: Data>: Send + Sync + 'static {
    /// Number of partitions this operator produces.
    fn num_partitions(&self) -> usize;

    /// Produce partition `part` as a stream.
    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<T>;

    /// Descriptor of the key partitioner this output is partitioned by, if
    /// any — `Some` only for key-value datasets that went through a
    /// partitioner-aware shuffle. Used for co-partitioned narrow joins.
    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        None
    }

    /// Block-manager dataset id, `Some` only for persist nodes — how
    /// [`crate::Dataset::unpersist`] finds the blocks to drop.
    fn cache_id(&self) -> Option<u64> {
        None
    }

    /// Operator name for debugging / plan explanation.
    fn name(&self) -> String;
}

/// Leaf: an in-memory collection split into near-equal chunks.
pub struct SourceOp<T> {
    parts: Vec<Arc<Vec<T>>>,
}

impl<T: Data> SourceOp<T> {
    pub fn new(data: Vec<T>, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        let total = data.len();
        let chunk = total.div_ceil(partitions).max(1);
        let mut parts: Vec<Arc<Vec<T>>> = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            let p: Vec<T> = it.by_ref().take(chunk).collect();
            parts.push(Arc::new(p));
        }
        SourceOp { parts }
    }
}

impl<T: Data> Op<T> for SourceOp<T> {
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<T> {
        // Zero-copy: every task (including retries and speculative
        // duplicates) reads the same shared block; no per-task clone.
        instrument(
            PartitionStream::shared(self.parts[part].clone()),
            "source",
            part,
            ctx,
        )
    }

    fn name(&self) -> String {
        format!("source[{}]", self.parts.len())
    }
}

/// Narrow transformation: partition-at-a-time function over the parent's
/// stream. Implements `map`, `flat_map`, `filter`, `map_partitions`,
/// `map_values` — all as lazy stream adapters, so chained narrow ops fuse
/// into one pipeline per task.
pub struct MapPartitionsOp<T: Data, U: Data> {
    pub(crate) parent: Arc<dyn Op<T>>,
    pub(crate) f: Arc<dyn Fn(usize, PartitionStream<T>) -> PartitionStream<U> + Send + Sync>,
    /// If true, the output keeps the parent's partitioner descriptor (legal
    /// only when keys are not changed, e.g. `map_values`).
    pub(crate) preserves_partitioning: bool,
    pub(crate) label: String,
}

impl<T: Data, U: Data> Op<U> for MapPartitionsOp<T, U> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<U> {
        let input = self.parent.compute(part, ctx);
        instrument((self.f)(part, input), &self.label, part, ctx)
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        if self.preserves_partitioning {
            self.parent.partitioner_descriptor()
        } else {
            None
        }
    }

    fn name(&self) -> String {
        format!("{} <- {}", self.label, self.parent.name())
    }
}

/// Concatenation of two datasets; partitions of `left` come first.
pub struct UnionOp<T: Data> {
    pub(crate) left: Arc<dyn Op<T>>,
    pub(crate) right: Arc<dyn Op<T>>,
}

impl<T: Data> Op<T> for UnionOp<T> {
    fn num_partitions(&self) -> usize {
        self.left.num_partitions() + self.right.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<T> {
        let nl = self.left.num_partitions();
        if part < nl {
            self.left.compute(part, ctx)
        } else {
            self.right.compute(part - nl, ctx)
        }
    }

    fn name(&self) -> String {
        format!("union({}, {})", self.left.name(), self.right.name())
    }
}

/// Caches each partition on first computation (Spark's `persist(MEMORY_ONLY)`).
pub struct CachedOp<T: Data> {
    pub(crate) parent: Arc<dyn Op<T>>,
    pub(crate) slots: Vec<Mutex<Option<Arc<Vec<T>>>>>,
}

impl<T: Data> CachedOp<T> {
    pub(crate) fn new(parent: Arc<dyn Op<T>>) -> Self {
        let n = parent.num_partitions();
        CachedOp {
            parent,
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }
}

impl<T: Data> Op<T> for CachedOp<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<T> {
        let mut slot = self.slots[part].lock();
        if let Some(cached) = slot.as_ref() {
            // Cache hit: a refcount bump, not a copy.
            return PartitionStream::shared(cached.clone());
        }
        let data = Arc::new(self.parent.compute(part, ctx).into_vec());
        *slot = Some(data.clone());
        PartitionStream::shared(data)
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        self.parent.partitioner_descriptor()
    }

    fn name(&self) -> String {
        format!("cache({})", self.parent.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_splits_evenly() {
        let op = SourceOp::new((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(op.num_partitions(), 3);
        let ctx = Context::new();
        let all: Vec<i32> = (0..3)
            .flat_map(|p| op.compute(p, &ctx).into_vec())
            .collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn source_with_more_partitions_than_items() {
        let op = SourceOp::new(vec![1, 2], 5);
        assert_eq!(op.num_partitions(), 5);
        let ctx = Context::new();
        let total: usize = (0..5).map(|p| op.compute(p, &ctx).count()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn source_serves_shared_views_not_copies() {
        let op = SourceOp::new((0..100).collect::<Vec<i64>>(), 1);
        let ctx = Context::new();
        let a = op.compute(0, &ctx);
        let b = op.compute(0, &ctx);
        let (block_a, _) = a.as_shared().expect("source must stream shared");
        let (block_b, _) = b.as_shared().expect("source must stream shared");
        assert!(
            Arc::ptr_eq(block_a, block_b),
            "two tasks must observe the same backing allocation"
        );
    }

    #[test]
    fn cached_computes_parent_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let src: Arc<dyn Op<i32>> = Arc::new(SourceOp::new(vec![1, 2, 3], 1));
        let counted = Arc::new(MapPartitionsOp {
            parent: src,
            f: Arc::new(move |_, s: PartitionStream<i32>| {
                calls2.fetch_add(1, Ordering::SeqCst);
                s
            }),
            preserves_partitioning: false,
            label: "count".into(),
        });
        let cached = CachedOp::new(counted as Arc<dyn Op<i32>>);
        let ctx = Context::new();
        assert_eq!(cached.compute(0, &ctx).into_vec(), vec![1, 2, 3]);
        assert_eq!(cached.compute(0, &ctx).into_vec(), vec![1, 2, 3]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cache_hits_share_one_allocation() {
        let src: Arc<dyn Op<i64>> = Arc::new(SourceOp::new((0..50).collect(), 1));
        // A non-shared parent stream, so the cache materializes its own block.
        let mapped = Arc::new(MapPartitionsOp {
            parent: src,
            f: Arc::new(|_, s: PartitionStream<i64>| s.map(|x| x + 1)),
            preserves_partitioning: false,
            label: "map".into(),
        });
        let cached = CachedOp::new(mapped as Arc<dyn Op<i64>>);
        let ctx = Context::new();
        let a = cached.compute(0, &ctx);
        let b = cached.compute(0, &ctx);
        let (block_a, _) = a.as_shared().expect("hit must be shared");
        let (block_b, _) = b.as_shared().expect("hit must be shared");
        assert!(Arc::ptr_eq(block_a, block_b));
    }
}
