//! Pull-based partition streams — the zero-copy execution currency of the
//! runtime.
//!
//! Every [`crate::ops::Op::compute`] returns a [`PartitionStream`] instead of
//! an owned `Vec`. A stream is either:
//!
//! * [`PartitionStream::Iter`] — a lazy boxed iterator chain. Narrow
//!   operators (`map`, `filter`, `flat_map`, ...) stack adapters onto it, so
//!   a `map → filter → map` task pulls records through one fused pipeline
//!   with **no intermediate `Vec` between operators** (Spark's pipelined
//!   narrow stages, which §4–5 of the paper compile comprehensions into).
//! * [`PartitionStream::Shared`] — a zero-copy `(Arc<Vec<T>>, Range)` view of
//!   an already-materialized block: a source partition, a cached/persisted
//!   block, or a materialized shuffle output. Handing the partition to a task
//!   is a refcount bump; consumers that only iterate never copy the backing
//!   allocation, and [`PartitionStream::count`] doesn't even touch it.
//!
//! **Ownership rules.** Operators may consume a stream exactly once. An
//! operator may collect (materialize) only when its semantics require
//! ownership of the whole partition at once — cache/persist stores, shuffle
//! bucket fills, sort/group builds. [`PartitionStream::into_vec`] recovers
//! the backing allocation of an exclusively-held full-range `Shared` for
//! free (`Arc::try_unwrap`), so "collect" after a fused chain costs exactly
//! one materialization.
//!
//! Streams are **re-creatable from lineage, not single-shot**: `compute`
//! builds a fresh stream each call, so task retries, speculative duplicates,
//! and cache recomputation replay identically (chaos semantics are
//! bit-identical to the eager runtime).
//!
//! When tracing is on, [`instrument`] threads per-operator `rows_out` /
//! `bytes_out` counters through the stream: `Shared` outputs (length known)
//! emit an [`Event::OperatorOutput`] immediately and pass through untouched
//! (preserving `Arc` identity for the no-copy guarantees); `Iter` outputs are
//! wrapped in a counting adapter that emits when the task drops it, so
//! partially-drained pipelines report what actually flowed.

use crate::context::Context;
use crate::events::Event;
use crate::Data;
use std::ops::Range;
use std::sync::Arc;

/// One partition's worth of records, pulled lazily or borrowed zero-copy.
pub enum PartitionStream<T: Data> {
    /// Lazy iterator chain; narrow operators fuse into it.
    Iter(Box<dyn Iterator<Item = T> + Send>),
    /// Zero-copy view of a shared, already-materialized block.
    Shared(Arc<Vec<T>>, Range<usize>),
}

impl<T: Data> PartitionStream<T> {
    /// Stream over an owned vector (becomes a full-range exclusive `Shared`,
    /// so a downstream [`PartitionStream::into_vec`] gets it back for free).
    pub fn from_vec(data: Vec<T>) -> Self {
        let len = data.len();
        PartitionStream::Shared(Arc::new(data), 0..len)
    }

    /// Lazy stream over an iterator.
    ///
    /// Not `FromIterator`: that trait would force eager collection to name
    /// the concrete iterator type, and this constructor must stay lazy.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I>(iter: I) -> Self
    where
        I: Iterator<Item = T> + Send + 'static,
    {
        PartitionStream::Iter(Box::new(iter))
    }

    /// Zero-copy view of a whole shared block (cache hit, source partition,
    /// materialized shuffle output): a refcount bump, never a copy.
    pub fn shared(data: Arc<Vec<T>>) -> Self {
        let len = data.len();
        PartitionStream::Shared(data, 0..len)
    }

    /// Zero-copy view of a sub-range of a shared block.
    pub fn shared_range(data: Arc<Vec<T>>, range: Range<usize>) -> Self {
        debug_assert!(range.end <= data.len());
        PartitionStream::Shared(data, range)
    }

    /// The empty stream.
    pub fn empty() -> Self {
        PartitionStream::Iter(Box::new(std::iter::empty()))
    }

    /// Exact length when known without draining (`Shared` views).
    pub fn len_hint(&self) -> Option<usize> {
        match self {
            PartitionStream::Iter(_) => None,
            PartitionStream::Shared(_, range) => Some(range.len()),
        }
    }

    /// The backing shared block and view range, if this stream is a
    /// zero-copy view — lets tests assert allocation identity
    /// (`Arc::ptr_eq`) and lets consumers borrow without cloning.
    pub fn as_shared(&self) -> Option<(&Arc<Vec<T>>, &Range<usize>)> {
        match self {
            PartitionStream::Iter(_) => None,
            PartitionStream::Shared(data, range) => Some((data, range)),
        }
    }

    /// Materialize the stream. Lazy chains collect; an exclusively-held
    /// full-range `Shared` recovers its allocation without copying
    /// (`Arc::try_unwrap`); shared views clone only their range.
    pub fn into_vec(self) -> Vec<T> {
        match self {
            PartitionStream::Iter(iter) => iter.collect(),
            PartitionStream::Shared(data, range) => {
                if range.start == 0 && range.end == data.len() {
                    match Arc::try_unwrap(data) {
                        Ok(v) => v,
                        Err(shared) => shared[..].to_vec(),
                    }
                } else {
                    data[range].to_vec()
                }
            }
        }
    }

    /// Number of records. `Shared` views answer from the range without
    /// touching (or cloning) a single element; lazy chains drain.
    pub fn count(self) -> usize {
        match self {
            PartitionStream::Iter(iter) => iter.count(),
            PartitionStream::Shared(_, range) => range.len(),
        }
    }

    /// Consume the stream read-only. `Shared` views are visited **by
    /// reference** — no per-element clone at all — and lazy chains are
    /// drained; use this when the consumer only inspects records (e.g.
    /// building an aggregate from borrowed tiles).
    pub fn for_each_ref(self, mut f: impl FnMut(&T)) {
        match self {
            PartitionStream::Iter(iter) => {
                for t in iter {
                    f(&t);
                }
            }
            PartitionStream::Shared(data, range) => {
                for t in &data[range] {
                    f(t);
                }
            }
        }
    }

    /// Fused element-wise transform (lazy; no intermediate collection).
    pub fn map<U: Data>(self, f: impl Fn(T) -> U + Send + 'static) -> PartitionStream<U> {
        PartitionStream::Iter(Box::new(self.into_iter().map(f)))
    }

    /// Fused filter (lazy).
    pub fn filter(self, f: impl Fn(&T) -> bool + Send + 'static) -> PartitionStream<T> {
        PartitionStream::Iter(Box::new(self.into_iter().filter(move |t| f(t))))
    }

    /// Fused element-to-many transform (lazy). Each element's expansion is
    /// buffered individually; no whole-partition collection happens.
    pub fn flat_map<U: Data, I: IntoIterator<Item = U>>(
        self,
        f: impl Fn(T) -> I + Send + 'static,
    ) -> PartitionStream<U> {
        PartitionStream::Iter(Box::new(
            self.into_iter()
                .flat_map(move |t| f(t).into_iter().collect::<Vec<U>>()),
        ))
    }
}

/// Iterator over a shared block view, cloning elements on demand (the
/// backing allocation itself is never copied).
pub struct SharedIter<T> {
    data: Arc<Vec<T>>,
    range: Range<usize>,
}

impl<T: Clone> Iterator for SharedIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let i = self.range.next()?;
        Some(self.data[i].clone())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl<T: Data> IntoIterator for PartitionStream<T> {
    type Item = T;
    type IntoIter = Box<dyn Iterator<Item = T> + Send>;

    fn into_iter(self) -> Self::IntoIter {
        match self {
            PartitionStream::Iter(iter) => iter,
            PartitionStream::Shared(data, range) => Box::new(SharedIter { data, range }),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-operator cardinality instrumentation
// ---------------------------------------------------------------------------

/// Estimated wire bytes for `rows` records of `T` — the shallow estimate the
/// `bytes_out` counters report (narrow operators can't assume a [`crate::SizeOf`]
/// bound on arbitrary element types).
fn bytes_estimate<T>(rows: u64) -> u64 {
    rows * std::mem::size_of::<T>() as u64
}

/// Iterator adapter counting what actually flows through a lazy pipeline;
/// emits one [`Event::OperatorOutput`] when the consumer drops it, so
/// partial drains report partial counts.
struct CountingIter<T> {
    inner: Box<dyn Iterator<Item = T> + Send>,
    rows: u64,
    operator: String,
    part: usize,
    ctx: Context,
}

impl<T> Iterator for CountingIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let item = self.inner.next();
        if item.is_some() {
            self.rows += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<T> Drop for CountingIter<T> {
    fn drop(&mut self) {
        // A task unwinding mid-drain (chaos-injected failure, cooperative
        // cancellation, any in-task panic) did not complete: its partial
        // counts describe work that is discarded and retried, and emitting
        // them would pollute `StageProfile::operators` with phantom rows.
        // Successful tasks that legitimately stop early (e.g. `take`) drop
        // without panicking and still report what actually flowed.
        if std::thread::panicking() {
            return;
        }
        self.ctx.events().emit(Event::OperatorOutput {
            stage_id: crate::context::current_stage(),
            task: self.part,
            operator: std::mem::take(&mut self.operator),
            rows: self.rows,
            bytes: bytes_estimate::<T>(self.rows),
        });
    }
}

/// Thread `rows_out` / `bytes_out` counters onto a stream when tracing.
///
/// `Shared` streams have a known length: the event is emitted immediately
/// and the stream passes through **untouched**, preserving `Arc` identity
/// (the zero-copy guarantees stay observable under tracing). Lazy streams
/// are wrapped in a counting adapter that emits on drop. With tracing off
/// this is a no-op.
pub(crate) fn instrument<T: Data>(
    stream: PartitionStream<T>,
    operator: &str,
    part: usize,
    ctx: &Context,
) -> PartitionStream<T> {
    if !ctx.events().is_enabled() {
        return stream;
    }
    match stream {
        PartitionStream::Shared(data, range) => {
            let rows = range.len() as u64;
            ctx.events().emit(Event::OperatorOutput {
                stage_id: crate::context::current_stage(),
                task: part,
                operator: operator.to_string(),
                rows,
                bytes: bytes_estimate::<T>(rows),
            });
            PartitionStream::Shared(data, range)
        }
        PartitionStream::Iter(inner) => PartitionStream::Iter(Box::new(CountingIter {
            inner,
            rows: 0,
            operator: operator.to_string(),
            part,
            ctx: ctx.clone(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_into_vec_recovers_allocation_without_copy() {
        let v = vec![1, 2, 3];
        let ptr = v.as_ptr();
        let s = PartitionStream::from_vec(v);
        let back = s.into_vec();
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(back.as_ptr(), ptr, "exclusive full-range view must move");
    }

    #[test]
    fn shared_view_never_steals_the_block() {
        let block = Arc::new(vec![10, 20, 30, 40]);
        let s = PartitionStream::shared(block.clone());
        assert_eq!(s.len_hint(), Some(4));
        assert_eq!(s.into_vec(), vec![10, 20, 30, 40]);
        assert_eq!(Arc::strong_count(&block), 1, "view released its refcount");
    }

    #[test]
    fn shared_range_clones_only_its_window() {
        let block = Arc::new(vec![0, 1, 2, 3, 4, 5]);
        let s = PartitionStream::shared_range(block.clone(), 2..5);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn count_on_shared_is_range_len() {
        let s = PartitionStream::shared(Arc::new(vec![1u8; 1000]));
        assert_eq!(s.count(), 1000);
    }

    #[test]
    fn adapters_fuse_lazily() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pulled = Arc::new(AtomicUsize::new(0));
        let p = pulled.clone();
        let s = PartitionStream::from_iter((0..100).inspect(move |_| {
            p.fetch_add(1, Ordering::SeqCst);
        }))
        .map(|x| x * 2)
        .filter(|x| x % 4 == 0)
        .flat_map(|x| [x, x + 1]);
        // Building the chain pulls nothing.
        assert_eq!(pulled.load(Ordering::SeqCst), 0);
        let mut it = s.into_iter();
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next(), Some(1));
        // Pulling two outputs consumed at most two source elements (x=0 maps
        // to 0, keeps; x=1 maps to 2, filtered on the third pull).
        assert!(pulled.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn empty_stream_is_empty() {
        assert_eq!(PartitionStream::<i32>::empty().count(), 0);
        assert!(PartitionStream::<i32>::empty().into_vec().is_empty());
    }

    #[test]
    fn instrument_counts_lazy_and_shared_streams() {
        let ctx = Context::new();
        ctx.trace();
        let lazy = instrument(PartitionStream::from_iter(0..5i64), "map", 0, &ctx);
        assert_eq!(lazy.into_vec(), vec![0, 1, 2, 3, 4]);
        let block = Arc::new(vec![7i64, 8]);
        let shared = instrument(PartitionStream::shared(block.clone()), "source", 1, &ctx);
        // Shared streams pass through untouched: same backing allocation.
        let (seen, _) = shared.as_shared().expect("still shared");
        assert!(Arc::ptr_eq(seen, &block));
        drop(shared);
        let events = ctx.take_events();
        let outputs: Vec<(&str, u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                Event::OperatorOutput {
                    operator,
                    rows,
                    bytes,
                    ..
                } => Some((operator.as_str(), *rows, *bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(outputs, vec![("map", 5, 40), ("source", 2, 16)]);
    }

    #[test]
    fn panicking_drop_suppresses_operator_output() {
        let ctx = Context::new();
        ctx.trace();
        let inner = ctx.clone();
        // A consumer that drains part of the pipeline and then dies: the
        // counting adapter is dropped during the unwind and must not report
        // the partial count as if the task had completed.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut it =
                instrument(PartitionStream::from_iter(0..100i64), "map", 0, &inner).into_iter();
            it.next();
            it.next();
            panic!("task died mid-drain");
        }));
        assert!(unwound.is_err());
        assert!(
            ctx.take_events()
                .iter()
                .all(|e| !matches!(e, Event::OperatorOutput { .. })),
            "partially-consumed pipeline of a failed task must not emit stats"
        );
        // A non-panicking partial drain still reports (the documented
        // partial-drain semantics).
        let mut it = instrument(PartitionStream::from_iter(0..100i64), "map", 0, &ctx).into_iter();
        it.next();
        it.next();
        drop(it);
        let rows: Vec<u64> = ctx
            .take_events()
            .iter()
            .filter_map(|e| match e {
                Event::OperatorOutput { rows, .. } => Some(*rows),
                _ => None,
            })
            .collect();
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn instrument_reports_partial_drains() {
        let ctx = Context::new();
        ctx.trace();
        let s = instrument(PartitionStream::from_iter(0..100i32), "map", 3, &ctx);
        let mut it = s.into_iter();
        it.next();
        it.next();
        drop(it);
        let events = ctx.take_events();
        let rows: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::OperatorOutput { rows, .. } => Some(*rows),
                _ => None,
            })
            .collect();
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn instrument_is_a_no_op_untraced() {
        let ctx = Context::new();
        let block = Arc::new(vec![1, 2, 3]);
        let s = instrument(PartitionStream::shared(block.clone()), "source", 0, &ctx);
        let (seen, _) = s.as_shared().expect("shared passes through");
        assert!(Arc::ptr_eq(seen, &block));
        assert!(ctx.take_events().is_empty());
    }
}
