//! Structured runtime events — sparkline's analog of Spark's listener bus
//! and event log.
//!
//! The scheduler ([`crate::Context`]) and the shuffle machinery emit one
//! [`Event`] per interesting occurrence: job and stage boundaries with
//! wall-clock timing, every task attempt (including retries and injected
//! failures), and per-task shuffle bytes/records written and read. Events
//! are gathered by the context's [`EventCollector`] and can be folded into a
//! queryable [`crate::profile::JobProfile`] or serialized as a JSON event
//! log (see `EXPERIMENTS.md` for the schema).
//!
//! Collection is off by default and costs one relaxed atomic load per
//! emission site when disabled, so the instrumented hot paths stay cheap.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One structured runtime event. Timestamps are microseconds since the
/// collector's epoch (context creation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An action (job) started on the driver.
    JobStart {
        job_id: u64,
        /// Action name, e.g. `collect` or `count`.
        label: String,
        at_micros: u64,
    },
    /// The matching action finished (successfully or not).
    JobEnd { job_id: u64, wall_micros: u64 },
    /// A stage of `tasks` tasks was submitted to the executor pool.
    StageStart {
        stage_id: u64,
        /// Innermost job running when the stage was submitted, if any.
        job_id: Option<u64>,
        /// Scheduler-level stage kind, e.g. `shuffle.map(reduceByKey)` or
        /// `action(collect)`.
        label: String,
        /// Plan node that produced this stage (set by the planner), e.g.
        /// `contraction/groupByJoin`.
        tag: Option<String>,
        /// Operator lineage of the stage's input, innermost source last.
        lineage: Option<String>,
        tasks: usize,
        at_micros: u64,
    },
    /// One task attempt finished. Failed attempts (`ok == false`) are
    /// emitted too, so retry storms are visible; `injected` marks failures
    /// planted by [`crate::Context::inject_task_failures`].
    TaskEnd {
        stage_id: u64,
        task: usize,
        attempt: u32,
        wall_micros: u64,
        ok: bool,
        injected: bool,
    },
    /// All tasks of the stage completed.
    StageEnd { stage_id: u64, wall_micros: u64 },
    /// One map task's shuffle output (its partition of the shuffle write).
    ShuffleWrite {
        stage_id: u64,
        shuffle_id: u64,
        operator: String,
        task: usize,
        bytes: u64,
        records: u64,
    },
    /// One reduce task's shuffle input (its partition of the shuffle read).
    ShuffleRead {
        stage_id: u64,
        shuffle_id: u64,
        operator: String,
        task: usize,
        bytes: u64,
        records: u64,
    },
    /// One operator's output cardinality for one task attempt: how many rows
    /// flowed out of the operator's stream and a shallow byte estimate
    /// (`rows × size_of::<T>()`). Emitted once per operator per task attempt
    /// when tracing is on; retried or speculated attempts emit again, so
    /// consumers aggregating exact counts should run with chaos off.
    OperatorOutput {
        /// Innermost stage whose task drained the stream, if any (driver-side
        /// drains carry no stage).
        stage_id: Option<u64>,
        task: usize,
        operator: String,
        rows: u64,
        bytes: u64,
    },
    /// A persisted partition was served from the block manager.
    CacheHit {
        /// Persisted dataset id ([`crate::storage::BlockManager`] key).
        dataset: u64,
        partition: usize,
        /// Estimated in-memory size of the block.
        bytes: u64,
        /// True if the block was decoded from a spill file.
        from_disk: bool,
        /// Innermost stage whose task performed the read, if any (cache
        /// reads on the driver carry no stage).
        stage_id: Option<u64>,
    },
    /// A persisted partition was requested before it was ever stored.
    CacheMiss {
        dataset: u64,
        partition: usize,
        stage_id: Option<u64>,
    },
    /// A block was evicted to fit the storage budget; `spilled` says whether
    /// it moved to disk (else it was dropped and must be recomputed).
    CacheEvict {
        dataset: u64,
        partition: usize,
        bytes: u64,
        spilled: bool,
        stage_id: Option<u64>,
    },
    /// A block was written to a spill file (eviction of a disk-level block,
    /// or a direct spill of a block larger than the whole budget).
    CacheSpill {
        dataset: u64,
        partition: usize,
        bytes: u64,
        stage_id: Option<u64>,
    },
    /// A previously evicted partition was recomputed from lineage.
    CacheRecompute {
        dataset: u64,
        partition: usize,
        stage_id: Option<u64>,
    },
    /// A logical executor died (chaos kill or
    /// [`crate::Context::kill_executor`]): the shuffle map outputs and
    /// cached blocks it owned are lost and will be recomputed on demand.
    ExecutorLost {
        executor: usize,
        /// Live shuffle map outputs swept with the executor.
        lost_map_outputs: u64,
        /// Cached blocks swept with the executor.
        lost_blocks: u64,
        at_micros: u64,
    },
    /// A worker *process* died (chaos `kill -9`, a crash, or a blown
    /// heartbeat deadline) and was respawned with an empty block store. The
    /// logical executors it hosted are swept like an
    /// [`Event::ExecutorLost`] each.
    WorkerLost {
        worker: usize,
        /// How many logical executors were hosted on (and swept with) it.
        executors: u64,
        at_micros: u64,
    },
    /// One remote shuffle-fetch attempt failed (dead worker, dropped stream,
    /// CRC-rejected frame) and is being retried with backoff. `attempt` is
    /// 0-based; exhausting the retry budget escalates to
    /// [`Event::FetchFailed`].
    FetchRetry {
        shuffle_id: u64,
        reduce_task: usize,
        map_partition: usize,
        attempt: u32,
    },
    /// A reduce task found map outputs missing (executor loss or an injected
    /// fetch failure) and handed the stage back for resubmission instead of
    /// panicking.
    FetchFailed {
        shuffle_id: u64,
        /// The reduce stage whose task observed the failure.
        stage_id: u64,
        reduce_task: usize,
        /// How many map outputs that task found missing.
        lost_map_outputs: u64,
    },
    /// The scheduler resubmitted a shuffle's map stage covering only its
    /// missing partitions. `attempt` counts resubmissions of this shuffle
    /// (the initial stage is attempt 0).
    StageResubmitted {
        shuffle_id: u64,
        attempt: u32,
        /// Map partitions recomputed by this resubmission.
        missing_tasks: u64,
    },
    /// A straggling task got a duplicate attempt on another executor
    /// (speculative execution); the first result wins.
    TaskSpeculated {
        stage_id: u64,
        task: usize,
        /// Executor running the duplicate attempt.
        executor: usize,
    },
    /// The planner resolved a cost-based physical choice (`plan.chosen`).
    /// Stage tags of the plan's shuffles equal `chosen`, which is how
    /// profiles pair the estimate with the actual shuffle bytes.
    PlanChosen {
        /// Chosen strategy tag, e.g. `contraction/broadcast`.
        chosen: String,
        /// False when the strategy was pinned by configuration.
        auto: bool,
        /// Resolved shuffle partition count the plan runs with.
        partitions: u64,
        /// Estimated shuffle bytes of the chosen strategy.
        est_shuffle_bytes: u64,
        /// `(strategy tag, estimated shuffle bytes)` for every candidate the
        /// cost model considered eligible.
        candidates: Vec<(String, u64)>,
        at_micros: u64,
    },
    /// The adaptive stage driver revised a plan-time decision at a stage
    /// frontier (`plan_replanned`): measured statistics from the node's
    /// materialized inputs re-ran the cost model and either switched the
    /// physical strategy, changed the shuffle partition count, or both.
    /// Emitted only when something actually changed — a frozen or honest
    /// plan produces none.
    PlanReplanned {
        /// Plan-node tag the re-decision applies to (the tag its shuffle
        /// stages carry), e.g. `contraction/reduceByKey`.
        tag: String,
        /// Strategy tag chosen at plan time.
        from: String,
        /// Strategy tag the node actually runs with.
        to: String,
        /// Plan-time estimated shuffle bytes of `from`.
        est_shuffle_bytes: u64,
        /// Re-costed shuffle bytes of `to` under the measured statistics.
        observed_bytes: u64,
        /// Shuffle partition count the remainder runs with (doubled when
        /// the frontier revealed >= 2x partition skew).
        partitions: u64,
        at_micros: u64,
    },
    /// The query service's fair scheduler granted a tenant job one of its
    /// admission slots. `queue_micros` is the wall time the job waited in the
    /// admission queue.
    JobAdmitted {
        /// Tenant name as registered with the service.
        tenant: String,
        /// Service-level job id (a separate id space from runtime `job_id`s:
        /// one admitted service job typically runs several runtime jobs).
        job: u64,
        queue_micros: u64,
        at_micros: u64,
    },
    /// A cooperative cancellation was observed at a task boundary: the
    /// in-flight tasks of the current stage finish, no further tasks of the
    /// job are launched, and the driver unwinds with a cancellation payload.
    /// Emitted once per cancelled job.
    JobCancelled {
        tenant: String,
        /// Service-level job id (see [`Event::JobAdmitted`]).
        job: u64,
        /// Stage whose worker observed the cancellation, if any.
        stage_id: Option<u64>,
        at_micros: u64,
    },
    /// A query's physical plan was served from the service's plan cache
    /// instead of being re-planned. `key` is the cache key hash (canonical
    /// comprehension text plus binding fingerprints and planner knobs).
    PlanCacheHit {
        tenant: String,
        key: u64,
        at_micros: u64,
    },
    /// The planner collapsed an elementwise region into one fused tile
    /// program (`region_fused`): `ops` compiled instructions over `inputs`
    /// tile inputs, executed as a single kernel pass per tile.
    RegionFused {
        /// Compiled instruction count of the fused program (after constant
        /// folding).
        ops: u64,
        /// Number of tile inputs joined into the region.
        inputs: u64,
        /// Compiled program signature (also folded into service plan-cache
        /// keys).
        signature: String,
        /// Post-order source operator tags of the region, `;`-joined.
        source: String,
        at_micros: u64,
    },
}

/// Lock-cheap event sink owned by a [`crate::Context`].
///
/// Disabled collectors only pay an atomic load per [`EventCollector::emit`];
/// enabled ones append to a mutex-guarded buffer (events are emitted from
/// executor threads).
pub struct EventCollector {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Default for EventCollector {
    fn default() -> Self {
        EventCollector {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }
}

impl EventCollector {
    /// Is collection currently on? Emission sites check this before building
    /// event payloads so the disabled path does no allocation.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn collection on or off. Already-buffered events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since the collector was created.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Append one event if collection is enabled.
    pub fn emit(&self, event: Event) {
        if self.is_enabled() {
            self.events.lock().push(event);
        }
    }

    /// Remove and return everything collected so far.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }
}

// ---------------------------------------------------------------------------
// JSON serialization (hand-rolled: the build environment has no serde).
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    fn new(kind: &str) -> Self {
        let mut o = JsonObject {
            buf: String::from("{"),
            first: true,
        };
        o.str_field("type", kind);
        o
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_json(key, &mut self.buf);
        self.buf.push(':');
    }

    fn num_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        escape_json(value, &mut self.buf);
        self
    }

    fn opt_num_field(&mut self, key: &str, value: Option<u64>) -> &mut Self {
        match value {
            Some(v) => self.num_field(key, v),
            None => {
                self.key(key);
                self.buf.push_str("null");
                self
            }
        }
    }

    fn opt_str_field(&mut self, key: &str, value: Option<&str>) -> &mut Self {
        match value {
            Some(v) => self.str_field(key, v),
            None => {
                self.key(key);
                self.buf.push_str("null");
                self
            }
        }
    }

    /// Array of `{"strategy": ..., "est_bytes": ...}` objects.
    fn candidates_field(&mut self, key: &str, items: &[(String, u64)]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, (tag, bytes)) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str("{\"strategy\":");
            escape_json(tag, &mut self.buf);
            self.buf.push_str(",\"est_bytes\":");
            self.buf.push_str(&bytes.to_string());
            self.buf.push('}');
        }
        self.buf.push(']');
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Event {
    /// One-line JSON object for this event.
    pub fn to_json(&self) -> String {
        match self {
            Event::JobStart {
                job_id,
                label,
                at_micros,
            } => {
                let mut o = JsonObject::new("job_start");
                o.num_field("job_id", *job_id)
                    .str_field("label", label)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::JobEnd {
                job_id,
                wall_micros,
            } => {
                let mut o = JsonObject::new("job_end");
                o.num_field("job_id", *job_id)
                    .num_field("wall_micros", *wall_micros);
                o.finish()
            }
            Event::StageStart {
                stage_id,
                job_id,
                label,
                tag,
                lineage,
                tasks,
                at_micros,
            } => {
                let mut o = JsonObject::new("stage_start");
                o.num_field("stage_id", *stage_id)
                    .opt_num_field("job_id", *job_id)
                    .str_field("label", label)
                    .opt_str_field("tag", tag.as_deref())
                    .opt_str_field("lineage", lineage.as_deref())
                    .num_field("tasks", *tasks as u64)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::TaskEnd {
                stage_id,
                task,
                attempt,
                wall_micros,
                ok,
                injected,
            } => {
                let mut o = JsonObject::new("task_end");
                o.num_field("stage_id", *stage_id)
                    .num_field("task", *task as u64)
                    .num_field("attempt", *attempt as u64)
                    .num_field("wall_micros", *wall_micros)
                    .bool_field("ok", *ok)
                    .bool_field("injected", *injected);
                o.finish()
            }
            Event::StageEnd {
                stage_id,
                wall_micros,
            } => {
                let mut o = JsonObject::new("stage_end");
                o.num_field("stage_id", *stage_id)
                    .num_field("wall_micros", *wall_micros);
                o.finish()
            }
            Event::ShuffleWrite {
                stage_id,
                shuffle_id,
                operator,
                task,
                bytes,
                records,
            } => {
                let mut o = JsonObject::new("shuffle_write");
                o.num_field("stage_id", *stage_id)
                    .num_field("shuffle_id", *shuffle_id)
                    .str_field("operator", operator)
                    .num_field("task", *task as u64)
                    .num_field("bytes", *bytes)
                    .num_field("records", *records);
                o.finish()
            }
            Event::ShuffleRead {
                stage_id,
                shuffle_id,
                operator,
                task,
                bytes,
                records,
            } => {
                let mut o = JsonObject::new("shuffle_read");
                o.num_field("stage_id", *stage_id)
                    .num_field("shuffle_id", *shuffle_id)
                    .str_field("operator", operator)
                    .num_field("task", *task as u64)
                    .num_field("bytes", *bytes)
                    .num_field("records", *records);
                o.finish()
            }
            Event::OperatorOutput {
                stage_id,
                task,
                operator,
                rows,
                bytes,
            } => {
                let mut o = JsonObject::new("operator_output");
                o.opt_num_field("stage_id", *stage_id)
                    .num_field("task", *task as u64)
                    .str_field("operator", operator)
                    .num_field("rows", *rows)
                    .num_field("bytes", *bytes);
                o.finish()
            }
            Event::CacheHit {
                dataset,
                partition,
                bytes,
                from_disk,
                stage_id,
            } => {
                let mut o = JsonObject::new("cache_hit");
                o.num_field("dataset", *dataset)
                    .num_field("partition", *partition as u64)
                    .num_field("bytes", *bytes)
                    .bool_field("from_disk", *from_disk)
                    .opt_num_field("stage_id", *stage_id);
                o.finish()
            }
            Event::CacheMiss {
                dataset,
                partition,
                stage_id,
            } => {
                let mut o = JsonObject::new("cache_miss");
                o.num_field("dataset", *dataset)
                    .num_field("partition", *partition as u64)
                    .opt_num_field("stage_id", *stage_id);
                o.finish()
            }
            Event::CacheEvict {
                dataset,
                partition,
                bytes,
                spilled,
                stage_id,
            } => {
                let mut o = JsonObject::new("cache_evict");
                o.num_field("dataset", *dataset)
                    .num_field("partition", *partition as u64)
                    .num_field("bytes", *bytes)
                    .bool_field("spilled", *spilled)
                    .opt_num_field("stage_id", *stage_id);
                o.finish()
            }
            Event::CacheSpill {
                dataset,
                partition,
                bytes,
                stage_id,
            } => {
                let mut o = JsonObject::new("cache_spill");
                o.num_field("dataset", *dataset)
                    .num_field("partition", *partition as u64)
                    .num_field("bytes", *bytes)
                    .opt_num_field("stage_id", *stage_id);
                o.finish()
            }
            Event::CacheRecompute {
                dataset,
                partition,
                stage_id,
            } => {
                let mut o = JsonObject::new("cache_recompute");
                o.num_field("dataset", *dataset)
                    .num_field("partition", *partition as u64)
                    .opt_num_field("stage_id", *stage_id);
                o.finish()
            }
            Event::ExecutorLost {
                executor,
                lost_map_outputs,
                lost_blocks,
                at_micros,
            } => {
                let mut o = JsonObject::new("executor_lost");
                o.num_field("executor", *executor as u64)
                    .num_field("lost_map_outputs", *lost_map_outputs)
                    .num_field("lost_blocks", *lost_blocks)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::WorkerLost {
                worker,
                executors,
                at_micros,
            } => {
                let mut o = JsonObject::new("worker_lost");
                o.num_field("worker", *worker as u64)
                    .num_field("executors", *executors)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::FetchRetry {
                shuffle_id,
                reduce_task,
                map_partition,
                attempt,
            } => {
                let mut o = JsonObject::new("fetch_retry");
                o.num_field("shuffle_id", *shuffle_id)
                    .num_field("reduce_task", *reduce_task as u64)
                    .num_field("map_partition", *map_partition as u64)
                    .num_field("attempt", u64::from(*attempt));
                o.finish()
            }
            Event::FetchFailed {
                shuffle_id,
                stage_id,
                reduce_task,
                lost_map_outputs,
            } => {
                let mut o = JsonObject::new("fetch_failed");
                o.num_field("shuffle_id", *shuffle_id)
                    .num_field("stage_id", *stage_id)
                    .num_field("reduce_task", *reduce_task as u64)
                    .num_field("lost_map_outputs", *lost_map_outputs);
                o.finish()
            }
            Event::StageResubmitted {
                shuffle_id,
                attempt,
                missing_tasks,
            } => {
                let mut o = JsonObject::new("stage_resubmitted");
                o.num_field("shuffle_id", *shuffle_id)
                    .num_field("attempt", u64::from(*attempt))
                    .num_field("missing_tasks", *missing_tasks);
                o.finish()
            }
            Event::TaskSpeculated {
                stage_id,
                task,
                executor,
            } => {
                let mut o = JsonObject::new("task_speculated");
                o.num_field("stage_id", *stage_id)
                    .num_field("task", *task as u64)
                    .num_field("executor", *executor as u64);
                o.finish()
            }
            Event::PlanChosen {
                chosen,
                auto,
                partitions,
                est_shuffle_bytes,
                candidates,
                at_micros,
            } => {
                let mut o = JsonObject::new("plan_chosen");
                o.str_field("chosen", chosen)
                    .bool_field("auto", *auto)
                    .num_field("partitions", *partitions)
                    .num_field("est_shuffle_bytes", *est_shuffle_bytes)
                    .candidates_field("candidates", candidates)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::PlanReplanned {
                tag,
                from,
                to,
                est_shuffle_bytes,
                observed_bytes,
                partitions,
                at_micros,
            } => {
                let mut o = JsonObject::new("plan_replanned");
                o.str_field("tag", tag)
                    .str_field("from", from)
                    .str_field("to", to)
                    .num_field("est_shuffle_bytes", *est_shuffle_bytes)
                    .num_field("observed_bytes", *observed_bytes)
                    .num_field("partitions", *partitions)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::JobAdmitted {
                tenant,
                job,
                queue_micros,
                at_micros,
            } => {
                let mut o = JsonObject::new("job_admitted");
                o.str_field("tenant", tenant)
                    .num_field("job", *job)
                    .num_field("queue_micros", *queue_micros)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::JobCancelled {
                tenant,
                job,
                stage_id,
                at_micros,
            } => {
                let mut o = JsonObject::new("job_cancelled");
                o.str_field("tenant", tenant)
                    .num_field("job", *job)
                    .opt_num_field("stage_id", *stage_id)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::PlanCacheHit {
                tenant,
                key,
                at_micros,
            } => {
                let mut o = JsonObject::new("plan_cache_hit");
                o.str_field("tenant", tenant)
                    .num_field("key", *key)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
            Event::RegionFused {
                ops,
                inputs,
                signature,
                source,
                at_micros,
            } => {
                let mut o = JsonObject::new("region_fused");
                o.num_field("ops", *ops)
                    .num_field("inputs", *inputs)
                    .str_field("signature", signature)
                    .str_field("source", source)
                    .num_field("at_micros", *at_micros);
                o.finish()
            }
        }
    }
}

/// Serialize an event log as a JSON array, one event per line.
pub fn to_json(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&e.to_json());
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------------
// JSON parsing (minimal, for consuming recorded event logs in tests/tools).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("short \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

impl JsonValue {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(JsonValue::Num(n)) => Ok(*n),
            other => Err(format!("field `{key}`: expected number, got {other:?}")),
        }
    }

    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            other => Err(format!("field `{key}`: expected bool, got {other:?}")),
        }
    }

    fn str_of(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            other => Err(format!("field `{key}`: expected string, got {other:?}")),
        }
    }

    fn opt_num(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            Some(JsonValue::Num(n)) => Ok(Some(*n)),
            Some(JsonValue::Null) | None => Ok(None),
            other => Err(format!(
                "field `{key}`: expected number|null, got {other:?}"
            )),
        }
    }

    fn opt_str(&self, key: &str) -> Result<Option<String>, String> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
            Some(JsonValue::Null) | None => Ok(None),
            other => Err(format!(
                "field `{key}`: expected string|null, got {other:?}"
            )),
        }
    }

    /// Array of `{"strategy", "est_bytes"}` objects (see
    /// [`JsonObject::candidates_field`]).
    fn candidates(&self, key: &str) -> Result<Vec<(String, u64)>, String> {
        match self.get(key) {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|it| Ok((it.str_of("strategy")?, it.num("est_bytes")?)))
                .collect(),
            other => Err(format!("field `{key}`: expected array, got {other:?}")),
        }
    }
}

fn event_from_json(v: &JsonValue) -> Result<Event, String> {
    let kind = v.str_of("type")?;
    match kind.as_str() {
        "job_start" => Ok(Event::JobStart {
            job_id: v.num("job_id")?,
            label: v.str_of("label")?,
            at_micros: v.num("at_micros")?,
        }),
        "job_end" => Ok(Event::JobEnd {
            job_id: v.num("job_id")?,
            wall_micros: v.num("wall_micros")?,
        }),
        "stage_start" => Ok(Event::StageStart {
            stage_id: v.num("stage_id")?,
            job_id: v.opt_num("job_id")?,
            label: v.str_of("label")?,
            tag: v.opt_str("tag")?,
            lineage: v.opt_str("lineage")?,
            tasks: v.num("tasks")? as usize,
            at_micros: v.num("at_micros")?,
        }),
        "task_end" => Ok(Event::TaskEnd {
            stage_id: v.num("stage_id")?,
            task: v.num("task")? as usize,
            attempt: v.num("attempt")? as u32,
            wall_micros: v.num("wall_micros")?,
            ok: v.boolean("ok")?,
            injected: v.boolean("injected")?,
        }),
        "stage_end" => Ok(Event::StageEnd {
            stage_id: v.num("stage_id")?,
            wall_micros: v.num("wall_micros")?,
        }),
        "shuffle_write" => Ok(Event::ShuffleWrite {
            stage_id: v.num("stage_id")?,
            shuffle_id: v.num("shuffle_id")?,
            operator: v.str_of("operator")?,
            task: v.num("task")? as usize,
            bytes: v.num("bytes")?,
            records: v.num("records")?,
        }),
        "shuffle_read" => Ok(Event::ShuffleRead {
            stage_id: v.num("stage_id")?,
            shuffle_id: v.num("shuffle_id")?,
            operator: v.str_of("operator")?,
            task: v.num("task")? as usize,
            bytes: v.num("bytes")?,
            records: v.num("records")?,
        }),
        "operator_output" => Ok(Event::OperatorOutput {
            stage_id: v.opt_num("stage_id")?,
            task: v.num("task")? as usize,
            operator: v.str_of("operator")?,
            rows: v.num("rows")?,
            bytes: v.num("bytes")?,
        }),
        "cache_hit" => Ok(Event::CacheHit {
            dataset: v.num("dataset")?,
            partition: v.num("partition")? as usize,
            bytes: v.num("bytes")?,
            from_disk: v.boolean("from_disk")?,
            stage_id: v.opt_num("stage_id")?,
        }),
        "cache_miss" => Ok(Event::CacheMiss {
            dataset: v.num("dataset")?,
            partition: v.num("partition")? as usize,
            stage_id: v.opt_num("stage_id")?,
        }),
        "cache_evict" => Ok(Event::CacheEvict {
            dataset: v.num("dataset")?,
            partition: v.num("partition")? as usize,
            bytes: v.num("bytes")?,
            spilled: v.boolean("spilled")?,
            stage_id: v.opt_num("stage_id")?,
        }),
        "cache_spill" => Ok(Event::CacheSpill {
            dataset: v.num("dataset")?,
            partition: v.num("partition")? as usize,
            bytes: v.num("bytes")?,
            stage_id: v.opt_num("stage_id")?,
        }),
        "cache_recompute" => Ok(Event::CacheRecompute {
            dataset: v.num("dataset")?,
            partition: v.num("partition")? as usize,
            stage_id: v.opt_num("stage_id")?,
        }),
        "executor_lost" => Ok(Event::ExecutorLost {
            executor: v.num("executor")? as usize,
            lost_map_outputs: v.num("lost_map_outputs")?,
            lost_blocks: v.num("lost_blocks")?,
            at_micros: v.num("at_micros")?,
        }),
        "worker_lost" => Ok(Event::WorkerLost {
            worker: v.num("worker")? as usize,
            executors: v.num("executors")?,
            at_micros: v.num("at_micros")?,
        }),
        "fetch_retry" => Ok(Event::FetchRetry {
            shuffle_id: v.num("shuffle_id")?,
            reduce_task: v.num("reduce_task")? as usize,
            map_partition: v.num("map_partition")? as usize,
            attempt: v.num("attempt")? as u32,
        }),
        "fetch_failed" => Ok(Event::FetchFailed {
            shuffle_id: v.num("shuffle_id")?,
            stage_id: v.num("stage_id")?,
            reduce_task: v.num("reduce_task")? as usize,
            lost_map_outputs: v.num("lost_map_outputs")?,
        }),
        "stage_resubmitted" => Ok(Event::StageResubmitted {
            shuffle_id: v.num("shuffle_id")?,
            attempt: v.num("attempt")? as u32,
            missing_tasks: v.num("missing_tasks")?,
        }),
        "task_speculated" => Ok(Event::TaskSpeculated {
            stage_id: v.num("stage_id")?,
            task: v.num("task")? as usize,
            executor: v.num("executor")? as usize,
        }),
        "plan_chosen" => Ok(Event::PlanChosen {
            chosen: v.str_of("chosen")?,
            auto: v.boolean("auto")?,
            partitions: v.num("partitions")?,
            est_shuffle_bytes: v.num("est_shuffle_bytes")?,
            candidates: v.candidates("candidates")?,
            at_micros: v.num("at_micros")?,
        }),
        "plan_replanned" => Ok(Event::PlanReplanned {
            tag: v.str_of("tag")?,
            from: v.str_of("from")?,
            to: v.str_of("to")?,
            est_shuffle_bytes: v.num("est_shuffle_bytes")?,
            observed_bytes: v.num("observed_bytes")?,
            partitions: v.num("partitions")?,
            at_micros: v.num("at_micros")?,
        }),
        "job_admitted" => Ok(Event::JobAdmitted {
            tenant: v.str_of("tenant")?,
            job: v.num("job")?,
            queue_micros: v.num("queue_micros")?,
            at_micros: v.num("at_micros")?,
        }),
        "job_cancelled" => Ok(Event::JobCancelled {
            tenant: v.str_of("tenant")?,
            job: v.num("job")?,
            stage_id: v.opt_num("stage_id")?,
            at_micros: v.num("at_micros")?,
        }),
        "plan_cache_hit" => Ok(Event::PlanCacheHit {
            tenant: v.str_of("tenant")?,
            key: v.num("key")?,
            at_micros: v.num("at_micros")?,
        }),
        "region_fused" => Ok(Event::RegionFused {
            ops: v.num("ops")?,
            inputs: v.num("inputs")?,
            signature: v.str_of("signature")?,
            source: v.str_of("source")?,
            at_micros: v.num("at_micros")?,
        }),
        other => Err(format!("unknown event type `{other}`")),
    }
}

/// Parse a JSON event log produced by [`to_json`].
pub fn parse_events(json: &str) -> Result<Vec<Event>, String> {
    let mut parser = Parser::new(json);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after event log"));
    }
    match value {
        JsonValue::Array(items) => items.iter().map(event_from_json).collect(),
        _ => Err("event log must be a JSON array".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::JobStart {
                job_id: 0,
                label: "collect".into(),
                at_micros: 10,
            },
            Event::StageStart {
                stage_id: 1,
                job_id: Some(0),
                label: "shuffle.map(reduceByKey)".into(),
                tag: Some("contraction/reduceByKey".into()),
                lineage: Some("reduceByKey <~ map \"quoted\"".into()),
                tasks: 4,
                at_micros: 12,
            },
            Event::TaskEnd {
                stage_id: 1,
                task: 2,
                attempt: 1,
                wall_micros: 55,
                ok: false,
                injected: true,
            },
            Event::ShuffleWrite {
                stage_id: 1,
                shuffle_id: 7,
                operator: "reduceByKey".into(),
                task: 2,
                bytes: 4096,
                records: 16,
            },
            Event::ShuffleRead {
                stage_id: 2,
                shuffle_id: 7,
                operator: "reduceByKey".into(),
                task: 0,
                bytes: 1024,
                records: 4,
            },
            Event::OperatorOutput {
                stage_id: Some(1),
                task: 2,
                operator: "filter \"odd\"".into(),
                rows: 9,
                bytes: 72,
            },
            Event::CacheMiss {
                dataset: 5,
                partition: 0,
                stage_id: Some(2),
            },
            Event::CacheEvict {
                dataset: 5,
                partition: 1,
                bytes: 64,
                spilled: true,
                stage_id: Some(2),
            },
            Event::CacheSpill {
                dataset: 5,
                partition: 1,
                bytes: 64,
                stage_id: Some(2),
            },
            Event::CacheRecompute {
                dataset: 5,
                partition: 1,
                stage_id: None,
            },
            Event::CacheHit {
                dataset: 5,
                partition: 0,
                bytes: 128,
                from_disk: false,
                stage_id: None,
            },
            Event::ExecutorLost {
                executor: 1,
                lost_map_outputs: 3,
                lost_blocks: 2,
                at_micros: 70,
            },
            Event::WorkerLost {
                worker: 1,
                executors: 2,
                at_micros: 71,
            },
            Event::FetchRetry {
                shuffle_id: 7,
                reduce_task: 1,
                map_partition: 3,
                attempt: 0,
            },
            Event::FetchFailed {
                shuffle_id: 7,
                stage_id: 2,
                reduce_task: 1,
                lost_map_outputs: 3,
            },
            Event::StageResubmitted {
                shuffle_id: 7,
                attempt: 1,
                missing_tasks: 3,
            },
            Event::TaskSpeculated {
                stage_id: 2,
                task: 3,
                executor: 0,
            },
            Event::PlanChosen {
                chosen: "contraction/broadcast".into(),
                auto: true,
                partitions: 16,
                est_shuffle_bytes: 4096,
                candidates: vec![
                    ("contraction/broadcast".into(), 4096),
                    ("contraction/groupByJoin".into(), 65536),
                ],
                at_micros: 80,
            },
            Event::PlanReplanned {
                tag: "contraction/reduceByKey".into(),
                from: "contraction/reduceByKey".into(),
                to: "contraction/broadcast".into(),
                est_shuffle_bytes: 65536,
                observed_bytes: 4096,
                partitions: 16,
                at_micros: 81,
            },
            Event::JobAdmitted {
                tenant: "alice".into(),
                job: 3,
                queue_micros: 250,
                at_micros: 82,
            },
            Event::JobCancelled {
                tenant: "mallory".into(),
                job: 4,
                stage_id: Some(2),
                at_micros: 85,
            },
            Event::PlanCacheHit {
                tenant: "alice".into(),
                key: 0xfeed_beef,
                at_micros: 88,
            },
            Event::RegionFused {
                ops: 5,
                inputs: 2,
                signature: "s0;s1;c0.5;mul;add".into(),
                source: "load;load;const;mul;add".into(),
                at_micros: 89,
            },
            Event::StageEnd {
                stage_id: 1,
                wall_micros: 90,
            },
            Event::JobEnd {
                job_id: 0,
                wall_micros: 120,
            },
        ]
    }

    #[test]
    fn json_round_trip_preserves_every_event() {
        let events = sample_events();
        let json = to_json(&events);
        let back = parse_events(&json).expect("parse back");
        assert_eq!(events, back);
    }

    #[test]
    fn disabled_collector_drops_events() {
        let c = EventCollector::default();
        c.emit(Event::JobEnd {
            job_id: 0,
            wall_micros: 1,
        });
        assert!(c.drain().is_empty());
        c.set_enabled(true);
        c.emit(Event::JobEnd {
            job_id: 1,
            wall_micros: 2,
        });
        assert_eq!(c.drain().len(), 1);
        assert!(c.drain().is_empty(), "drain must consume");
    }

    /// Escaping audit: every string-carrying field must survive adversarial
    /// content — quotes, backslashes, control characters, multi-byte UTF-8,
    /// and text that *looks* like JSON or like an escape sequence. (The
    /// writer escapes `"`/`\\`/`\n`/`\t`/`\r` symbolically and every other
    /// control byte as `\\uXXXX`; the parser is the inverse.)
    #[test]
    fn adversarial_strings_round_trip() {
        let nasty = [
            "quote\" backslash\\ newline\n tab\t cr\r",
            "\u{0}\u{1}\u{1f} low control bytes",
            "del \u{7f} snowman ☃ clef 𝄞 replacement \u{fffd}",
            "looks-like-escape \\u0041 \\n \\\" \\\\",
            "{\"type\":\"job_start\",\"label\":\"fake\"}",
            "[1,2,3],{},null,true",
            "",
        ];
        for s in nasty {
            let events = vec![
                Event::JobStart {
                    job_id: 0,
                    label: s.into(),
                    at_micros: 0,
                },
                Event::PlanChosen {
                    chosen: s.into(),
                    auto: false,
                    partitions: 1,
                    est_shuffle_bytes: 0,
                    candidates: vec![(s.into(), u64::MAX)],
                    at_micros: 1,
                },
                Event::StageStart {
                    stage_id: 0,
                    job_id: None,
                    label: s.into(),
                    tag: Some(s.into()),
                    lineage: Some(s.into()),
                    tasks: 1,
                    at_micros: 2,
                },
            ];
            let back = parse_events(&to_json(&events))
                .unwrap_or_else(|e| panic!("string {s:?} broke the round trip: {e}"));
            assert_eq!(events, back, "string {s:?} did not round-trip");
        }
    }

    #[test]
    fn parse_rejects_malformed_logs() {
        assert!(parse_events("{\"type\":\"job_end\"}").is_err());
        assert!(parse_events("[{\"type\":\"mystery\"}]").is_err());
        assert!(parse_events("[").is_err());
        assert!(parse_events("[] trailing").is_err());
    }

    #[test]
    fn empty_log_round_trips() {
        assert_eq!(parse_events(&to_json(&[])).unwrap(), Vec::<Event>::new());
    }
}
