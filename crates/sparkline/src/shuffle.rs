//! Wide (shuffle) operators: the machinery behind `reduce_by_key`,
//! `group_by_key`, `partition_by`, `cogroup` and `join`.
//!
//! A shuffle materializes in two stages, as in Spark:
//!
//! 1. **Map stage** — one task per parent partition computes the parent
//!    partition, routes each record to a reduce bucket with the
//!    [`KeyPartitioner`], optionally combining values per key on the map side
//!    (Spark's combiner; this is what makes `reduceByKey` cheaper than
//!    `groupByKey`, the distinction §4 of the paper builds on). Bucket sizes
//!    are accounted in [`crate::Metrics`].
//! 2. **Reduce stage** — one task per reduce partition merges the buckets
//!    destined to it, combining per key (or simply concatenating for
//!    `partition_by`).
//!
//! Merging uses insertion-ordered maps so results are deterministic across
//! runs and worker counts.
//!
//! **Fault tolerance.** Each map output is owned by the logical executor that
//! produced it, recorded in the [`MapOutputTracker`]. When an executor dies
//! its outputs are marked lost; reduce tasks then surface a fetch failure
//! (instead of panicking), and the materialization loop resubmits a map
//! stage covering *only the missing partitions* — bounded by
//! `max_stage_attempts`, with exponential backoff — before retrying the
//! outstanding reduce partitions. Results are bit-identical to a fault-free
//! run because every stage recomputes deterministically from lineage.

use crate::chaos::{splitmix64, WireFault};
use crate::context::{current_executor, Context, StageMeta};
use crate::events::Event;
use crate::metrics::ShuffleDetail;
use crate::ops::Op;
use crate::partitioner::KeyPartitioner;
use crate::size::SizeOf;
use crate::storage::SpillCodec;
use crate::stream::PartitionStream;
use crate::sync::Mutex;
use crate::{wire, Data};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

/// Exponential backoff with deterministic jitter, used for both stage
/// resubmission and shuffle-fetch retries. All four parameters are exposed
/// as [`crate::ContextBuilder`] knobs.
///
/// `delay(attempt, salt)` for attempt `n` (0-based) is
/// `min(base · multiplierⁿ, cap)`, then shrunk by up to `jitter` of itself
/// using a hash of `(attempt, salt)` — deterministic, so chaos runs with the
/// same seed reproduce the same schedule, but de-synchronized across
/// shuffles/tasks (different salts) to avoid retry stampedes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Growth factor per attempt (≥ 1.0).
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Fraction of each delay randomized away, in `[0, 1]`. 0 = fully
    /// deterministic delays.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    /// The historical stage-resubmission schedule: 200µs base, doubling,
    /// capped at 10ms, no jitter — keeps recovery fast in tests.
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_micros(200),
            multiplier: 2.0,
            cap: Duration::from_millis(10),
            jitter: 0.0,
        }
    }
}

impl BackoffPolicy {
    /// Delay before retry number `attempt` (0-based). `salt` decorrelates
    /// independent retry loops (pass e.g. the shuffle id or task index).
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.base.as_micros() as f64;
        let cap = self.cap.as_micros() as f64;
        let raw = (base * self.multiplier.powi(attempt.min(64) as i32)).min(cap);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let micros = if jitter == 0.0 {
            raw
        } else {
            // Deterministic "randomness": hash of (attempt, salt).
            let mut state = salt ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15;
            let frac = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            raw * (1.0 - jitter * frac)
        };
        Duration::from_micros(micros as u64)
    }
}

/// Who produced (and therefore owns) one shuffle map output.
#[derive(Clone, Copy, Debug)]
enum OutputOwner {
    /// Owned by a logical executor at a specific epoch; dies with it.
    Executor { executor: usize, epoch: u64 },
    /// Produced on a driver thread (no executor): survives every kill.
    Driver,
    /// Written through the external shuffle service (a driver-visible
    /// directory): survives the death of the executor (and worker process)
    /// that produced it. The producing executor is kept so chaos plans can
    /// still target "the owner of map output p".
    External { executor: usize },
}

/// How a finished map task registers its output with the tracker.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RegisterOwner {
    /// `(executor, epoch)` observed at task launch, or `None` for a driver
    /// thread.
    Executor(Option<(usize, u64)>),
    /// Output persisted via the external shuffle service by `executor`.
    External(usize),
}

/// Driver-side registry of which executor owns each shuffle map output —
/// sparkline's `MapOutputTracker`. Pure bookkeeping over `(shuffle,
/// map_partition)`: epoch validity is judged by callers, who know the live
/// epochs; [`Context::kill_executor`](crate::Context::kill_executor) sweeps
/// an executor's outputs when it dies.
#[derive(Default)]
pub struct MapOutputTracker {
    state: Mutex<HashMap<u64, Vec<Option<OutputOwner>>>>,
}

impl MapOutputTracker {
    /// Ensure `shuffle` is tracked with `n_map` (initially missing) outputs.
    pub(crate) fn register_shuffle(&self, shuffle: u64, n_map: usize) {
        self.state
            .lock()
            .entry(shuffle)
            .or_insert_with(|| vec![None; n_map]);
    }

    /// Record who produced map output `part`.
    pub(crate) fn register(&self, shuffle: u64, part: usize, owner: RegisterOwner) {
        if let Some(parts) = self.state.lock().get_mut(&shuffle) {
            parts[part] = Some(match owner {
                RegisterOwner::Executor(Some((executor, epoch))) => {
                    OutputOwner::Executor { executor, epoch }
                }
                RegisterOwner::Executor(None) => OutputOwner::Driver,
                RegisterOwner::External(executor) => OutputOwner::External { executor },
            });
        }
    }

    /// Mark one output lost (fetch failure / half-consumed merge input).
    pub(crate) fn unregister(&self, shuffle: u64, part: usize) {
        if let Some(parts) = self.state.lock().get_mut(&shuffle) {
            parts[part] = None;
        }
    }

    /// Map partitions of `shuffle` with no live output, in partition order.
    pub(crate) fn missing(&self, shuffle: u64) -> Vec<usize> {
        self.state
            .lock()
            .get(&shuffle)
            .map_or_else(Vec::new, |parts| {
                parts
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.is_none())
                    .map(|(p, _)| p)
                    .collect()
            })
    }

    /// Some live output of `shuffle`, if any — the victim for an injected
    /// fetch failure.
    pub(crate) fn any_live(&self, shuffle: u64) -> Option<usize> {
        self.state
            .lock()
            .get(&shuffle)
            .and_then(|parts| parts.iter().position(Option::is_some))
    }

    /// Executor that produced map output `part`, if executor-produced
    /// (including outputs parked in the external shuffle service, so chaos
    /// plans can target the producer even when its output would survive it).
    pub fn owner(&self, shuffle: u64, part: usize) -> Option<usize> {
        match self.state.lock().get(&shuffle)?.get(part)? {
            Some(OutputOwner::Executor { executor, .. })
            | Some(OutputOwner::External { executor }) => Some(*executor),
            _ => None,
        }
    }

    /// True if map output `part` lives in the external shuffle service.
    pub(crate) fn is_external(&self, shuffle: u64, part: usize) -> bool {
        matches!(
            self.state.lock().get(&shuffle).and_then(|p| p.get(part)),
            Some(Some(OutputOwner::External { .. }))
        )
    }

    /// Live outputs registered for `shuffle` (diagnostics).
    pub fn live_outputs(&self, shuffle: u64) -> usize {
        self.state
            .lock()
            .get(&shuffle)
            .map_or(0, |parts| parts.iter().filter(|o| o.is_some()).count())
    }

    /// Sweep every output owned by `executor` up to and including
    /// `dead_epoch` (older incarnations are just as dead; outputs registered
    /// by the restarted incarnation survive). Outputs parked in the external
    /// shuffle service are *not* swept — surviving executor death is the
    /// point of that mode. Returns how many outputs were lost.
    pub(crate) fn remove_executor(&self, executor: usize, dead_epoch: u64) -> usize {
        let mut lost = 0;
        for parts in self.state.lock().values_mut() {
            for slot in parts.iter_mut() {
                if matches!(
                    slot,
                    Some(OutputOwner::Executor { executor: e, epoch }) if *e == executor && *epoch <= dead_epoch
                ) {
                    *slot = None;
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Forget `shuffle` entirely — called once its reduce output is
    /// materialized and cached on the driver, after which map outputs can no
    /// longer be lost.
    pub(crate) fn drop_shuffle(&self, shuffle: u64) {
        self.state.lock().remove(&shuffle);
    }
}

/// What one reduce task reports back to the materialization loop.
struct FetchOutcome {
    /// Shuffle-read volume `(bytes, records)`, when tracing and this attempt
    /// did the merge.
    read: Option<(u64, u64)>,
    /// Map partitions this task found lost; non-empty means fetch failure.
    lost: Vec<usize>,
}

/// How map-side values become reduce-side combiners.
pub struct Aggregator<V, C> {
    /// Make the initial combiner from the first value of a key.
    pub create: Arc<dyn Fn(V) -> C + Send + Sync>,
    /// Fold one more value into a combiner (map side).
    pub merge_value: Arc<dyn Fn(&mut C, V) + Send + Sync>,
    /// Merge two combiners (reduce side).
    pub merge_combiners: Arc<dyn Fn(&mut C, C) + Send + Sync>,
    /// Combine per key on the map side before writing shuffle output.
    pub map_side_combine: bool,
    /// Merge combiners per key on the reduce side. `false` for
    /// `partition_by`, which must preserve duplicate keys.
    pub merge_on_reduce: bool,
}

impl<V, C> Clone for Aggregator<V, C> {
    fn clone(&self) -> Self {
        Aggregator {
            create: self.create.clone(),
            merge_value: self.merge_value.clone(),
            merge_combiners: self.merge_combiners.clone(),
            map_side_combine: self.map_side_combine,
            merge_on_reduce: self.merge_on_reduce,
        }
    }
}

impl<V: Data> Aggregator<V, V> {
    /// Aggregator for `reduce_by_key(f)`: the combiner is the running value.
    pub fn reducing(f: impl Fn(V, V) -> V + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        let f2 = f.clone();
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(move |c: &mut V, v| {
                let old = c.clone();
                *c = f(old, v);
            }),
            merge_combiners: Arc::new(move |c: &mut V, o| {
                let old = c.clone();
                *c = f2(old, o);
            }),
            map_side_combine: true,
            merge_on_reduce: true,
        }
    }

    /// Like [`Aggregator::reducing`] but folding in place, avoiding the clone
    /// of the running combiner — important when values are large tiles.
    pub fn reducing_in_place(f: impl Fn(&mut V, V) + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        let f2 = f.clone();
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(move |c: &mut V, v| f(c, v)),
            merge_combiners: Arc::new(move |c: &mut V, o| f2(c, o)),
            map_side_combine: true,
            merge_on_reduce: true,
        }
    }

    /// Aggregator for `partition_by`: no combining anywhere, duplicate keys
    /// are preserved.
    pub fn pass_through() -> Self {
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(|_c: &mut V, _v| unreachable!("pass_through never combines")),
            merge_combiners: Arc::new(|_c: &mut V, _o| unreachable!("pass_through never combines")),
            map_side_combine: false,
            merge_on_reduce: false,
        }
    }
}

impl<V: Data> Aggregator<V, Vec<V>> {
    /// Aggregator for `group_by_key`: the combiner is the list of values.
    /// No map-side combine — grouping on the map side saves nothing, which is
    /// exactly why the paper prefers `reduceByKey` plans (§4, §5.3).
    pub fn grouping() -> Self {
        Aggregator {
            create: Arc::new(|v| vec![v]),
            merge_value: Arc::new(|c: &mut Vec<V>, v| c.push(v)),
            merge_combiners: Arc::new(|c: &mut Vec<V>, mut o| c.append(&mut o)),
            map_side_combine: false,
            merge_on_reduce: true,
        }
    }
}

/// Insertion-ordered key → combiner map, so shuffle output order is
/// deterministic regardless of hash iteration order.
pub(crate) struct OrderedMerge<K, C> {
    index: HashMap<K, usize>,
    entries: Vec<(K, C)>,
}

impl<K: Data + Hash + Eq, C> OrderedMerge<K, C> {
    pub(crate) fn new() -> Self {
        OrderedMerge {
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// Fold a map-side value into the combiner for `key`.
    pub(crate) fn fold_value<V>(&mut self, key: K, value: V, agg: &Aggregator<V, C>) {
        match self.index.get(&key) {
            Some(&i) => (agg.merge_value)(&mut self.entries[i].1, value),
            None => {
                let c = (agg.create)(value);
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, c));
            }
        }
    }

    /// Merge a reduce-side combiner into the combiner for `key`.
    pub(crate) fn fold_combiner<V>(&mut self, key: K, comb: C, agg: &Aggregator<V, C>) {
        match self.index.get(&key) {
            Some(&i) => (agg.merge_combiners)(&mut self.entries[i].1, comb),
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, comb));
            }
        }
    }

    pub(crate) fn into_entries(self) -> Vec<(K, C)> {
        self.entries
    }
}

/// Wide operator producing `(K, C)` pairs partitioned by a [`KeyPartitioner`].
pub struct ShuffleOp<K: Data, V: Data, C: Data> {
    parent: Arc<dyn Op<(K, V)>>,
    partitioner: KeyPartitioner<K>,
    agg: Aggregator<V, C>,
    operator: String,
    shuffle_id: u64,
    /// Plan-node tag in effect when this node was *constructed* — the DAG is
    /// built while the planner runs, so the tag is captured here and replayed
    /// into the trace when the shuffle materializes later.
    tag: Option<String>,
    /// One `Arc` per reduce partition so downstream tasks get zero-copy
    /// shared views of exactly their partition.
    state: Mutex<Option<Vec<Arc<Vec<(K, C)>>>>>,
}

impl<K, V, C> ShuffleOp<K, V, C>
where
    K: Data + Hash + Eq + SizeOf + SpillCodec,
    V: Data,
    C: Data + SizeOf + SpillCodec,
{
    pub fn new(
        ctx: &Context,
        parent: Arc<dyn Op<(K, V)>>,
        partitioner: KeyPartitioner<K>,
        agg: Aggregator<V, C>,
        operator: impl Into<String>,
    ) -> Self {
        ShuffleOp {
            parent,
            partitioner,
            agg,
            operator: operator.into(),
            shuffle_id: ctx.next_shuffle_id(),
            tag: ctx.current_tag(),
            state: Mutex::new(None),
        }
    }

    /// Run the map and reduce stages once; later calls reuse the output
    /// (Spark keeps shuffle files, so retried downstream tasks re-read them).
    ///
    /// The body is a recovery loop: fill in missing map outputs (the first
    /// pass computes all of them; later passes are resubmissions covering
    /// only what an executor took down with it), then reduce the partitions
    /// still outstanding. Reduce tasks that find an output lost report a
    /// fetch failure instead of panicking; the loop then unwinds back to the
    /// map side. Bounded by `max_stage_attempts` with exponential backoff.
    fn materialized_partition(&self, part: usize, ctx: &Context) -> Arc<Vec<(K, C)>> {
        let mut state = self.state.lock();
        if let Some(parts) = state.as_ref() {
            return parts[part].clone();
        }
        let n_map = self.parent.num_partitions();
        let n_red = self.partitioner.partitions();
        let tracing = ctx.is_tracing();
        let tracker = &ctx.inner.map_outputs;
        tracker.register_shuffle(self.shuffle_id, n_map);

        // Multi-process mode: map outputs live as wire frames in worker
        // processes (and, in external-shuffle-service mode, also as frames in
        // a driver-visible directory); reduce tasks fetch real bytes back.
        // Local mode keeps the in-process grid path below.
        let remote = ctx.worker_group();
        let external = if remote.is_some() {
            ctx.external_shuffle_path(self.shuffle_id)
        } else {
            None
        };

        // grid[p][r]: the bucket map partition p wrote for reduce partition
        // r. Resubmitted map tasks overwrite their row; reduce tasks consume
        // their column.
        let grid: Vec<Vec<Mutex<Option<Vec<(K, C)>>>>> = (0..n_map)
            .map(|_| (0..n_red).map(|_| Mutex::new(None)).collect())
            .collect();
        // Serializes fetch+merge per reduce partition so a speculative
        // duplicate can never consume half a column.
        let fetch_locks: Vec<Mutex<()>> = (0..n_red).map(|_| Mutex::new(())).collect();
        let reduced_slots: Vec<Mutex<Option<Vec<(K, C)>>>> =
            (0..n_red).map(|_| Mutex::new(None)).collect();
        let mut resubmits = 0u32;
        let mut first_map_stage = true;

        loop {
            let missing = tracker.missing(self.shuffle_id);
            if !missing.is_empty() {
                if !first_map_stage {
                    resubmits += 1;
                    if resubmits >= ctx.max_stage_attempts() {
                        panic!(
                            "sparkline: shuffle {} ({}) still missing {} map outputs after \
                             {} stage attempts",
                            self.shuffle_id,
                            self.operator,
                            missing.len(),
                            resubmits,
                        );
                    }
                    // Exponential backoff: repeated faults on the same
                    // shuffle back off before burning another attempt.
                    std::thread::sleep(
                        ctx.resubmit_backoff().delay(resubmits - 1, self.shuffle_id),
                    );
                    if tracing {
                        ctx.events().emit(Event::StageResubmitted {
                            shuffle_id: self.shuffle_id,
                            attempt: resubmits,
                            missing_tasks: missing.len() as u64,
                        });
                    }
                }
                // Map stage over exactly the missing partitions. Each task
                // reports the executor (and its epoch) that produced the
                // output, so ownership lands in the tracker.
                type MapOut<K, C> = (Vec<Vec<(K, C)>>, u64, u64, Option<(usize, u64)>);
                let (map_outputs, map_stage): (Vec<MapOut<K, C>>, u64) = ctx.run_stage(
                    missing.len(),
                    || StageMeta {
                        label: if first_map_stage {
                            format!("shuffle.map({})", self.operator)
                        } else {
                            format!("shuffle.resubmit({})", self.operator)
                        },
                        tag: self.tag.clone(),
                        lineage: Some(self.parent.name()),
                    },
                    |idx| {
                        let p = missing[idx];
                        let owner = current_executor().map(|e| (e, ctx.executor_epoch(e)));
                        // Drain the parent's stream straight into the write
                        // buckets: no intermediate partition Vec, and records
                        // are counted as they flow past.
                        let input = self.parent.compute(p, ctx);
                        let mut records_in = 0u64;
                        let buckets: Vec<Vec<(K, C)>> = if self.agg.map_side_combine {
                            let mut merges: Vec<OrderedMerge<K, C>> =
                                (0..n_red).map(|_| OrderedMerge::new()).collect();
                            for (k, v) in input {
                                records_in += 1;
                                let b = self.partitioner.partition(&k);
                                merges[b].fold_value(k, v, &self.agg);
                            }
                            merges.into_iter().map(OrderedMerge::into_entries).collect()
                        } else {
                            let mut buckets: Vec<Vec<(K, C)>> =
                                (0..n_red).map(|_| Vec::new()).collect();
                            for (k, v) in input {
                                records_in += 1;
                                let b = self.partitioner.partition(&k);
                                buckets[b].push((k, (self.agg.create)(v)));
                            }
                            buckets
                        };
                        // True wire accounting: whenever the buckets are
                        // serialized anyway (multi-process mode) or the run
                        // is traced, `bytes` is the exact framed wire length,
                        // so `plan_chosen` est-vs-actual compares against real
                        // serialized bytes. Untraced local runs keep the
                        // cheap shallow estimate.
                        let frames: Option<Vec<Vec<u8>>> = (remote.is_some() || tracing)
                            .then(|| buckets.iter().map(wire::encode_frame).collect());
                        let bytes: u64 = match &frames {
                            Some(frames) => frames.iter().map(|f| f.len() as u64).sum(),
                            None => buckets
                                .iter()
                                .flat_map(|b| b.iter())
                                .map(|(k, c)| (k.size_of() + c.size_of()) as u64)
                                .sum(),
                        };
                        if let (Some(group), Some(frames)) = (remote.as_ref(), frames) {
                            // External-shuffle-service mode: park every frame
                            // in the driver-visible directory first, so the
                            // bytes survive the worker process.
                            if let Some(dir) = external.as_ref() {
                                std::fs::create_dir_all(dir).expect("create external shuffle dir");
                                for (r, frame) in frames.iter().enumerate() {
                                    let path = dir.join(format!("m{p}.r{r}"));
                                    std::fs::write(path, frame)
                                        .expect("write external shuffle frame");
                                }
                            }
                            let worker = owner.map_or(p, |(executor, _)| executor) % group.len();
                            for (r, frame) in frames.into_iter().enumerate() {
                                if group
                                    .put(worker, self.shuffle_id, p as u64, r as u64, frame)
                                    .is_err()
                                {
                                    // The worker died under us: supervision
                                    // kills + respawns it and bumps the
                                    // hosted executors' epochs, which makes
                                    // the scheduler discard and requeue this
                                    // very task.
                                    ctx.handle_worker_failure(worker);
                                    break;
                                }
                            }
                        }
                        (buckets, bytes, records_in, owner)
                    },
                );

                // Shuffle volumes describe the computation that ran, whether
                // or not every output survived — but only the *first* map
                // stage records them, so recovery never inflates the
                // operator-level metrics.
                if first_map_stage {
                    let bytes_written: u64 = map_outputs.iter().map(|(_, b, _, _)| *b).sum();
                    let records_in: u64 = map_outputs.iter().map(|(_, _, r, _)| *r).sum();
                    let records_written: u64 = map_outputs
                        .iter()
                        .map(|(bs, _, _, _)| bs.iter().map(Vec::len).sum::<usize>() as u64)
                        .sum();
                    ctx.metrics().record_shuffle(ShuffleDetail {
                        shuffle_id: self.shuffle_id,
                        operator: self.operator.clone(),
                        bytes_written,
                        records_written,
                        records_in,
                        map_partitions: n_map,
                        reduce_partitions: n_red,
                    });
                }
                first_map_stage = false;

                for (idx, (buckets, bytes, _, owner)) in map_outputs.into_iter().enumerate() {
                    let p = missing[idx];
                    // Register, then re-check the epoch: a kill racing this
                    // registration may have swept before we registered.
                    // Outputs parked in the external shuffle service are
                    // registered as such and survive executor death, so no
                    // epoch check applies to them.
                    match (external.as_ref(), owner) {
                        (Some(_), Some((executor, _))) => {
                            tracker.register(self.shuffle_id, p, RegisterOwner::External(executor));
                        }
                        _ => {
                            tracker.register(self.shuffle_id, p, RegisterOwner::Executor(owner));
                            if let Some((executor, epoch)) = owner {
                                if ctx.executor_epoch(executor) != epoch {
                                    tracker.unregister(self.shuffle_id, p);
                                    continue;
                                }
                            }
                        }
                    }
                    if tracing {
                        ctx.events().emit(Event::ShuffleWrite {
                            stage_id: map_stage,
                            shuffle_id: self.shuffle_id,
                            operator: self.operator.clone(),
                            task: p,
                            bytes,
                            records: buckets.iter().map(Vec::len).sum::<usize>() as u64,
                        });
                    }
                    if remote.is_none() {
                        for (r, bucket) in buckets.into_iter().enumerate() {
                            *grid[p][r].lock() = Some(bucket);
                        }
                    }
                }
                // Anything lost between launch and registration is still
                // missing; go around and resubmit.
                if !tracker.missing(self.shuffle_id).is_empty() {
                    continue;
                }
            }

            let pending: Vec<usize> = (0..n_red)
                .filter(|&r| reduced_slots[r].lock().is_none())
                .collect();
            if pending.is_empty() {
                break;
            }

            // The map→reduce barrier: the deterministic point where chaos
            // schedules can kill the owner of a specific map output. Crossed
            // once per materialization in a fault-free run, once more per
            // recovery round.
            ctx.chaos_barrier(self.shuffle_id);
            if !tracker.missing(self.shuffle_id).is_empty() {
                continue;
            }

            // Reduce stage over the outstanding partitions: fetch (check
            // availability, consume the column) and merge. Lost inputs are
            // *reported*, not panicked on — the loop resubmits and retries.
            let (outcomes, reduce_stage): (Vec<FetchOutcome>, u64) = ctx.run_stage(
                pending.len(),
                || StageMeta {
                    label: format!("shuffle.reduce({})", self.operator),
                    tag: self.tag.clone(),
                    lineage: Some(format!("{} <~ {}", self.operator, self.parent.name())),
                },
                |idx| {
                    let r = pending[idx];
                    let _fetch = fetch_locks[r].lock();
                    if reduced_slots[r].lock().is_some() {
                        // A duplicate (speculative) attempt already merged
                        // this partition; first result won.
                        return FetchOutcome {
                            read: None,
                            lost: Vec::new(),
                        };
                    }
                    // Chaos: a failed fetch drops one live map output, so
                    // recovery has real recomputation to do.
                    if ctx.chaos_fetch_should_fail() {
                        if let Some(p) = tracker.any_live(self.shuffle_id) {
                            tracker.unregister(self.shuffle_id, p);
                            return FetchOutcome {
                                read: None,
                                lost: vec![p],
                            };
                        }
                    }
                    // Availability check: outputs an executor took down are
                    // unreadable even if stale bytes linger in the grid.
                    let lost = tracker.missing(self.shuffle_id);
                    if !lost.is_empty() {
                        return FetchOutcome { read: None, lost };
                    }
                    // Multi-process mode: pull each map output back over the
                    // wire (with bounded retry + backoff and the external-dir
                    // fallback) instead of reading the in-process grid.
                    if let Some(group) = remote.as_ref() {
                        let mut buckets: Vec<Vec<(K, C)>> = Vec::with_capacity(n_map);
                        let mut wire_bytes = 0u64;
                        let mut lost: Vec<usize> = Vec::new();
                        for p in 0..n_map {
                            match self.fetch_bucket(ctx, group, external.as_deref(), p, r) {
                                Some((bucket, frame_len)) => {
                                    wire_bytes += frame_len;
                                    buckets.push(bucket);
                                }
                                None => lost.push(p),
                            }
                        }
                        if !lost.is_empty() {
                            for &p in &lost {
                                tracker.unregister(self.shuffle_id, p);
                            }
                            return FetchOutcome { read: None, lost };
                        }
                        let read = tracing.then(|| {
                            let records: u64 = buckets.iter().map(Vec::len).sum::<usize>() as u64;
                            (wire_bytes, records)
                        });
                        let merged = if self.agg.merge_on_reduce {
                            let mut merge = OrderedMerge::new();
                            for bucket in buckets {
                                for (k, c) in bucket {
                                    merge.fold_combiner(k, c, &self.agg);
                                }
                            }
                            merge.into_entries()
                        } else {
                            buckets.into_iter().flatten().collect()
                        };
                        *reduced_slots[r].lock() = Some(merged);
                        return FetchOutcome {
                            read,
                            lost: Vec::new(),
                        };
                    }
                    // Columns half-consumed by an attempt that crashed
                    // mid-merge count as lost too: recompute from lineage
                    // instead of panicking on the gap.
                    let gone: Vec<usize> = (0..n_map)
                        .filter(|&p| grid[p][r].lock().is_none())
                        .collect();
                    if !gone.is_empty() {
                        for &p in &gone {
                            tracker.unregister(self.shuffle_id, p);
                        }
                        return FetchOutcome {
                            read: None,
                            lost: gone,
                        };
                    }
                    let buckets: Vec<Vec<(K, C)>> = (0..n_map)
                        .map(|p| {
                            grid[p][r]
                                .lock()
                                .take()
                                .expect("bucket checked present under the fetch lock")
                        })
                        .collect();
                    // Shuffle-read sizes are only measured when tracing,
                    // and mirror the write side exactly: the framed wire
                    // length these buckets would occupy on a socket, so
                    // local traced runs and multi-process runs account
                    // identical byte totals.
                    let read = tracing.then(|| {
                        let bytes: u64 = buckets.iter().map(wire::encoded_len).sum();
                        let records: u64 = buckets.iter().map(Vec::len).sum::<usize>() as u64;
                        (bytes, records)
                    });
                    let merged = if self.agg.merge_on_reduce {
                        let mut merge = OrderedMerge::new();
                        for bucket in buckets {
                            for (k, c) in bucket {
                                merge.fold_combiner(k, c, &self.agg);
                            }
                        }
                        merge.into_entries()
                    } else {
                        buckets.into_iter().flatten().collect()
                    };
                    *reduced_slots[r].lock() = Some(merged);
                    FetchOutcome {
                        read,
                        lost: Vec::new(),
                    }
                },
            );
            if tracing {
                for (idx, outcome) in outcomes.iter().enumerate() {
                    let r = pending[idx];
                    if !outcome.lost.is_empty() {
                        ctx.events().emit(Event::FetchFailed {
                            shuffle_id: self.shuffle_id,
                            stage_id: reduce_stage,
                            reduce_task: r,
                            lost_map_outputs: outcome.lost.len() as u64,
                        });
                    } else if let Some((bytes, records)) = outcome.read {
                        ctx.events().emit(Event::ShuffleRead {
                            stage_id: reduce_stage,
                            shuffle_id: self.shuffle_id,
                            operator: self.operator.clone(),
                            task: r,
                            bytes,
                            records,
                        });
                    }
                }
            }
        }

        // Materialized: the reduced output now lives on the driver, beyond
        // the reach of executor loss. Worker stores and external frames for
        // this shuffle are dropped best-effort.
        tracker.drop_shuffle(self.shuffle_id);
        if let Some(group) = remote.as_ref() {
            group.drop_shuffle(self.shuffle_id);
        }
        if let Some(dir) = external.as_ref() {
            let _ = std::fs::remove_dir_all(dir);
        }
        let reduced: Vec<Arc<Vec<(K, C)>>> = reduced_slots
            .into_iter()
            .map(|slot| Arc::new(slot.into_inner().expect("reduce partition materialized")))
            .collect();
        let out = reduced[part].clone();
        *state = Some(reduced);
        out
    }

    /// Fetch one map-output bucket over the wire, with bounded retry +
    /// exponential backoff + jitter, wire-level chaos faults, and the
    /// external-shuffle-directory fallback. Returns the decoded bucket and
    /// the framed wire length actually transferred, or `None` when the
    /// output is genuinely unreachable (the caller escalates to a fetch
    /// failure).
    fn fetch_bucket(
        &self,
        ctx: &Context,
        group: &Arc<crate::transport::WorkerGroup>,
        external: Option<&std::path::Path>,
        p: usize,
        r: usize,
    ) -> Option<(Vec<(K, C)>, u64)> {
        let tracker = &ctx.inner.map_outputs;
        let worker = tracker
            .owner(self.shuffle_id, p)
            .map_or(p, |executor| executor)
            % group.len();
        let policy = ctx.fetch_backoff();
        let retries = ctx.fetch_retries();
        let salt = self.shuffle_id ^ ((p as u64) << 20) ^ ((r as u64) << 4);
        let mut attempt = 0u32;
        loop {
            let fault = ctx.chaos_wire_fault();
            let fetched: Result<Vec<u8>, String> = match fault {
                Some(WireFault::Drop) => Err("chaos: fetch stream dropped".into()),
                other => {
                    if let Some(WireFault::Delay(micros)) = other {
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                    let mut res = group.fetch(worker, self.shuffle_id, p as u64, r as u64);
                    if let (Ok(bytes), Some(WireFault::Garble)) = (&mut res, other) {
                        // Flip one payload byte: the frame CRC must catch it.
                        if let Some(b) = bytes.last_mut() {
                            *b ^= 0x40;
                        }
                    }
                    res
                }
            };
            let decoded = fetched.and_then(|frame| {
                let len = frame.len() as u64;
                wire::decode_frame::<Vec<(K, C)>>(&frame)
                    .map(|bucket| (bucket, len))
                    .map_err(|e| e.to_string())
            });
            match decoded {
                Ok(out) => return Some(out),
                Err(_) if attempt < retries => {
                    if ctx.is_tracing() {
                        ctx.events().emit(Event::FetchRetry {
                            shuffle_id: self.shuffle_id,
                            reduce_task: r,
                            map_partition: p,
                            attempt,
                        });
                    }
                    group.note_retry();
                    std::thread::sleep(policy.delay(attempt, salt));
                    attempt += 1;
                }
                Err(_) => {
                    // Retries exhausted. In external-shuffle-service mode the
                    // frame survives the worker in the driver-visible dir.
                    if let Some(dir) = external {
                        if tracker.is_external(self.shuffle_id, p) {
                            if let Ok(frame) = std::fs::read(dir.join(format!("m{p}.r{r}"))) {
                                let len = frame.len() as u64;
                                if let Ok(bucket) = wire::decode_frame::<Vec<(K, C)>>(&frame) {
                                    return Some((bucket, len));
                                }
                            }
                        }
                    }
                    return None;
                }
            }
        }
    }
}

impl<K, V, C> Op<(K, C)> for ShuffleOp<K, V, C>
where
    K: Data + Hash + Eq + SizeOf + SpillCodec,
    V: Data,
    C: Data + SizeOf + SpillCodec,
{
    fn num_partitions(&self) -> usize {
        self.partitioner.partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<(K, C)> {
        // The materialized reduce output is driver-held; every downstream
        // task reads a zero-copy shared view of its partition.
        PartitionStream::shared(self.materialized_partition(part, ctx))
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        Some((
            self.partitioner.descriptor().to_string(),
            self.partitioner.partitions(),
        ))
    }

    fn name(&self) -> String {
        format!("{} <~ {}", self.operator, self.parent.name())
    }
}

/// One side of a cogroup: either already grouped by the right partitioner
/// (narrow) or re-shuffled into groups.
pub(crate) enum CoGroupSide<K: Data, V: Data> {
    /// The parent is co-partitioned with the cogroup's partitioner; its
    /// partitions are read directly and grouped in-task.
    Narrow(Arc<dyn Op<(K, V)>>),
    /// The parent is shuffled into per-key groups first.
    Shuffled(Arc<ShuffleOp<K, V, Vec<V>>>),
}

impl<K, V> CoGroupSide<K, V>
where
    K: Data + Hash + Eq + SizeOf + SpillCodec,
    V: Data + SizeOf + SpillCodec,
{
    fn grouped_partition(&self, part: usize, ctx: &Context) -> PartitionStream<(K, Vec<V>)> {
        match self {
            CoGroupSide::Narrow(op) => {
                // Fold the parent's stream straight into the group build —
                // the one place cogroup legitimately needs ownership.
                let agg = Aggregator::<V, Vec<V>>::grouping();
                let mut merge = OrderedMerge::new();
                for (k, v) in op.compute(part, ctx) {
                    merge.fold_value(k, v, &agg);
                }
                PartitionStream::from_vec(merge.into_entries())
            }
            CoGroupSide::Shuffled(op) => op.compute(part, ctx),
        }
    }

    fn was_shuffled(&self) -> bool {
        matches!(self, CoGroupSide::Shuffled(_))
    }
}

/// Cogroup of two keyed datasets: `(K, (Vec<V>, Vec<W>))`, one output record
/// per key present on either side.
pub struct CoGroupOp<K: Data, V: Data, W: Data> {
    pub(crate) left: CoGroupSide<K, V>,
    pub(crate) right: CoGroupSide<K, W>,
    pub(crate) partitioner: KeyPartitioner<K>,
}

impl<K, V, W> CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq + SizeOf + SpillCodec,
    V: Data + SizeOf + SpillCodec,
    W: Data + SizeOf + SpillCodec,
{
    /// Build a cogroup, shuffling only the sides that are not already
    /// co-partitioned with `partitioner`.
    pub fn new(
        ctx: &Context,
        left: Arc<dyn Op<(K, V)>>,
        right: Arc<dyn Op<(K, W)>>,
        partitioner: KeyPartitioner<K>,
        operator: &str,
    ) -> Self {
        let target = (
            partitioner.descriptor().to_string(),
            partitioner.partitions(),
        );
        let left = if left.partitioner_descriptor().as_ref() == Some(&target) {
            CoGroupSide::Narrow(left)
        } else {
            CoGroupSide::Shuffled(Arc::new(ShuffleOp::new(
                ctx,
                left,
                partitioner.clone(),
                Aggregator::grouping(),
                format!("{operator}.left"),
            )))
        };
        let right = if right.partitioner_descriptor().as_ref() == Some(&target) {
            CoGroupSide::Narrow(right)
        } else {
            CoGroupSide::Shuffled(Arc::new(ShuffleOp::new(
                ctx,
                right,
                partitioner.clone(),
                Aggregator::grouping(),
                format!("{operator}.right"),
            )))
        };
        CoGroupOp {
            left,
            right,
            partitioner,
        }
    }

    /// True if either input required a shuffle (used by plan-shape tests).
    pub fn shuffles(&self) -> bool {
        self.left.was_shuffled() || self.right.was_shuffled()
    }
}

impl<K, V, W> Op<(K, (Vec<V>, Vec<W>))> for CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq + SizeOf + SpillCodec,
    V: Data + SizeOf + SpillCodec,
    W: Data + SizeOf + SpillCodec,
{
    fn num_partitions(&self) -> usize {
        self.partitioner.partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<(K, (Vec<V>, Vec<W>))> {
        let lhs = self.left.grouped_partition(part, ctx);
        let rhs = self.right.grouped_partition(part, ctx);
        // Merge by key, keeping left-then-right first-seen order. The merge
        // build needs ownership, so this is a legitimate collect point.
        let mut index: HashMap<K, usize> = HashMap::new();
        let mut out: Vec<(K, (Vec<V>, Vec<W>))> = Vec::with_capacity(lhs.len_hint().unwrap_or(0));
        for (k, vs) in lhs {
            index.insert(k.clone(), out.len());
            out.push((k, (vs, Vec::new())));
        }
        for (k, ws) in rhs {
            match index.get(&k) {
                Some(&i) => out[i].1 .1 = ws,
                None => {
                    index.insert(k.clone(), out.len());
                    out.push((k, (Vec::new(), ws)));
                }
            }
        }
        PartitionStream::from_vec(out)
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        Some((
            self.partitioner.descriptor().to_string(),
            self.partitioner.partitions(),
        ))
    }

    fn name(&self) -> String {
        "cogroup".into()
    }
}
