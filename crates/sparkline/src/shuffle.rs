//! Wide (shuffle) operators: the machinery behind `reduce_by_key`,
//! `group_by_key`, `partition_by`, `cogroup` and `join`.
//!
//! A shuffle materializes in two stages, as in Spark:
//!
//! 1. **Map stage** — one task per parent partition computes the parent
//!    partition, routes each record to a reduce bucket with the
//!    [`KeyPartitioner`], optionally combining values per key on the map side
//!    (Spark's combiner; this is what makes `reduceByKey` cheaper than
//!    `groupByKey`, the distinction §4 of the paper builds on). Bucket sizes
//!    are accounted in [`crate::Metrics`].
//! 2. **Reduce stage** — one task per reduce partition merges the buckets
//!    destined to it, combining per key (or simply concatenating for
//!    `partition_by`).
//!
//! Merging uses insertion-ordered maps so results are deterministic across
//! runs and worker counts.

use crate::context::{Context, StageMeta};
use crate::events::Event;
use crate::metrics::ShuffleDetail;
use crate::ops::Op;
use crate::partitioner::KeyPartitioner;
use crate::size::SizeOf;
use crate::sync::Mutex;
use crate::Data;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// How map-side values become reduce-side combiners.
pub struct Aggregator<V, C> {
    /// Make the initial combiner from the first value of a key.
    pub create: Arc<dyn Fn(V) -> C + Send + Sync>,
    /// Fold one more value into a combiner (map side).
    pub merge_value: Arc<dyn Fn(&mut C, V) + Send + Sync>,
    /// Merge two combiners (reduce side).
    pub merge_combiners: Arc<dyn Fn(&mut C, C) + Send + Sync>,
    /// Combine per key on the map side before writing shuffle output.
    pub map_side_combine: bool,
    /// Merge combiners per key on the reduce side. `false` for
    /// `partition_by`, which must preserve duplicate keys.
    pub merge_on_reduce: bool,
}

impl<V, C> Clone for Aggregator<V, C> {
    fn clone(&self) -> Self {
        Aggregator {
            create: self.create.clone(),
            merge_value: self.merge_value.clone(),
            merge_combiners: self.merge_combiners.clone(),
            map_side_combine: self.map_side_combine,
            merge_on_reduce: self.merge_on_reduce,
        }
    }
}

impl<V: Data> Aggregator<V, V> {
    /// Aggregator for `reduce_by_key(f)`: the combiner is the running value.
    pub fn reducing(f: impl Fn(V, V) -> V + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        let f2 = f.clone();
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(move |c: &mut V, v| {
                let old = c.clone();
                *c = f(old, v);
            }),
            merge_combiners: Arc::new(move |c: &mut V, o| {
                let old = c.clone();
                *c = f2(old, o);
            }),
            map_side_combine: true,
            merge_on_reduce: true,
        }
    }

    /// Like [`Aggregator::reducing`] but folding in place, avoiding the clone
    /// of the running combiner — important when values are large tiles.
    pub fn reducing_in_place(f: impl Fn(&mut V, V) + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        let f2 = f.clone();
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(move |c: &mut V, v| f(c, v)),
            merge_combiners: Arc::new(move |c: &mut V, o| f2(c, o)),
            map_side_combine: true,
            merge_on_reduce: true,
        }
    }

    /// Aggregator for `partition_by`: no combining anywhere, duplicate keys
    /// are preserved.
    pub fn pass_through() -> Self {
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(|_c: &mut V, _v| unreachable!("pass_through never combines")),
            merge_combiners: Arc::new(|_c: &mut V, _o| unreachable!("pass_through never combines")),
            map_side_combine: false,
            merge_on_reduce: false,
        }
    }
}

impl<V: Data> Aggregator<V, Vec<V>> {
    /// Aggregator for `group_by_key`: the combiner is the list of values.
    /// No map-side combine — grouping on the map side saves nothing, which is
    /// exactly why the paper prefers `reduceByKey` plans (§4, §5.3).
    pub fn grouping() -> Self {
        Aggregator {
            create: Arc::new(|v| vec![v]),
            merge_value: Arc::new(|c: &mut Vec<V>, v| c.push(v)),
            merge_combiners: Arc::new(|c: &mut Vec<V>, mut o| c.append(&mut o)),
            map_side_combine: false,
            merge_on_reduce: true,
        }
    }
}

/// Insertion-ordered key → combiner map, so shuffle output order is
/// deterministic regardless of hash iteration order.
pub(crate) struct OrderedMerge<K, C> {
    index: HashMap<K, usize>,
    entries: Vec<(K, C)>,
}

impl<K: Data + Hash + Eq, C> OrderedMerge<K, C> {
    pub(crate) fn new() -> Self {
        OrderedMerge {
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// Fold a map-side value into the combiner for `key`.
    pub(crate) fn fold_value<V>(&mut self, key: K, value: V, agg: &Aggregator<V, C>) {
        match self.index.get(&key) {
            Some(&i) => (agg.merge_value)(&mut self.entries[i].1, value),
            None => {
                let c = (agg.create)(value);
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, c));
            }
        }
    }

    /// Merge a reduce-side combiner into the combiner for `key`.
    pub(crate) fn fold_combiner<V>(&mut self, key: K, comb: C, agg: &Aggregator<V, C>) {
        match self.index.get(&key) {
            Some(&i) => (agg.merge_combiners)(&mut self.entries[i].1, comb),
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, comb));
            }
        }
    }

    pub(crate) fn into_entries(self) -> Vec<(K, C)> {
        self.entries
    }
}

/// Wide operator producing `(K, C)` pairs partitioned by a [`KeyPartitioner`].
pub struct ShuffleOp<K: Data, V: Data, C: Data> {
    parent: Arc<dyn Op<(K, V)>>,
    partitioner: KeyPartitioner<K>,
    agg: Aggregator<V, C>,
    operator: String,
    shuffle_id: u64,
    /// Plan-node tag in effect when this node was *constructed* — the DAG is
    /// built while the planner runs, so the tag is captured here and replayed
    /// into the trace when the shuffle materializes later.
    tag: Option<String>,
    state: Mutex<Option<Arc<Vec<Vec<(K, C)>>>>>,
}

impl<K, V, C> ShuffleOp<K, V, C>
where
    K: Data + Hash + Eq + SizeOf,
    V: Data,
    C: Data + SizeOf,
{
    pub fn new(
        ctx: &Context,
        parent: Arc<dyn Op<(K, V)>>,
        partitioner: KeyPartitioner<K>,
        agg: Aggregator<V, C>,
        operator: impl Into<String>,
    ) -> Self {
        ShuffleOp {
            parent,
            partitioner,
            agg,
            operator: operator.into(),
            shuffle_id: ctx.next_shuffle_id(),
            tag: ctx.current_tag(),
            state: Mutex::new(None),
        }
    }

    /// Run the map and reduce stages once; later calls reuse the output
    /// (Spark keeps shuffle files, so retried downstream tasks re-read them).
    fn ensure_materialized(&self, ctx: &Context) -> Arc<Vec<Vec<(K, C)>>> {
        let mut state = self.state.lock();
        if let Some(out) = state.as_ref() {
            return out.clone();
        }
        let n_map = self.parent.num_partitions();
        let n_red = self.partitioner.partitions();
        let tracing = ctx.is_tracing();

        // Map stage: route (and maybe combine) records into reduce buckets.
        let (map_outputs, map_stage): (Vec<(Vec<Vec<(K, C)>>, u64, u64)>, u64) = ctx.run_stage(
            n_map,
            || StageMeta {
                label: format!("shuffle.map({})", self.operator),
                tag: self.tag.clone(),
                lineage: Some(self.parent.name()),
            },
            |p| {
                let input = self.parent.compute(p, ctx);
                let records_in = input.len() as u64;
                let buckets: Vec<Vec<(K, C)>> = if self.agg.map_side_combine {
                    let mut merges: Vec<OrderedMerge<K, C>> =
                        (0..n_red).map(|_| OrderedMerge::new()).collect();
                    for (k, v) in input {
                        let b = self.partitioner.partition(&k);
                        merges[b].fold_value(k, v, &self.agg);
                    }
                    merges.into_iter().map(OrderedMerge::into_entries).collect()
                } else {
                    let mut buckets: Vec<Vec<(K, C)>> = (0..n_red).map(|_| Vec::new()).collect();
                    for (k, v) in input {
                        let b = self.partitioner.partition(&k);
                        buckets[b].push((k, (self.agg.create)(v)));
                    }
                    buckets
                };
                let bytes: u64 = buckets
                    .iter()
                    .flat_map(|b| b.iter())
                    .map(|(k, c)| (k.size_of() + c.size_of()) as u64)
                    .sum();
                (buckets, bytes, records_in)
            },
        );
        if tracing {
            for (task, (buckets, bytes, _)) in map_outputs.iter().enumerate() {
                ctx.events().emit(Event::ShuffleWrite {
                    stage_id: map_stage,
                    shuffle_id: self.shuffle_id,
                    operator: self.operator.clone(),
                    task,
                    bytes: *bytes,
                    records: buckets.iter().map(Vec::len).sum::<usize>() as u64,
                });
            }
        }

        let bytes_written: u64 = map_outputs.iter().map(|(_, b, _)| *b).sum();
        let records_in: u64 = map_outputs.iter().map(|(_, _, r)| *r).sum();
        let records_written: u64 = map_outputs
            .iter()
            .map(|(bs, _, _)| bs.iter().map(Vec::len).sum::<usize>() as u64)
            .sum();
        ctx.metrics().record_shuffle(ShuffleDetail {
            shuffle_id: self.shuffle_id,
            operator: self.operator.clone(),
            bytes_written,
            records_written,
            records_in,
            map_partitions: n_map,
            reduce_partitions: n_red,
        });

        // Hand each reduce partition ownership of its buckets so merging
        // moves records instead of cloning them (the "fetch" of a shuffle
        // read).
        let mut per_reduce: Vec<Vec<Vec<(K, C)>>> =
            (0..n_red).map(|_| Vec::with_capacity(n_map)).collect();
        for (buckets, _, _) in map_outputs {
            for (r, bucket) in buckets.into_iter().enumerate() {
                per_reduce[r].push(bucket);
            }
        }
        // Shuffle-read sizes are only measured when tracing: sizing every
        // record again would tax untraced runs.
        let reads: Vec<(u64, u64)> = if tracing {
            per_reduce
                .iter()
                .map(|buckets| {
                    let bytes: u64 = buckets
                        .iter()
                        .flat_map(|b| b.iter())
                        .map(|(k, c)| (k.size_of() + c.size_of()) as u64)
                        .sum();
                    let records: u64 = buckets.iter().map(Vec::len).sum::<usize>() as u64;
                    (bytes, records)
                })
                .collect()
        } else {
            Vec::new()
        };
        let slots: Vec<Mutex<Option<Vec<Vec<(K, C)>>>>> = per_reduce
            .into_iter()
            .map(|b| Mutex::new(Some(b)))
            .collect();

        // Reduce stage: merge all buckets destined to each reduce partition.
        // Buckets are consumed at most once: a task retried *after* its
        // merge already started (a user combine function panicked mid-way)
        // fails loudly rather than producing silently empty output.
        // Scheduler-injected failures fire before the closure runs, so
        // ordinary retries never hit this.
        let (reduced, reduce_stage): (Vec<Vec<(K, C)>>, u64) = ctx.run_stage(
            n_red,
            || StageMeta {
                label: format!("shuffle.reduce({})", self.operator),
                tag: self.tag.clone(),
                lineage: Some(format!("{} <~ {}", self.operator, self.parent.name())),
            },
            |r| {
                let buckets = slots[r]
                    .lock()
                    .take()
                    .expect("shuffle reduce input already consumed by a failed attempt");
                if self.agg.merge_on_reduce {
                    let mut merge = OrderedMerge::new();
                    for bucket in buckets {
                        for (k, c) in bucket {
                            merge.fold_combiner(k, c, &self.agg);
                        }
                    }
                    merge.into_entries()
                } else {
                    buckets.into_iter().flatten().collect()
                }
            },
        );
        if tracing {
            for (task, (bytes, records)) in reads.into_iter().enumerate() {
                ctx.events().emit(Event::ShuffleRead {
                    stage_id: reduce_stage,
                    shuffle_id: self.shuffle_id,
                    operator: self.operator.clone(),
                    task,
                    bytes,
                    records,
                });
            }
        }

        let out = Arc::new(reduced);
        *state = Some(out.clone());
        out
    }
}

impl<K, V, C> Op<(K, C)> for ShuffleOp<K, V, C>
where
    K: Data + Hash + Eq + SizeOf,
    V: Data,
    C: Data + SizeOf,
{
    fn num_partitions(&self) -> usize {
        self.partitioner.partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> Vec<(K, C)> {
        self.ensure_materialized(ctx)[part].clone()
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        Some((
            self.partitioner.descriptor().to_string(),
            self.partitioner.partitions(),
        ))
    }

    fn name(&self) -> String {
        format!("{} <~ {}", self.operator, self.parent.name())
    }
}

/// One side of a cogroup: either already grouped by the right partitioner
/// (narrow) or re-shuffled into groups.
pub(crate) enum CoGroupSide<K: Data, V: Data> {
    /// The parent is co-partitioned with the cogroup's partitioner; its
    /// partitions are read directly and grouped in-task.
    Narrow(Arc<dyn Op<(K, V)>>),
    /// The parent is shuffled into per-key groups first.
    Shuffled(Arc<ShuffleOp<K, V, Vec<V>>>),
}

impl<K, V> CoGroupSide<K, V>
where
    K: Data + Hash + Eq + SizeOf,
    V: Data + SizeOf,
{
    fn grouped_partition(&self, part: usize, ctx: &Context) -> Vec<(K, Vec<V>)> {
        match self {
            CoGroupSide::Narrow(op) => {
                let agg = Aggregator::<V, Vec<V>>::grouping();
                let mut merge = OrderedMerge::new();
                for (k, v) in op.compute(part, ctx) {
                    merge.fold_value(k, v, &agg);
                }
                merge.into_entries()
            }
            CoGroupSide::Shuffled(op) => op.compute(part, ctx),
        }
    }

    fn was_shuffled(&self) -> bool {
        matches!(self, CoGroupSide::Shuffled(_))
    }
}

/// Cogroup of two keyed datasets: `(K, (Vec<V>, Vec<W>))`, one output record
/// per key present on either side.
pub struct CoGroupOp<K: Data, V: Data, W: Data> {
    pub(crate) left: CoGroupSide<K, V>,
    pub(crate) right: CoGroupSide<K, W>,
    pub(crate) partitioner: KeyPartitioner<K>,
}

impl<K, V, W> CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq + SizeOf,
    V: Data + SizeOf,
    W: Data + SizeOf,
{
    /// Build a cogroup, shuffling only the sides that are not already
    /// co-partitioned with `partitioner`.
    pub fn new(
        ctx: &Context,
        left: Arc<dyn Op<(K, V)>>,
        right: Arc<dyn Op<(K, W)>>,
        partitioner: KeyPartitioner<K>,
        operator: &str,
    ) -> Self {
        let target = (
            partitioner.descriptor().to_string(),
            partitioner.partitions(),
        );
        let left = if left.partitioner_descriptor().as_ref() == Some(&target) {
            CoGroupSide::Narrow(left)
        } else {
            CoGroupSide::Shuffled(Arc::new(ShuffleOp::new(
                ctx,
                left,
                partitioner.clone(),
                Aggregator::grouping(),
                format!("{operator}.left"),
            )))
        };
        let right = if right.partitioner_descriptor().as_ref() == Some(&target) {
            CoGroupSide::Narrow(right)
        } else {
            CoGroupSide::Shuffled(Arc::new(ShuffleOp::new(
                ctx,
                right,
                partitioner.clone(),
                Aggregator::grouping(),
                format!("{operator}.right"),
            )))
        };
        CoGroupOp {
            left,
            right,
            partitioner,
        }
    }

    /// True if either input required a shuffle (used by plan-shape tests).
    pub fn shuffles(&self) -> bool {
        self.left.was_shuffled() || self.right.was_shuffled()
    }
}

impl<K, V, W> Op<(K, (Vec<V>, Vec<W>))> for CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq + SizeOf,
    V: Data + SizeOf,
    W: Data + SizeOf,
{
    fn num_partitions(&self) -> usize {
        self.partitioner.partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> Vec<(K, (Vec<V>, Vec<W>))> {
        let lhs = self.left.grouped_partition(part, ctx);
        let rhs = self.right.grouped_partition(part, ctx);
        // Merge by key, keeping left-then-right first-seen order.
        let mut index: HashMap<K, usize> = HashMap::new();
        let mut out: Vec<(K, (Vec<V>, Vec<W>))> = Vec::with_capacity(lhs.len());
        for (k, vs) in lhs {
            index.insert(k.clone(), out.len());
            out.push((k, (vs, Vec::new())));
        }
        for (k, ws) in rhs {
            match index.get(&k) {
                Some(&i) => out[i].1 .1 = ws,
                None => {
                    index.insert(k.clone(), out.len());
                    out.push((k, (Vec::new(), ws)));
                }
            }
        }
        out
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        Some((
            self.partitioner.descriptor().to_string(),
            self.partitioner.partitions(),
        ))
    }

    fn name(&self) -> String {
        "cogroup".into()
    }
}
