//! Memory-budgeted block storage — sparkline's analog of Spark's
//! `BlockManager`.
//!
//! Persisted datasets ([`crate::Dataset::persist`]) store their computed
//! partitions here as *blocks* keyed by `(dataset id, partition)`. The
//! manager enforces a byte budget over all in-memory blocks (sizes estimated
//! with [`SizeOf`], the same accounting the shuffle layer uses): inserting a
//! block past the budget evicts the least-recently-used blocks, and evicted
//! blocks of [`StorageLevel::MemoryAndDisk`] datasets spill to a temp file
//! instead of being dropped. Reads of spilled blocks decode from disk; reads
//! of dropped blocks miss, and the persist operator transparently recomputes
//! them from lineage — Spark's `MEMORY_ONLY` / `MEMORY_AND_DISK` semantics.
//!
//! Every cache interaction emits a structured event on the listener bus
//! (hit/miss/evict/spill/recompute, see [`crate::events::Event`]) so the
//! fault-injection harness and [`crate::profile::JobProfile`] can prove
//! blocks are computed exactly as often as the budget implies.

use crate::context::Context;
use crate::events::Event;
use crate::ops::Op;
use crate::size::SizeOf;
use crate::stream::PartitionStream;
use crate::sync::Mutex;
use crate::Data;
use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where persisted partitions may live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageLevel {
    /// In memory only; evicted partitions are recomputed from lineage
    /// (Spark's `MEMORY_ONLY`).
    Memory,
    /// In memory, spilling evicted partitions to a temp file on disk
    /// (Spark's `MEMORY_AND_DISK`).
    MemoryAndDisk,
}

// ---------------------------------------------------------------------------
// Spill codec
// ---------------------------------------------------------------------------

/// Binary encode/decode for spill-to-disk (the build has no serde; this is a
/// fixed little-endian codec analogous to the [`SizeOf`] estimate).
///
/// `decode` advances `pos` past the consumed bytes and returns `None` on a
/// truncated or malformed buffer (the manager treats that as a cache miss).
pub trait SpillCodec: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

macro_rules! codec_fixed {
    ($($t:ty),* $(,)?) => {
        $(impl SpillCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
                const N: usize = std::mem::size_of::<$t>();
                let bytes: [u8; N] = buf.get(*pos..*pos + N)?.try_into().ok()?;
                *pos += N;
                Some(<$t>::from_le_bytes(bytes))
            }
        })*
    };
}

codec_fixed!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl SpillCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        u64::decode(buf, pos).map(|v| v as usize)
    }
}

impl SpillCodec for isize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        i64::decode(buf, pos).map(|v| v as isize)
    }
}

impl SpillCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        u8::decode(buf, pos).map(|b| b != 0)
    }
}

impl SpillCodec for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        char::from_u32(u32::decode(buf, pos)?)
    }
}

impl SpillCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &[u8], _pos: &mut usize) -> Option<Self> {
        Some(())
    }
}

impl SpillCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = u64::decode(buf, pos)? as usize;
        let bytes = buf.get(*pos..*pos + len)?;
        *pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: SpillCodec> SpillCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        match u8::decode(buf, pos)? {
            0 => Some(None),
            1 => T::decode(buf, pos).map(Some),
            _ => None,
        }
    }
}

impl<T: SpillCodec> SpillCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = u64::decode(buf, pos)? as usize;
        // Guard the pre-allocation against corrupt lengths: each element
        // takes at least one byte in every codec except `()`.
        let mut out = Vec::with_capacity(len.min(buf.len().saturating_sub(*pos) + 1));
        for _ in 0..len {
            out.push(T::decode(buf, pos)?);
        }
        Some(out)
    }
}

macro_rules! codec_tuple {
    ($($name:ident),+) => {
        impl<$($name: SpillCodec),+> SpillCodec for ($($name,)+) {
            #[allow(non_snake_case)]
            fn encode(&self, out: &mut Vec<u8>) {
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            #[allow(non_snake_case)]
            fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
                $(let $name = $name::decode(buf, pos)?;)+
                Some(($($name,)+))
            }
        }
    };
}

codec_tuple!(A);
codec_tuple!(A, B);
codec_tuple!(A, B, C);
codec_tuple!(A, B, C, D);
codec_tuple!(A, B, C, D, E);
codec_tuple!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Block manager
// ---------------------------------------------------------------------------

type ErasedPart = Arc<dyn Any + Send + Sync>;

enum Tier {
    Memory(ErasedPart),
    Disk(PathBuf),
}

struct BlockEntry {
    /// Estimated in-memory size ([`SizeOf`]) of the partition.
    bytes: usize,
    /// LRU clock value of the last touch.
    tick: u64,
    level: StorageLevel,
    tier: Tier,
    /// Executor that computed the block (`None` for driver-side puts).
    /// Blocks die with their executor: [`BlockManager::remove_executor`]
    /// sweeps them so lineage recomputes on healthy executors.
    executor: Option<usize>,
    /// Tenant whose job computed the block (`None` outside tenant scopes).
    /// Memory-tier bytes are charged to the tenant's quota; the blocks can
    /// be swept together with [`BlockManager::remove_tenant`].
    tenant: Option<u32>,
    /// Type-erased spill encoder, captured when the block was stored — the
    /// only point where the concrete element type is known, which is what
    /// lets eviction spill blocks without knowing their type.
    encode: Arc<dyn Fn(&ErasedPart) -> Vec<u8> + Send + Sync>,
}

#[derive(Default)]
struct State {
    entries: HashMap<(u64, usize), BlockEntry>,
    /// Total bytes of memory-tier blocks (disk blocks don't count against
    /// the budget).
    memory_used: usize,
    evictions: u64,
    spills: u64,
    /// Memory-tier bytes per tenant (subset of `memory_used`; untagged
    /// blocks belong to no tenant). Entries are dropped at zero.
    tenant_used: HashMap<u32, usize>,
    /// Per-tenant memory quotas in bytes; absent means unbounded (only the
    /// global budget applies).
    quotas: HashMap<u32, usize>,
}

impl State {
    /// Account a memory-tier block entering residency.
    fn credit_memory(&mut self, bytes: usize, tenant: Option<u32>) {
        self.memory_used += bytes;
        if let Some(t) = tenant {
            *self.tenant_used.entry(t).or_insert(0) += bytes;
        }
    }

    /// Account a memory-tier block leaving residency (evicted or removed).
    fn debit_memory(&mut self, bytes: usize, tenant: Option<u32>) {
        self.memory_used -= bytes;
        if let Some(t) = tenant {
            if let Some(used) = self.tenant_used.get_mut(&t) {
                *used = used.saturating_sub(bytes);
                if *used == 0 {
                    self.tenant_used.remove(&t);
                }
            }
        }
    }

    /// Memory-tier bytes currently charged to `tenant`.
    fn tenant_bytes(&self, tenant: u32) -> usize {
        self.tenant_used.get(&tenant).copied().unwrap_or(0)
    }
}

/// One block evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    pub dataset: u64,
    pub partition: usize,
    pub bytes: u64,
    /// True if the block was spilled to disk rather than dropped.
    pub spilled: bool,
}

/// What [`BlockManager::put`] did with the offered block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// The block is now resident in memory.
    pub stored: bool,
    /// The block was too large for the budget and went straight to disk
    /// (only with [`StorageLevel::MemoryAndDisk`]).
    pub spilled_directly: bool,
    /// Blocks evicted to make room, in eviction order.
    pub evicted: Vec<Evicted>,
}

/// A successful cache read.
pub struct CacheRead<T> {
    pub data: Arc<Vec<T>>,
    /// The block's estimated in-memory size.
    pub bytes: u64,
    /// True if the block was decoded from a spill file.
    pub from_disk: bool,
}

/// Per-tenant slice of the storage accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStorage {
    /// Service-assigned tenant id (see [`Context::scoped_tenant`]).
    pub tenant: u32,
    /// Memory-tier bytes currently charged to the tenant.
    pub memory_used: u64,
    /// The tenant's memory quota, `None` if unbounded.
    pub quota: Option<u64>,
}

/// Point-in-time storage accounting, [`Context::storage_status`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageStatus {
    /// Memory budget in bytes; `None` means unlimited.
    pub budget: Option<u64>,
    pub memory_used: u64,
    pub blocks_in_memory: usize,
    pub blocks_on_disk: usize,
    /// Lifetime eviction count (dropped or spilled).
    pub evictions: u64,
    /// Lifetime spill count (evictions to disk plus direct spills).
    pub spills: u64,
    /// Per-tenant usage and quotas, sorted by tenant id. Tenants appear once
    /// they hold resident bytes or have a quota set.
    pub tenants: Vec<TenantStorage>,
}

static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Memory-budgeted store for persisted dataset partitions.
///
/// Owned by a [`Context`]; all persisted datasets of that context share one
/// budget, like executors sharing `spark.memory.storageFraction`.
pub struct BlockManager {
    /// Budget in bytes over memory-tier blocks; `usize::MAX` = unlimited.
    budget: usize,
    state: Mutex<State>,
    tick: AtomicU64,
    file_seq: AtomicU64,
    /// Spill directory, created lazily on first spill, removed on drop.
    spill_dir: Mutex<Option<PathBuf>>,
}

impl BlockManager {
    pub fn new(budget: usize) -> Self {
        BlockManager {
            budget,
            state: Mutex::new(State::default()),
            tick: AtomicU64::new(0),
            file_seq: AtomicU64::new(0),
            spill_dir: Mutex::new(None),
        }
    }

    /// The memory budget, `None` if unlimited.
    pub fn budget(&self) -> Option<u64> {
        (self.budget != usize::MAX).then_some(self.budget as u64)
    }

    /// Cap `tenant`'s memory-tier bytes at `bytes`. A put that would take
    /// the tenant over its quota first evicts the tenant's own LRU blocks
    /// (same spill semantics as budget eviction), so one tenant filling the
    /// cache cannot evict another tenant's working set through the shared
    /// budget alone.
    pub fn set_tenant_quota(&self, tenant: u32, bytes: usize) {
        self.state.lock().quotas.insert(tenant, bytes);
    }

    /// The quota set for `tenant`, if any.
    pub fn tenant_quota(&self, tenant: u32) -> Option<usize> {
        self.state.lock().quotas.get(&tenant).copied()
    }

    /// Drop every block charged to `tenant` (memory and spill files) and
    /// return the number of blocks removed. The tenant's quota, if any,
    /// survives. Used when a tenant's last in-flight job is cancelled or a
    /// tenant is retired, so its memory frees immediately instead of aging
    /// out through LRU.
    pub fn remove_tenant(&self, tenant: u32) -> usize {
        let mut state = self.state.lock();
        let keys: Vec<(u64, usize)> = state
            .entries
            .iter()
            .filter(|(_, e)| e.tenant == Some(tenant))
            .map(|(k, _)| *k)
            .collect();
        for key in &keys {
            if let Some(entry) = state.entries.remove(key) {
                match entry.tier {
                    Tier::Memory(_) => state.debit_memory(entry.bytes, entry.tenant),
                    Tier::Disk(path) => {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
        }
        keys.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// The spill directory, creating it on first use. `None` if the
    /// filesystem refuses (spills then degrade to drops).
    fn spill_dir(&self) -> Option<PathBuf> {
        let mut dir = self.spill_dir.lock();
        if let Some(d) = dir.as_ref() {
            return Some(d.clone());
        }
        let path = std::env::temp_dir().join(format!(
            "sparkline-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).ok()?;
        *dir = Some(path.clone());
        Some(path)
    }

    /// Write `bytes` to a fresh spill file, wrapped in a checksummed wire
    /// frame so truncation and bit rot are detected on read instead of
    /// decoding garbage. `None` if the write failed.
    fn write_spill(&self, bytes: &[u8]) -> Option<PathBuf> {
        let dir = self.spill_dir()?;
        let path = dir.join(format!(
            "{}.blk",
            self.file_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, crate::wire::frame_bytes(bytes)).ok()?;
        Some(path)
    }

    /// Look up a block. Memory hits clone the shared `Arc`; disk hits decode
    /// the spill file (and stay on disk — the partition is served from the
    /// file until its dataset is unpersisted).
    pub fn get<T: Data + SpillCodec>(
        &self,
        dataset: u64,
        partition: usize,
    ) -> Option<CacheRead<T>> {
        let tick = self.next_tick();
        let mut state = self.state.lock();
        let entry = state.entries.get_mut(&(dataset, partition))?;
        entry.tick = tick;
        let bytes = entry.bytes as u64;
        match &entry.tier {
            Tier::Memory(any) => {
                let data = any.clone().downcast::<Vec<T>>().ok()?;
                Some(CacheRead {
                    data,
                    bytes,
                    from_disk: false,
                })
            }
            Tier::Disk(path) => {
                // The CRC-checked frame rejects truncated and bit-flipped
                // spill files; trailing bytes past the frame are corruption
                // too. Either way the block is forgotten below and the
                // persist operator recomputes it from lineage.
                let decoded = std::fs::read(path).ok().and_then(|buf| {
                    let (payload, consumed) = crate::wire::unframe_bytes(&buf).ok()?;
                    if consumed != buf.len() {
                        return None;
                    }
                    let mut pos = 0;
                    let v = Vec::<T>::decode(payload, &mut pos)?;
                    (pos == payload.len()).then_some(v)
                });
                match decoded {
                    Some(v) => Some(CacheRead {
                        data: Arc::new(v),
                        bytes,
                        from_disk: true,
                    }),
                    None => {
                        // Corrupt or unreadable spill: forget the block so
                        // the caller recomputes from lineage.
                        let path = path.clone();
                        state.entries.remove(&(dataset, partition));
                        let _ = std::fs::remove_file(path);
                        None
                    }
                }
            }
        }
    }

    /// Store a computed partition, evicting LRU blocks to fit the budget.
    pub fn put<T: Data + SizeOf + SpillCodec>(
        &self,
        dataset: u64,
        partition: usize,
        data: Arc<Vec<T>>,
        level: StorageLevel,
    ) -> PutOutcome {
        let bytes = data.as_ref().size_of();
        let encode: Arc<dyn Fn(&ErasedPart) -> Vec<u8> + Send + Sync> = Arc::new(|any| {
            let v = any
                .downcast_ref::<Vec<T>>()
                .expect("spill encoder saw a foreign block type");
            let mut out = Vec::new();
            v.encode(&mut out);
            out
        });
        let tick = self.next_tick();
        let executor = crate::context::current_executor();
        let tenant = crate::context::current_tenant();
        let mut outcome = PutOutcome {
            stored: false,
            spilled_directly: false,
            evicted: Vec::new(),
        };

        // Oversized block: never evict the whole cache for one block that
        // cannot fit anyway. With a disk level it goes straight to a spill
        // file; memory-only oversized blocks are simply not stored. The same
        // treatment applies to a block larger than its tenant's whole quota.
        let tenant_quota = tenant.and_then(|t| self.state.lock().quotas.get(&t).copied());
        if bytes > self.budget || tenant_quota.is_some_and(|q| bytes > q) {
            if level == StorageLevel::MemoryAndDisk {
                let mut encoded = Vec::new();
                data.encode(&mut encoded);
                if let Some(path) = self.write_spill(&encoded) {
                    let mut state = self.state.lock();
                    state.spills += 1;
                    state.entries.insert(
                        (dataset, partition),
                        BlockEntry {
                            bytes,
                            tick,
                            level,
                            tier: Tier::Disk(path),
                            executor,
                            tenant,
                            encode,
                        },
                    );
                    outcome.spilled_directly = true;
                }
            }
            return outcome;
        }

        let mut state = self.state.lock();
        if state.entries.contains_key(&(dataset, partition)) {
            // A concurrent computation of the same partition won the race;
            // keep the resident copy.
            outcome.stored = true;
            return outcome;
        }

        // Per-tenant quota first: a tenant over its own cap evicts its own
        // LRU blocks, leaving other tenants' working sets alone.
        if let (Some(t), Some(quota)) = (tenant, tenant_quota) {
            while state.tenant_bytes(t) + bytes > quota {
                let victim = state
                    .entries
                    .iter()
                    .filter(|(_, e)| e.tenant == Some(t) && matches!(e.tier, Tier::Memory(_)))
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(k, _)| *k);
                let Some(key) = victim else { break };
                self.evict_block(&mut state, key, &mut outcome);
            }
        }

        // Evict least-recently-used memory blocks until the new one fits.
        while state.memory_used + bytes > self.budget {
            let victim = state
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.tier, Tier::Memory(_)))
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            self.evict_block(&mut state, key, &mut outcome);
        }

        state.credit_memory(bytes, tenant);
        state.entries.insert(
            (dataset, partition),
            BlockEntry {
                bytes,
                tick,
                level,
                tier: Tier::Memory(data as ErasedPart),
                executor,
                tenant,
                encode,
            },
        );
        outcome.stored = true;
        outcome
    }

    /// Evict one memory-tier block: spill it if its level allows, else drop
    /// it; update global and per-tenant accounting and the outcome record.
    fn evict_block(&self, state: &mut State, key: (u64, usize), outcome: &mut PutOutcome) {
        let entry = state.entries.get(&key).expect("victim vanished");
        let spill_to = (entry.level == StorageLevel::MemoryAndDisk)
            .then(|| {
                let Tier::Memory(any) = &entry.tier else {
                    unreachable!()
                };
                let encoded = (entry.encode)(any);
                self.write_spill(&encoded)
            })
            .flatten();
        let entry = state.entries.get_mut(&key).expect("victim vanished");
        let victim_bytes = entry.bytes;
        let victim_tenant = entry.tenant;
        let spilled = match spill_to {
            Some(path) => {
                entry.tier = Tier::Disk(path);
                true
            }
            None => {
                state.entries.remove(&key);
                false
            }
        };
        state.debit_memory(victim_bytes, victim_tenant);
        state.evictions += 1;
        if spilled {
            state.spills += 1;
        }
        outcome.evicted.push(Evicted {
            dataset: key.0,
            partition: key.1,
            bytes: victim_bytes as u64,
            spilled,
        });
    }

    /// Drop every block of a dataset (memory and spill files). Returns the
    /// number of blocks removed.
    pub fn remove_dataset(&self, dataset: u64) -> usize {
        let mut state = self.state.lock();
        let keys: Vec<(u64, usize)> = state
            .entries
            .keys()
            .filter(|(d, _)| *d == dataset)
            .copied()
            .collect();
        for key in &keys {
            if let Some(entry) = state.entries.remove(key) {
                match entry.tier {
                    Tier::Memory(_) => state.debit_memory(entry.bytes, entry.tenant),
                    Tier::Disk(path) => {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
        }
        keys.len()
    }

    /// Drop every block computed by `executor` (memory and spill files — a
    /// dead executor's local disk is gone too). Driver-computed blocks
    /// survive. Returns the number of blocks removed.
    pub(crate) fn remove_executor(&self, executor: usize) -> usize {
        let mut state = self.state.lock();
        let keys: Vec<(u64, usize)> = state
            .entries
            .iter()
            .filter(|(_, e)| e.executor == Some(executor))
            .map(|(k, _)| *k)
            .collect();
        for key in &keys {
            if let Some(entry) = state.entries.remove(key) {
                match entry.tier {
                    Tier::Memory(_) => state.debit_memory(entry.bytes, entry.tenant),
                    Tier::Disk(path) => {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
        }
        keys.len()
    }

    /// Current storage accounting.
    pub fn status(&self) -> StorageStatus {
        let state = self.state.lock();
        let blocks_on_disk = state
            .entries
            .values()
            .filter(|e| matches!(e.tier, Tier::Disk(_)))
            .count();
        let mut ids: Vec<u32> = state
            .tenant_used
            .keys()
            .chain(state.quotas.keys())
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let tenants = ids
            .into_iter()
            .map(|tenant| TenantStorage {
                tenant,
                memory_used: state.tenant_bytes(tenant) as u64,
                quota: state.quotas.get(&tenant).map(|q| *q as u64),
            })
            .collect();
        StorageStatus {
            budget: self.budget(),
            memory_used: state.memory_used as u64,
            blocks_in_memory: state.entries.len() - blocks_on_disk,
            blocks_on_disk,
            evictions: state.evictions,
            spills: state.spills,
            tenants,
        }
    }
}

impl Drop for BlockManager {
    fn drop(&mut self) {
        if let Some(dir) = self.spill_dir.lock().take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Persist operator
// ---------------------------------------------------------------------------

/// Dataset node backed by the context's [`BlockManager`]: partitions are
/// served from storage when resident and recomputed from the parent lineage
/// when missed or evicted (Spark's `persist`).
pub(crate) struct PersistOp<T: Data> {
    parent: Arc<dyn Op<T>>,
    id: u64,
    level: StorageLevel,
    /// Per-partition guard held across lookup + compute + store, so two
    /// tasks needing the same missing partition compute it once (the same
    /// discipline [`crate::ops::CachedOp`] uses).
    guards: Vec<Mutex<()>>,
    /// Whether the partition has ever been stored — distinguishes first
    /// computation ([`Event::CacheMiss`]) from eviction-forced recomputation
    /// ([`Event::CacheRecompute`]).
    computed: Vec<AtomicBool>,
}

impl<T: Data> PersistOp<T> {
    pub(crate) fn new(ctx: &Context, parent: Arc<dyn Op<T>>, level: StorageLevel) -> Self {
        let n = parent.num_partitions();
        PersistOp {
            parent,
            id: ctx.next_dataset_id(),
            level,
            guards: (0..n).map(|_| Mutex::new(())).collect(),
            computed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

/// Emit a cache event with the innermost running stage attached, skipping
/// payload construction when tracing is off.
fn emit_cache_event(ctx: &Context, build: impl FnOnce(Option<u64>) -> Event) {
    if ctx.events().is_enabled() {
        ctx.events().emit(build(crate::context::current_stage()));
    }
}

impl<T: Data + SizeOf + SpillCodec> Op<T> for PersistOp<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &Context) -> PartitionStream<T> {
        let _guard = self.guards[part].lock();
        let storage = ctx.storage();
        if let Some(read) = storage.get::<T>(self.id, part) {
            emit_cache_event(ctx, |stage_id| Event::CacheHit {
                dataset: self.id,
                partition: part,
                bytes: read.bytes,
                from_disk: read.from_disk,
                stage_id,
            });
            // A hit is a refcount bump on the stored block, never a copy:
            // every consumer of this partition shares one allocation.
            return PartitionStream::shared(read.data);
        }
        let recompute = self.computed[part].load(Ordering::Relaxed);
        emit_cache_event(ctx, |stage_id| {
            if recompute {
                Event::CacheRecompute {
                    dataset: self.id,
                    partition: part,
                    stage_id,
                }
            } else {
                Event::CacheMiss {
                    dataset: self.id,
                    partition: part,
                    stage_id,
                }
            }
        });
        let data = Arc::new(self.parent.compute(part, ctx).into_vec());
        let outcome = storage.put(self.id, part, data.clone(), self.level);
        for victim in &outcome.evicted {
            emit_cache_event(ctx, |stage_id| Event::CacheEvict {
                dataset: victim.dataset,
                partition: victim.partition,
                bytes: victim.bytes,
                spilled: victim.spilled,
                stage_id,
            });
            if victim.spilled {
                emit_cache_event(ctx, |stage_id| Event::CacheSpill {
                    dataset: victim.dataset,
                    partition: victim.partition,
                    bytes: victim.bytes,
                    stage_id,
                });
            }
        }
        if outcome.spilled_directly {
            emit_cache_event(ctx, |stage_id| Event::CacheSpill {
                dataset: self.id,
                partition: part,
                bytes: data.as_ref().size_of() as u64,
                stage_id,
            });
        }
        self.computed[part].store(true, Ordering::Relaxed);
        PartitionStream::shared(data)
    }

    fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        self.parent.partitioner_descriptor()
    }

    fn cache_id(&self) -> Option<u64> {
        Some(self.id)
    }

    fn name(&self) -> String {
        let level = match self.level {
            StorageLevel::Memory => "memory",
            StorageLevel::MemoryAndDisk => "memory+disk",
        };
        format!("persist#{}[{level}] <- {}", self.id, self.parent.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(values: &[i64]) -> Arc<Vec<i64>> {
        Arc::new(values.to_vec())
    }

    #[test]
    fn codec_round_trips_compound_values() {
        let v: Vec<(i64, Option<String>, Vec<f64>)> = vec![
            (1, Some("alpha".into()), vec![1.5, -2.0]),
            (-7, None, vec![]),
        ];
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Vec::<(i64, Option<String>, Vec<f64>)>::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, v);
    }

    #[test]
    fn codec_rejects_truncation() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].encode(&mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(Vec::<u64>::decode(&buf, &mut pos).is_none());
    }

    #[test]
    fn put_get_and_accounting() {
        let m = BlockManager::new(10_000);
        let out = m.put(1, 0, part(&[1, 2, 3]), StorageLevel::Memory);
        assert!(out.stored && out.evicted.is_empty());
        let read = m.get::<i64>(1, 0).expect("hit");
        assert_eq!(*read.data, vec![1, 2, 3]);
        assert!(!read.from_disk);
        // 4-byte Vec header + 3 * 8.
        assert_eq!(read.bytes, 28);
        let status = m.status();
        assert_eq!(status.memory_used, 28);
        assert_eq!(status.blocks_in_memory, 1);
        assert_eq!(status.budget, Some(10_000));
    }

    #[test]
    fn lru_eviction_drops_coldest_block() {
        // Each 3-element i64 block is 28 bytes; budget fits two.
        let m = BlockManager::new(60);
        m.put(1, 0, part(&[1, 1, 1]), StorageLevel::Memory);
        m.put(1, 1, part(&[2, 2, 2]), StorageLevel::Memory);
        // Touch block 0 so block 1 is the LRU victim.
        m.get::<i64>(1, 0).unwrap();
        let out = m.put(1, 2, part(&[3, 3, 3]), StorageLevel::Memory);
        assert_eq!(
            out.evicted,
            vec![Evicted {
                dataset: 1,
                partition: 1,
                bytes: 28,
                spilled: false
            }]
        );
        assert!(m.get::<i64>(1, 1).is_none(), "evicted block must miss");
        assert!(m.get::<i64>(1, 0).is_some());
        assert!(m.get::<i64>(1, 2).is_some());
        assert_eq!(m.status().evictions, 1);
        assert_eq!(m.status().spills, 0);
    }

    #[test]
    fn eviction_spills_disk_level_blocks_and_reads_them_back() {
        let m = BlockManager::new(60);
        m.put(7, 0, part(&[10, 20, 30]), StorageLevel::MemoryAndDisk);
        m.put(7, 1, part(&[40, 50, 60]), StorageLevel::MemoryAndDisk);
        let out = m.put(7, 2, part(&[70, 80, 90]), StorageLevel::MemoryAndDisk);
        assert_eq!(out.evicted.len(), 1);
        assert!(out.evicted[0].spilled);
        let read = m.get::<i64>(7, 0).expect("spilled block must still hit");
        assert!(read.from_disk);
        assert_eq!(*read.data, vec![10, 20, 30]);
        let status = m.status();
        assert_eq!(status.blocks_on_disk, 1);
        assert_eq!(status.spills, 1);
    }

    #[test]
    fn zero_budget_memory_level_stores_nothing() {
        let m = BlockManager::new(0);
        let out = m.put(1, 0, part(&[1]), StorageLevel::Memory);
        assert!(!out.stored && !out.spilled_directly);
        assert!(m.get::<i64>(1, 0).is_none());
        assert_eq!(m.status().memory_used, 0);
    }

    /// The on-disk path of a spilled block (test-only escape hatch).
    fn spill_path(m: &BlockManager, dataset: u64, partition: usize) -> PathBuf {
        let state = m.state.lock();
        match &state
            .entries
            .get(&(dataset, partition))
            .expect("entry")
            .tier
        {
            Tier::Disk(p) => p.clone(),
            Tier::Memory(_) => panic!("expected a spilled block"),
        }
    }

    #[test]
    fn spill_files_are_wire_framed() {
        let m = BlockManager::new(0);
        m.put(1, 0, part(&[5, 6, 7]), StorageLevel::MemoryAndDisk);
        let bytes = std::fs::read(spill_path(&m, 1, 0)).unwrap();
        assert_eq!(&bytes[..4], crate::wire::MAGIC.as_slice());
        assert_eq!(bytes[4], crate::wire::VERSION);
        let read = m.get::<i64>(1, 0).expect("framed spill reads back");
        assert_eq!(*read.data, vec![5, 6, 7]);
    }

    #[test]
    fn bit_flipped_spill_fails_the_crc_and_is_forgotten() {
        let m = BlockManager::new(0);
        m.put(1, 0, part(&[5, 6, 7]), StorageLevel::MemoryAndDisk);
        let path = spill_path(&m, 1, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(m.get::<i64>(1, 0).is_none(), "corrupt spill must miss");
        assert!(!path.exists(), "corrupt file must be removed");
        assert!(m.get::<i64>(1, 0).is_none(), "block must be forgotten");
    }

    #[test]
    fn truncated_spill_is_a_miss() {
        let m = BlockManager::new(0);
        m.put(1, 0, part(&[5, 6, 7]), StorageLevel::MemoryAndDisk);
        let path = spill_path(&m, 1, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&path, &bytes).unwrap();
        assert!(m.get::<i64>(1, 0).is_none(), "truncated spill must miss");
    }

    #[test]
    fn trailing_garbage_after_the_spill_frame_is_a_miss() {
        let m = BlockManager::new(0);
        m.put(1, 0, part(&[5, 6]), StorageLevel::MemoryAndDisk);
        let path = spill_path(&m, 1, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(m.get::<i64>(1, 0).is_none());
    }

    #[test]
    fn corrupt_spill_recomputes_from_lineage_with_cache_recompute_event() {
        // Zero budget: every persisted partition spills straight to disk.
        let ctx = Context::builder().workers(2).storage_memory(0).build();
        ctx.trace();
        let d = ctx
            .parallelize((0..40i64).collect(), 4)
            .persist_with(StorageLevel::MemoryAndDisk);
        let first = d.collect();
        let dataset_id = {
            let state = ctx.storage().state.lock();
            *state
                .entries
                .keys()
                .map(|(d, _)| d)
                .next()
                .expect("spilled")
        };
        for p in 0..4 {
            let path = spill_path(ctx.storage(), dataset_id, p);
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        assert_eq!(d.collect(), first, "recompute must restore the data");
        let recomputes = ctx
            .take_events()
            .iter()
            .filter(|e| matches!(e, Event::CacheRecompute { .. }))
            .count();
        assert_eq!(recomputes, 4, "every corrupt partition recomputes once");
    }

    #[test]
    fn zero_budget_disk_level_spills_directly() {
        let m = BlockManager::new(0);
        let out = m.put(1, 0, part(&[5, 6]), StorageLevel::MemoryAndDisk);
        assert!(out.spilled_directly && !out.stored);
        let read = m.get::<i64>(1, 0).expect("direct spill must hit");
        assert!(read.from_disk);
        assert_eq!(*read.data, vec![5, 6]);
    }

    #[test]
    fn remove_dataset_forgets_all_its_blocks() {
        let m = BlockManager::new(usize::MAX);
        m.put(3, 0, part(&[1]), StorageLevel::Memory);
        m.put(3, 1, part(&[2]), StorageLevel::Memory);
        m.put(4, 0, part(&[3]), StorageLevel::Memory);
        assert_eq!(m.remove_dataset(3), 2);
        assert!(m.get::<i64>(3, 0).is_none());
        assert!(m.get::<i64>(3, 1).is_none());
        assert!(m.get::<i64>(4, 0).is_some());
    }

    #[test]
    fn unlimited_budget_never_evicts() {
        let m = BlockManager::new(usize::MAX);
        for p in 0..64 {
            let out = m.put(9, p, part(&[p as i64; 100]), StorageLevel::Memory);
            assert!(out.stored && out.evicted.is_empty());
        }
        assert_eq!(m.status().evictions, 0);
        assert_eq!(m.budget(), None);
    }

    #[test]
    fn wrong_type_read_is_a_miss() {
        let m = BlockManager::new(usize::MAX);
        m.put(1, 0, part(&[1, 2]), StorageLevel::Memory);
        assert!(m.get::<f64>(1, 0).is_none());
        assert!(m.get::<i64>(1, 0).is_some());
    }

    #[test]
    fn tenant_quota_evicts_same_tenant_lru_first() {
        let ctx = Context::builder().workers(1).chaos_off().build();
        // Global budget unlimited: only tenant 1's quota (two 28-byte
        // blocks) forces eviction, and only among tenant 1's blocks.
        let m = BlockManager::new(usize::MAX);
        m.set_tenant_quota(1, 60);
        ctx.scoped_tenant(2, || {
            m.put(9, 0, part(&[7, 7, 7]), StorageLevel::Memory);
        });
        ctx.scoped_tenant(1, || {
            m.put(1, 0, part(&[1, 1, 1]), StorageLevel::Memory);
            m.put(1, 1, part(&[2, 2, 2]), StorageLevel::Memory);
            let out = m.put(1, 2, part(&[3, 3, 3]), StorageLevel::Memory);
            assert_eq!(
                out.evicted,
                vec![Evicted {
                    dataset: 1,
                    partition: 0,
                    bytes: 28,
                    spilled: false
                }]
            );
        });
        assert!(
            m.get::<i64>(9, 0).is_some(),
            "other tenant's block must survive"
        );
        let status = m.status();
        let t1 = status.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert_eq!((t1.memory_used, t1.quota), (56, Some(60)));
        let t2 = status.tenants.iter().find(|t| t.tenant == 2).unwrap();
        assert_eq!((t2.memory_used, t2.quota), (28, None));
        assert_eq!(m.tenant_quota(1), Some(60));
    }

    #[test]
    fn block_larger_than_tenant_quota_behaves_like_oversized() {
        let ctx = Context::builder().workers(1).chaos_off().build();
        let m = BlockManager::new(usize::MAX);
        m.set_tenant_quota(3, 10);
        ctx.scoped_tenant(3, || {
            let out = m.put(1, 0, part(&[1, 2, 3]), StorageLevel::Memory);
            assert!(!out.stored && !out.spilled_directly);
            let out = m.put(1, 1, part(&[4, 5, 6]), StorageLevel::MemoryAndDisk);
            assert!(out.spilled_directly);
        });
        assert!(m.get::<i64>(1, 0).is_none());
        assert!(m.get::<i64>(1, 1).expect("direct spill").from_disk);
    }

    #[test]
    fn remove_tenant_frees_only_that_tenants_blocks() {
        let ctx = Context::builder().workers(1).chaos_off().build();
        let m = BlockManager::new(usize::MAX);
        ctx.scoped_tenant(1, || {
            m.put(1, 0, part(&[1]), StorageLevel::Memory);
            m.put(1, 1, part(&[2]), StorageLevel::Memory);
        });
        ctx.scoped_tenant(2, || {
            m.put(2, 0, part(&[3]), StorageLevel::Memory);
        });
        assert_eq!(m.remove_tenant(1), 2);
        assert!(m.get::<i64>(1, 0).is_none());
        assert!(m.get::<i64>(1, 1).is_none());
        assert!(m.get::<i64>(2, 0).is_some());
        let status = m.status();
        assert!(status.tenants.iter().all(|t| t.tenant != 1));
        assert_eq!(
            status.memory_used,
            status.tenants.iter().map(|t| t.memory_used).sum::<u64>()
        );
    }

    #[test]
    fn untagged_puts_are_charged_to_no_tenant() {
        let m = BlockManager::new(usize::MAX);
        m.put(5, 0, part(&[1, 2]), StorageLevel::Memory);
        let status = m.status();
        assert!(status.tenants.is_empty());
        assert!(status.memory_used > 0);
    }

    #[test]
    fn persisted_partitions_are_served_as_one_shared_allocation() {
        // Two consumers of a persisted dataset must observe the *same*
        // underlying allocation: a cache hit is a refcount bump, not a
        // double-buffered copy of the stored block.
        let ctx = Context::builder()
            .workers(2)
            .storage_memory(64 << 20)
            .chaos_off()
            .build();
        let src: Arc<dyn Op<i64>> = Arc::new(crate::ops::SourceOp::new((0..100).collect(), 2));
        let persist = PersistOp::new(&ctx, src, StorageLevel::Memory);
        // First compute stores the block; the returned stream shares it.
        let first = persist.compute(0, &ctx);
        let (block_first, _) = first.as_shared().expect("persist store must be shared");
        let stored = ctx
            .storage()
            .get::<i64>(persist.cache_id().unwrap(), 0)
            .expect("block resident")
            .data;
        assert!(Arc::ptr_eq(block_first, &stored));
        // Two subsequent consumers both see that same allocation.
        let a = persist.compute(0, &ctx);
        let b = persist.compute(0, &ctx);
        let (block_a, _) = a.as_shared().expect("hit must be shared");
        let (block_b, _) = b.as_shared().expect("hit must be shared");
        assert!(Arc::ptr_eq(block_a, block_b));
        assert!(Arc::ptr_eq(block_a, &stored));
    }
}
