//! `sparkline-worker` — one shuffle data-plane process.
//!
//! Spawned and supervised by [`sparkline::transport::WorkerGroup`]. The
//! process binds an ephemeral loopback port, hands it to the driver via a
//! `PORT\t<port>` stdout handshake, and then serves the framed block-store
//! protocol until it is killed (chaos `kill -9`), the driver drops it, or
//! its stdin pipe closes (driver death — the watchdog below guarantees no
//! orphan workers outlive a crashed driver).

use std::io::{Read, Write};
use std::net::TcpListener;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("sparkline-worker: bind");
    let port = listener
        .local_addr()
        .expect("sparkline-worker: addr")
        .port();
    let mut stdout = std::io::stdout();
    writeln!(stdout, "PORT\t{port}").expect("sparkline-worker: handshake");
    stdout.flush().expect("sparkline-worker: flush handshake");

    // Parent-death watchdog: the driver holds our stdin pipe open for our
    // whole life. EOF means the driver is gone; exit instead of lingering.
    std::thread::spawn(|| {
        let mut sink = [0u8; 64];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => std::process::exit(0),
                Ok(_) => {}
            }
        }
    });

    sparkline::transport::serve_worker(listener);
}
