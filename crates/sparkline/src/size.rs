//! Byte-size estimation for shuffle accounting.
//!
//! Spark reports shuffle read/write in bytes; the paper's central cost
//! argument (block arrays shuffle less than coordinate-format arrays, and
//! `reduceByKey` shuffles less than `groupByKey`) is a statement about these
//! bytes. [`SizeOf`] estimates the wire size a record would have under a
//! simple binary encoding, without actually serializing.

/// Estimated encoded size of a value in bytes.
///
/// The estimate models a compact binary codec: fixed-width primitives,
/// `len + elements` for sequences. It only needs to be *consistent* so that
/// relative comparisons between plans are meaningful.
pub trait SizeOf {
    /// Estimated number of encoded bytes for `self`.
    fn size_of(&self) -> usize;
}

macro_rules! size_fixed {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl SizeOf for $t {
            #[inline]
            fn size_of(&self) -> usize { $n }
        })*
    };
}

size_fixed! {
    u8 => 1, i8 => 1, u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8, bool => 1, char => 4,
    () => 0,
}

impl SizeOf for String {
    #[inline]
    fn size_of(&self) -> usize {
        4 + self.len()
    }
}

impl SizeOf for &str {
    #[inline]
    fn size_of(&self) -> usize {
        4 + self.len()
    }
}

impl<T: SizeOf> SizeOf for Option<T> {
    #[inline]
    fn size_of(&self) -> usize {
        1 + self.as_ref().map_or(0, SizeOf::size_of)
    }
}

impl<T: SizeOf> SizeOf for Vec<T> {
    #[inline]
    fn size_of(&self) -> usize {
        4 + self.iter().map(SizeOf::size_of).sum::<usize>()
    }
}

impl<T: SizeOf> SizeOf for Box<T> {
    #[inline]
    fn size_of(&self) -> usize {
        (**self).size_of()
    }
}

impl<T: SizeOf> SizeOf for std::sync::Arc<T> {
    #[inline]
    fn size_of(&self) -> usize {
        (**self).size_of()
    }
}

macro_rules! size_tuple {
    ($($name:ident),+) => {
        impl<$($name: SizeOf),+> SizeOf for ($($name,)+) {
            #[inline]
            #[allow(non_snake_case)]
            fn size_of(&self) -> usize {
                let ($($name,)+) = self;
                0 $(+ $name.size_of())+
            }
        }
    };
}

size_tuple!(A);
size_tuple!(A, B);
size_tuple!(A, B, C);
size_tuple!(A, B, C, D);
size_tuple!(A, B, C, D, E);
size_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_fixed_sizes() {
        assert_eq!(1u8.size_of(), 1);
        assert_eq!(1i64.size_of(), 8);
        assert_eq!(1.0f64.size_of(), 8);
        assert_eq!(true.size_of(), 1);
        assert_eq!(().size_of(), 0);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1i64, 2.0f64).size_of(), 16);
        assert_eq!(((1i64, 2i64), 3.0f64).size_of(), 24);
    }

    #[test]
    fn vec_counts_header_and_elements() {
        let v: Vec<f64> = vec![0.0; 10];
        assert_eq!(v.size_of(), 4 + 80);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.size_of(), 4);
    }

    #[test]
    fn string_counts_bytes() {
        assert_eq!("abc".to_string().size_of(), 7);
    }

    #[test]
    fn option_and_smart_pointers() {
        assert_eq!(Some(1i32).size_of(), 5);
        assert_eq!(None::<i32>.size_of(), 1);
        assert_eq!(Box::new(7u64).size_of(), 8);
        assert_eq!(std::sync::Arc::new(7u64).size_of(), 8);
    }

    #[test]
    fn nested_vectors() {
        let v = vec![vec![1i32, 2], vec![3]];
        // outer header 4 + (4 + 8) + (4 + 4)
        assert_eq!(v.size_of(), 24);
    }
}
