//! Key partitioners for shuffles.
//!
//! A [`KeyPartitioner`] maps keys to reduce partitions. Two datasets whose
//! partitioners have equal descriptors and partition counts are
//! *co-partitioned*: joins and cogroups between them are narrow (no shuffle),
//! exactly as in Spark. The descriptor string is how partitioner identity is
//! compared, since closures cannot be.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A partitioner over keys of type `K`.
pub struct KeyPartitioner<K: ?Sized> {
    partitions: usize,
    descriptor: String,
    func: Arc<dyn Fn(&K) -> usize + Send + Sync>,
}

impl<K: ?Sized> Clone for KeyPartitioner<K> {
    fn clone(&self) -> Self {
        KeyPartitioner {
            partitions: self.partitions,
            descriptor: self.descriptor.clone(),
            func: self.func.clone(),
        }
    }
}

impl<K: ?Sized> std::fmt::Debug for KeyPartitioner<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyPartitioner({})", self.descriptor)
    }
}

impl<K: ?Sized> KeyPartitioner<K> {
    /// Build a partitioner from an arbitrary function. The `descriptor` must
    /// uniquely identify the partitioning scheme: equal descriptors (and
    /// partition counts) are treated as co-partitioned.
    pub fn new(
        partitions: usize,
        descriptor: impl Into<String>,
        func: impl Fn(&K) -> usize + Send + Sync + 'static,
    ) -> Self {
        let partitions = partitions.max(1);
        KeyPartitioner {
            partitions,
            descriptor: descriptor.into(),
            func: Arc::new(func),
        }
    }

    /// Number of reduce partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Identity descriptor used for co-partitioning checks.
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// The reduce partition for `key`. Always in `0..partitions()`.
    pub fn partition(&self, key: &K) -> usize {
        (self.func)(key) % self.partitions
    }

    /// Co-partitioning check: same scheme and same partition count.
    pub fn same_as(&self, other: &KeyPartitioner<K>) -> bool {
        self.partitions == other.partitions && self.descriptor == other.descriptor
    }
}

fn hash_one<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K: Hash + ?Sized> KeyPartitioner<K> {
    /// Spark's default `HashPartitioner`.
    pub fn hash(partitions: usize) -> Self {
        let partitions = partitions.max(1);
        KeyPartitioner::new(partitions, format!("hash({partitions})"), move |k: &K| {
            hash_one(k) as usize
        })
    }
}

impl KeyPartitioner<(i64, i64)> {
    /// MLlib's `GridPartitioner` over block coordinates `(row, col)` of a
    /// `rows x cols` block grid: contiguous rectangles of blocks map to the
    /// same partition, which keeps a block row/column on few partitions.
    pub fn grid(block_rows: usize, block_cols: usize, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        let block_rows = block_rows.max(1);
        let block_cols = block_cols.max(1);
        // Mirror MLlib: split the partition count itself into a `pr x pc`
        // sub-grid so the index mapping covers exactly `0..partitions`. Using
        // ceil(sqrt(partitions)) per side instead (as a naive port would)
        // produces indices up to side^2 - 1, which the modulo in
        // [`KeyPartitioner::partition`] folds back onto low partitions and
        // skews load for non-square counts.
        let pr = largest_divisor_at_most_sqrt(partitions);
        let pc = partitions / pr;
        let desc = format!("grid({block_rows}x{block_cols},{partitions})");
        KeyPartitioner::new(partitions, desc, move |&(i, j): &(i64, i64)| {
            // Proportional split: row group `bi` covers rows
            // [bi*block_rows/pr, (bi+1)*block_rows/pr) — contiguous
            // rectangles, every group non-empty whenever the grid has at
            // least `pr`/`pc` blocks per side, and near-even occupancy even
            // when the grid does not divide the partition count.
            let bi = (i.max(0) as usize).min(block_rows - 1) * pr / block_rows;
            let bj = (j.max(0) as usize).min(block_cols - 1) * pc / block_cols;
            bi + bj * pr
        })
    }
}

/// Largest divisor of `n` that is at most `floor(sqrt(n))` (always ≥ 1), so
/// `n = pr * pc` factors into the most square grid possible.
fn largest_divisor_at_most_sqrt(n: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let p = KeyPartitioner::<i64>::hash(7);
        for k in -100i64..100 {
            let a = p.partition(&k);
            assert!(a < 7);
            assert_eq!(a, p.partition(&k));
        }
    }

    #[test]
    fn same_descriptor_means_co_partitioned() {
        let a = KeyPartitioner::<i64>::hash(4);
        let b = KeyPartitioner::<i64>::hash(4);
        let c = KeyPartitioner::<i64>::hash(8);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
    }

    #[test]
    fn grid_partitioner_covers_range() {
        let p = KeyPartitioner::grid(10, 10, 6);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10i64 {
            for j in 0..10i64 {
                let part = p.partition(&(i, j));
                assert!(part < 6);
                seen.insert(part);
            }
        }
        assert!(
            seen.len() > 1,
            "grid should spread blocks across partitions"
        );
    }

    #[test]
    fn grid_partitioner_keeps_neighbors_close() {
        let p = KeyPartitioner::grid(8, 8, 4);
        // Blocks in the same sub-rectangle share a partition.
        assert_eq!(p.partition(&(0, 0)), p.partition(&(1, 1)));
    }

    #[test]
    fn grid_partitioner_balances_non_square_counts() {
        // Regression: the old `ceil(sqrt(partitions))`-per-side mapping
        // produced indices in 0..9 for 6 partitions, and the fold-back modulo
        // tripled the load on partitions 0..2 (24 blocks vs 8). The divisor
        // factorization must keep max/min occupancy within 2x.
        for &(rows, cols, parts) in &[
            (10usize, 10usize, 6usize),
            (12, 12, 6),
            (9, 9, 5),
            (16, 4, 6),
            (10, 10, 7),
        ] {
            let p = KeyPartitioner::grid(rows, cols, parts);
            let mut counts = vec![0usize; parts];
            for i in 0..rows as i64 {
                for j in 0..cols as i64 {
                    counts[p.partition(&(i, j))] += 1;
                }
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(
                min > 0,
                "grid({rows}x{cols},{parts}): empty partition in {counts:?}"
            );
            assert!(
                max <= 2 * min,
                "grid({rows}x{cols},{parts}): occupancy skew {counts:?}"
            );
        }
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        let p = KeyPartitioner::<i64>::hash(0);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition(&42), 0);
    }

    #[test]
    fn custom_partitioner() {
        let p = KeyPartitioner::new(3, "mod3", |k: &i64| *k as usize);
        assert_eq!(p.partition(&4), 1);
        assert_eq!(p.descriptor(), "mod3");
    }
}
