//! Key partitioners for shuffles.
//!
//! A [`KeyPartitioner`] maps keys to reduce partitions. Two datasets whose
//! partitioners have equal descriptors and partition counts are
//! *co-partitioned*: joins and cogroups between them are narrow (no shuffle),
//! exactly as in Spark. The descriptor string is how partitioner identity is
//! compared, since closures cannot be.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A partitioner over keys of type `K`.
pub struct KeyPartitioner<K: ?Sized> {
    partitions: usize,
    descriptor: String,
    func: Arc<dyn Fn(&K) -> usize + Send + Sync>,
}

impl<K: ?Sized> Clone for KeyPartitioner<K> {
    fn clone(&self) -> Self {
        KeyPartitioner {
            partitions: self.partitions,
            descriptor: self.descriptor.clone(),
            func: self.func.clone(),
        }
    }
}

impl<K: ?Sized> std::fmt::Debug for KeyPartitioner<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyPartitioner({})", self.descriptor)
    }
}

impl<K: ?Sized> KeyPartitioner<K> {
    /// Build a partitioner from an arbitrary function. The `descriptor` must
    /// uniquely identify the partitioning scheme: equal descriptors (and
    /// partition counts) are treated as co-partitioned.
    pub fn new(
        partitions: usize,
        descriptor: impl Into<String>,
        func: impl Fn(&K) -> usize + Send + Sync + 'static,
    ) -> Self {
        let partitions = partitions.max(1);
        KeyPartitioner {
            partitions,
            descriptor: descriptor.into(),
            func: Arc::new(func),
        }
    }

    /// Number of reduce partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Identity descriptor used for co-partitioning checks.
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// The reduce partition for `key`. Always in `0..partitions()`.
    pub fn partition(&self, key: &K) -> usize {
        (self.func)(key) % self.partitions
    }

    /// Co-partitioning check: same scheme and same partition count.
    pub fn same_as(&self, other: &KeyPartitioner<K>) -> bool {
        self.partitions == other.partitions && self.descriptor == other.descriptor
    }
}

fn hash_one<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K: Hash + ?Sized> KeyPartitioner<K> {
    /// Spark's default `HashPartitioner`.
    pub fn hash(partitions: usize) -> Self {
        let partitions = partitions.max(1);
        KeyPartitioner::new(partitions, format!("hash({partitions})"), move |k: &K| {
            hash_one(k) as usize
        })
    }
}

impl KeyPartitioner<(i64, i64)> {
    /// MLlib's `GridPartitioner` over block coordinates `(row, col)` of a
    /// `rows x cols` block grid: contiguous rectangles of blocks map to the
    /// same partition, which keeps a block row/column on few partitions.
    pub fn grid(block_rows: usize, block_cols: usize, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        let block_rows = block_rows.max(1);
        let block_cols = block_cols.max(1);
        // Mirror MLlib: choose a sub-grid of partitions of size
        // ceil(sqrt(partitions)) per side.
        let side = (partitions as f64).sqrt().ceil() as usize;
        let rows_per = block_rows.div_ceil(side);
        let cols_per = block_cols.div_ceil(side);
        let desc = format!("grid({block_rows}x{block_cols},{partitions})");
        KeyPartitioner::new(partitions, desc, move |&(i, j): &(i64, i64)| {
            let bi = (i.max(0) as usize).min(block_rows - 1) / rows_per;
            let bj = (j.max(0) as usize).min(block_cols - 1) / cols_per;
            bi + bj * side
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let p = KeyPartitioner::<i64>::hash(7);
        for k in -100i64..100 {
            let a = p.partition(&k);
            assert!(a < 7);
            assert_eq!(a, p.partition(&k));
        }
    }

    #[test]
    fn same_descriptor_means_co_partitioned() {
        let a = KeyPartitioner::<i64>::hash(4);
        let b = KeyPartitioner::<i64>::hash(4);
        let c = KeyPartitioner::<i64>::hash(8);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
    }

    #[test]
    fn grid_partitioner_covers_range() {
        let p = KeyPartitioner::grid(10, 10, 6);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10i64 {
            for j in 0..10i64 {
                let part = p.partition(&(i, j));
                assert!(part < 6);
                seen.insert(part);
            }
        }
        assert!(
            seen.len() > 1,
            "grid should spread blocks across partitions"
        );
    }

    #[test]
    fn grid_partitioner_keeps_neighbors_close() {
        let p = KeyPartitioner::grid(8, 8, 4);
        // Blocks in the same sub-rectangle share a partition.
        assert_eq!(p.partition(&(0, 0)), p.partition(&(1, 1)));
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        let p = KeyPartitioner::<i64>::hash(0);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition(&42), 0);
    }

    #[test]
    fn custom_partitioner() {
        let p = KeyPartitioner::new(3, "mod3", |k: &i64| *k as usize);
        assert_eq!(p.partition(&4), 1);
        assert_eq!(p.descriptor(), "mod3");
    }
}
