//! The public [`Dataset`] API — the RDD analog.

use crate::context::{Context, StageMeta};
use crate::ops::{CachedOp, MapPartitionsOp, Op, SourceOp, UnionOp};
use crate::partitioner::KeyPartitioner;
use crate::shuffle::{Aggregator, CoGroupOp, ShuffleOp};
use crate::size::SizeOf;
use crate::storage::{PersistOp, SpillCodec, StorageLevel};
use crate::stream::PartitionStream;
use crate::Data;
use std::hash::Hash;
use std::sync::Arc;

/// A lazy, immutable, partitioned distributed collection.
///
/// Transformations (`map`, `filter`, `join`, ...) are lazy and build an
/// operator DAG; actions (`collect`, `count`, `reduce`) run the DAG on the
/// executor pool of the owning [`Context`].
pub struct Dataset<T: Data> {
    ctx: Context,
    op: Arc<dyn Op<T>>,
}

impl<T: Data> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            ctx: self.ctx.clone(),
            op: self.op.clone(),
        }
    }
}

impl<T: Data> Dataset<T> {
    pub(crate) fn from_vec(ctx: Context, data: Vec<T>, partitions: usize) -> Self {
        Dataset {
            ctx,
            op: Arc::new(SourceOp::new(data, partitions)),
        }
    }

    /// Wrap an operator node (used by higher layers building custom plans).
    pub fn from_op(ctx: Context, op: Arc<dyn Op<T>>) -> Self {
        Dataset { ctx, op }
    }

    /// The context this dataset belongs to.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The underlying operator node.
    pub fn op(&self) -> &Arc<dyn Op<T>> {
        &self.op
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.op.num_partitions()
    }

    /// Descriptor of the partitioner, if this dataset is the output of a
    /// partitioner-aware shuffle.
    pub fn partitioner_descriptor(&self) -> Option<(String, usize)> {
        self.op.partitioner_descriptor()
    }

    /// Operator DAG description, innermost source last.
    pub fn describe(&self) -> String {
        self.op.name()
    }

    fn narrow<U: Data>(
        &self,
        label: &str,
        preserves: bool,
        f: impl Fn(usize, PartitionStream<T>) -> PartitionStream<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        Dataset {
            ctx: self.ctx.clone(),
            op: Arc::new(MapPartitionsOp {
                parent: self.op.clone(),
                f: Arc::new(f),
                preserves_partitioning: preserves,
                label: label.to_string(),
            }),
        }
    }

    /// Element-wise transformation. Lazy in two senses: nothing runs until an
    /// action, and at run time the transform fuses onto the parent's stream
    /// (no intermediate collection within a task).
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Dataset<U> {
        self.map_named("map", f)
    }

    /// [`Dataset::map`] with an explicit operator label, so traces attribute
    /// the stream to a specific plan region (e.g. `fused_eltwise`) instead
    /// of a generic `map` row in `StageProfile::operators`.
    pub fn map_named<U: Data>(
        &self,
        label: &str,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Dataset<U> {
        let f = Arc::new(f);
        self.narrow(label, false, move |_, s| {
            let f = f.clone();
            s.map(move |t| f(t))
        })
    }

    /// Element-to-many transformation.
    pub fn flat_map<U: Data, I: IntoIterator<Item = U>>(
        &self,
        f: impl Fn(T) -> I + Send + Sync + 'static,
    ) -> Dataset<U> {
        let f = Arc::new(f);
        self.narrow("flatMap", false, move |_, s| {
            let f = f.clone();
            s.flat_map(move |t| f(t))
        })
    }

    /// Keep elements satisfying the predicate.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T> {
        let f = Arc::new(f);
        self.narrow("filter", true, move |_, s| {
            let f = f.clone();
            s.filter(move |t| f(t))
        })
    }

    /// Partition-at-a-time transformation; `f` receives the partition index.
    ///
    /// Vec-compat shim: the partition is materialized on entry (an
    /// exclusively-held stream gives its allocation back for free) and the
    /// result re-wrapped. Use [`Dataset::map_partitions_stream`] when `f` can
    /// work on the stream directly.
    #[deprecated(note = "use map_partitions_stream")]
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        self.narrow("mapPartitions", false, move |p, s| {
            PartitionStream::from_vec(f(p, s.into_vec()))
        })
    }

    /// Partition-at-a-time transformation over the raw
    /// [`PartitionStream`] — the zero-copy sibling of
    /// [`Dataset::map_partitions`]. `f` must return a stream re-creatable
    /// from its input (it is re-invoked on task retry or speculation).
    pub fn map_partitions_stream<U: Data>(
        &self,
        f: impl Fn(usize, PartitionStream<T>) -> PartitionStream<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        self.narrow("mapPartitions", false, f)
    }

    /// Concatenate two datasets.
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        Dataset {
            ctx: self.ctx.clone(),
            op: Arc::new(UnionOp {
                left: self.op.clone(),
                right: other.op.clone(),
            }),
        }
    }

    /// Distinct elements (the `set` builder of §5.2's image sets): a
    /// deduplicating shuffle keyed by the element itself.
    pub fn distinct(&self, partitions: usize) -> Dataset<T>
    where
        T: std::hash::Hash + Eq + SizeOf + SpillCodec,
    {
        self.map(|x| (x, ()))
            .reduce_by_key(partitions, |_, _| ())
            .map(|(x, ())| x)
    }

    /// Cache partitions in memory on first computation.
    ///
    /// Unlike [`Dataset::persist`], cached partitions are pinned: they are
    /// never evicted and don't count against the context's storage budget.
    /// Use `persist` for anything sized with the data.
    pub fn cache(&self) -> Dataset<T> {
        Dataset {
            ctx: self.ctx.clone(),
            op: Arc::new(CachedOp::new(self.op.clone())),
        }
    }

    /// Persist partitions in the context's memory-budgeted block manager
    /// (Spark's `persist(MEMORY_ONLY)`). Partitions are stored on first
    /// computation and served from storage afterwards; evicted partitions
    /// are transparently recomputed from lineage.
    pub fn persist(&self) -> Dataset<T>
    where
        T: SizeOf + SpillCodec,
    {
        self.persist_with(StorageLevel::Memory)
    }

    /// [`Dataset::persist`] with an explicit [`StorageLevel`];
    /// [`StorageLevel::MemoryAndDisk`] spills evicted partitions to a temp
    /// file instead of dropping them.
    pub fn persist_with(&self, level: StorageLevel) -> Dataset<T>
    where
        T: SizeOf + SpillCodec,
    {
        Dataset {
            ctx: self.ctx.clone(),
            op: Arc::new(PersistOp::new(&self.ctx, self.op.clone(), level)),
        }
    }

    /// Drop this dataset's persisted blocks from the block manager (memory
    /// and spill files). Returns the number of blocks removed; 0 when the
    /// dataset is not the direct result of [`Dataset::persist`].
    pub fn unpersist(&self) -> usize {
        match self.op.cache_id() {
            Some(id) => self.ctx.storage().remove_dataset(id),
            None => 0,
        }
    }

    /// Run the action's final stage as a traced job named `label`.
    fn action_stage<R: Send>(&self, label: &str, f: impl Fn(usize) -> R + Send + Sync) -> Vec<R> {
        self.ctx.job_scope(label, || {
            self.ctx
                .run_stage(
                    self.op.num_partitions(),
                    || StageMeta::action(label, self.op.name()),
                    f,
                )
                .0
        })
    }

    /// Action: materialize every partition and concatenate.
    pub fn collect(&self) -> Vec<T> {
        let parts = self.action_stage("collect", |p| self.op.compute(p, &self.ctx).into_vec());
        parts.into_iter().flatten().collect()
    }

    /// Action: number of elements. Shared partitions (sources, cached
    /// blocks, shuffle outputs) answer from their length without touching a
    /// single element; lazy chains drain without collecting.
    pub fn count(&self) -> usize {
        self.action_stage("count", |p| self.op.compute(p, &self.ctx).count())
            .into_iter()
            .sum()
    }

    /// Action: reduce all elements with an associative function. Returns
    /// `None` on an empty dataset.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Option<T> {
        let partials: Vec<Option<T>> = self.action_stage("reduce", |p| {
            self.op.compute(p, &self.ctx).into_iter().reduce(&f)
        });
        partials.into_iter().flatten().reduce(f)
    }

    /// Action: fold with a zero value and an associative combine.
    pub fn fold<A: Data>(
        &self,
        zero: A,
        fold: impl Fn(A, T) -> A + Send + Sync + 'static,
        combine: impl Fn(A, A) -> A + Send + Sync + 'static,
    ) -> A {
        let z = zero.clone();
        let partials: Vec<A> = self.action_stage("fold", |p| {
            self.op
                .compute(p, &self.ctx)
                .into_iter()
                .fold(z.clone(), &fold)
        });
        partials.into_iter().fold(zero, combine)
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Data + Hash + Eq + SizeOf,
    V: Data + SizeOf,
{
    /// Transform values, keeping keys (and therefore partitioning).
    pub fn map_values<U: Data>(
        &self,
        f: impl Fn(V) -> U + Send + Sync + 'static,
    ) -> Dataset<(K, U)> {
        let f = Arc::new(f);
        self.narrow("mapValues", true, move |_, s| {
            let f = f.clone();
            s.map(move |(k, val)| (k, f(val)))
        })
    }

    /// Spark's `reduceByKey`: merge values per key with map-side combining.
    pub fn reduce_by_key(
        &self,
        partitions: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.reduce_by_key_with(KeyPartitioner::hash(partitions), f)
    }

    /// `reduceByKey` with an explicit partitioner.
    pub fn reduce_by_key_with(
        &self,
        partitioner: KeyPartitioner<K>,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.shuffle(partitioner, Aggregator::reducing(f), "reduceByKey")
    }

    /// `reduceByKey` folding values in place (avoids cloning large combiners
    /// such as tiles).
    pub fn reduce_by_key_in_place(
        &self,
        partitions: usize,
        f: impl Fn(&mut V, V) + Send + Sync + 'static,
    ) -> Dataset<(K, V)>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.shuffle(
            KeyPartitioner::hash(partitions),
            Aggregator::reducing_in_place(f),
            "reduceByKey",
        )
    }

    /// Spark's `groupByKey`: collect all values per key into a list. No
    /// map-side combining, so every record crosses the shuffle.
    pub fn group_by_key(&self, partitions: usize) -> Dataset<(K, Vec<V>)>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.group_by_key_with(KeyPartitioner::hash(partitions))
    }

    /// `groupByKey` with an explicit partitioner.
    pub fn group_by_key_with(&self, partitioner: KeyPartitioner<K>) -> Dataset<(K, Vec<V>)>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.shuffle(partitioner, Aggregator::grouping(), "groupByKey")
    }

    /// Generic combine-by-key shuffle (Spark's `combineByKey`). Keys and
    /// combiners must be wire-encodable ([`SpillCodec`]): in multi-process
    /// mode every bucket crosses a process boundary as a checksummed frame.
    pub fn shuffle<C: Data + SizeOf + SpillCodec>(
        &self,
        partitioner: KeyPartitioner<K>,
        agg: Aggregator<V, C>,
        operator: &str,
    ) -> Dataset<(K, C)>
    where
        K: SpillCodec,
    {
        Dataset {
            ctx: self.ctx.clone(),
            op: Arc::new(ShuffleOp::new(
                &self.ctx,
                self.op.clone(),
                partitioner,
                agg,
                operator,
            )),
        }
    }

    /// Redistribute records by a partitioner without combining; duplicate
    /// keys are preserved. A no-op (narrow) if already co-partitioned.
    pub fn partition_by(&self, partitioner: KeyPartitioner<K>) -> Dataset<(K, V)>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        let target = (
            partitioner.descriptor().to_string(),
            partitioner.partitions(),
        );
        if self.op.partitioner_descriptor().as_ref() == Some(&target) {
            return self.clone();
        }
        self.shuffle(partitioner, Aggregator::pass_through(), "partitionBy")
    }

    /// Cogroup with another keyed dataset: all values for each key from both
    /// sides. Narrow (no shuffle) for sides already co-partitioned with the
    /// chosen partitioner.
    pub fn cogroup<W: Data + SizeOf + SpillCodec>(
        &self,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Dataset<(K, (Vec<V>, Vec<W>))>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.cogroup_with(other, KeyPartitioner::hash(partitions))
    }

    /// Cogroup with an explicit partitioner. If either input is already
    /// partitioned by an equal partitioner it is not re-shuffled.
    pub fn cogroup_with<W: Data + SizeOf + SpillCodec>(
        &self,
        other: &Dataset<(K, W)>,
        partitioner: KeyPartitioner<K>,
    ) -> Dataset<(K, (Vec<V>, Vec<W>))>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        Dataset {
            ctx: self.ctx.clone(),
            op: Arc::new(CoGroupOp::new(
                &self.ctx,
                self.op.clone(),
                other.op.clone(),
                partitioner,
                "cogroup",
            )),
        }
    }

    /// Inner join: one output record per matching pair of values.
    pub fn join<W: Data + SizeOf + SpillCodec>(
        &self,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Dataset<(K, (V, W))>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.join_with(other, KeyPartitioner::hash(partitions))
    }

    /// Inner join with an explicit partitioner.
    pub fn join_with<W: Data + SizeOf + SpillCodec>(
        &self,
        other: &Dataset<(K, W)>,
        partitioner: KeyPartitioner<K>,
    ) -> Dataset<(K, (V, W))>
    where
        K: SpillCodec,
        V: SpillCodec,
    {
        self.cogroup_with(other, partitioner)
            .flat_map(|(k, (vs, ws))| {
                if ws.is_empty() {
                    return Vec::new();
                }
                let mut out = Vec::with_capacity(vs.len() * ws.len());
                for v in vs {
                    // Pair v with all but its last match by clone, then move
                    // v into the final pair — the build side (often a large
                    // tile) is cloned len(ws)-1 times, not len(ws).
                    for w in &ws[..ws.len() - 1] {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                    out.push((k.clone(), (v, ws[ws.len() - 1].clone())));
                }
                out
            })
    }

    /// Map-side (broadcast) inner join against a driver-resident small
    /// table: no shuffle stage at all. The table is typically built with
    /// [`crate::Context::broadcast`] over a collected dataset, e.g.
    /// `ctx.broadcast(small.collect_map())`; keys absent from the table are
    /// dropped, matching [`Dataset::join`]'s inner semantics. Partitioning is
    /// preserved (keys are unchanged), so downstream co-partitioned joins
    /// stay narrow.
    pub fn join_broadcast<W: Data>(
        &self,
        table: Arc<std::collections::HashMap<K, W>>,
    ) -> Dataset<(K, (V, W))> {
        self.narrow("broadcastJoin", true, move |_, s| {
            let table = table.clone();
            PartitionStream::from_iter(
                s.into_iter()
                    .filter_map(move |(k, v)| table.get(&k).cloned().map(|w| (k, (v, w)))),
            )
        })
    }

    /// Action: collect into a `HashMap` (later values win for duplicates).
    pub fn collect_map(&self) -> std::collections::HashMap<K, V> {
        self.collect().into_iter().collect()
    }

    /// Look up all values for a key (full scan; for tests and small data).
    pub fn lookup(&self, key: &K) -> Vec<V> {
        let key = key.clone();
        self.filter(move |(k, _)| *k == key)
            .collect()
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::builder().workers(4).default_parallelism(4).build()
    }

    /// For tests asserting blocks stay resident: ample pinned budget
    /// (builder beats the SPARKLINE_STORAGE_BUDGET env knob).
    fn cache_ctx() -> Context {
        Context::builder()
            .workers(4)
            .default_parallelism(4)
            .storage_memory(64 << 20)
            .build()
    }

    #[test]
    fn map_filter_collect() {
        let c = ctx();
        let d = c.parallelize((0..100).collect(), 8);
        let out = d.map(|x| x * 2).filter(|x| x % 3 == 0).collect();
        let expected: Vec<i32> = (0..100).map(|x| x * 2).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn flat_map_and_count() {
        let c = ctx();
        let d = c.parallelize(vec![1, 2, 3], 2);
        assert_eq!(d.flat_map(|x| vec![x; x as usize]).count(), 6);
    }

    #[test]
    fn reduce_and_fold() {
        let c = ctx();
        let d = c.parallelize((1..=10).collect(), 3);
        assert_eq!(d.reduce(|a, b| a + b), Some(55));
        assert_eq!(d.fold(0, |a, b| a + b, |a, b| a + b), 55);
        let empty: Dataset<i32> = c.parallelize(vec![], 2);
        assert_eq!(empty.reduce(|a, b| a + b), None);
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = ctx();
        let d = c.parallelize(vec![(1, 10), (2, 20), (1, 1), (2, 2), (3, 3)], 3);
        let mut out = d.reduce_by_key(4, |a, b| a + b).collect();
        out.sort();
        assert_eq!(out, vec![(1, 11), (2, 22), (3, 3)]);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let c = ctx();
        let d = c.parallelize(vec![(1, 1), (1, 2), (1, 3), (2, 9)], 2);
        let mut out = d.group_by_key(2).collect();
        out.sort();
        let (k1, mut v1) = out[0].clone();
        v1.sort();
        assert_eq!((k1, v1), (1, vec![1, 2, 3]));
        assert_eq!(out[1], (2, vec![9]));
    }

    #[test]
    fn join_broadcast_matches_shuffle_join_with_zero_shuffles() {
        let c = ctx();
        let big = c.parallelize(vec![(1, -1), (2, -2), (3, -3), (4, -4)], 3);
        let small = c.parallelize(vec![(1, 10), (3, 30), (9, 90)], 2);
        let mut want = big.join(&small, 4).collect();
        want.sort();
        let table = c.broadcast(small.collect_map());
        let before = c.metrics().snapshot().shuffle_count;
        let mut got = big.join_broadcast(table).collect();
        got.sort();
        assert_eq!(got, want);
        assert_eq!(
            c.metrics().snapshot().shuffle_count,
            before,
            "broadcast join must not shuffle"
        );
    }

    #[test]
    fn reduce_by_key_shuffles_fewer_records_than_group_by_key() {
        let c = ctx();
        let data: Vec<(i32, i64)> = (0..1000).map(|i| (i % 10, i as i64)).collect();
        let d = c.parallelize(data, 8);
        let before = c.metrics().snapshot();
        d.reduce_by_key(4, |a, b| a + b).collect();
        let mid = c.metrics().snapshot();
        d.group_by_key(4).collect();
        let after = c.metrics().snapshot();
        let rbk = mid.since(&before);
        let gbk = after.since(&mid);
        // reduceByKey writes at most keys*maps records, groupByKey all 1000.
        assert!(rbk.shuffle_records <= 80, "rbk: {rbk:?}");
        assert_eq!(gbk.shuffle_records, 1000, "gbk: {gbk:?}");
        assert!(rbk.shuffle_bytes < gbk.shuffle_bytes);
    }

    #[test]
    fn join_matches_pairs() {
        let c = ctx();
        let a = c.parallelize(
            vec![(1, "a".to_string()), (2, "b".into()), (2, "bb".into())],
            2,
        );
        let b = c.parallelize(vec![(2, 20.0), (3, 30.0)], 2);
        let mut out = a.join(&b, 2).collect();
        out.sort_by_key(|(k, (v, _))| (*k, v.clone()));
        assert_eq!(
            out,
            vec![(2, ("b".to_string(), 20.0)), (2, ("bb".to_string(), 20.0))]
        );
    }

    #[test]
    fn cogroup_keeps_unmatched_keys() {
        let c = ctx();
        let a = c.parallelize(vec![(1, 10)], 2);
        let b = c.parallelize(vec![(2, 20)], 2);
        let mut out = a.cogroup(&b, 2).collect();
        out.sort();
        assert_eq!(out, vec![(1, (vec![10], vec![])), (2, (vec![], vec![20]))]);
    }

    #[test]
    fn co_partitioned_join_is_narrow() {
        let c = ctx();
        let p = KeyPartitioner::<i64>::hash(4);
        let a = c
            .parallelize((0..100i64).map(|i| (i, i)).collect(), 4)
            .partition_by(p.clone());
        let b = c
            .parallelize((0..100i64).map(|i| (i, i * 2)).collect(), 4)
            .partition_by(p.clone());
        // Materialize both shuffles.
        a.count();
        b.count();
        let before = c.metrics().snapshot();
        let out = a.join_with(&b, p).collect();
        let after = c.metrics().snapshot();
        assert_eq!(out.len(), 100);
        assert_eq!(
            after.since(&before).shuffle_count,
            0,
            "co-partitioned join must not shuffle"
        );
    }

    #[test]
    fn partition_by_preserves_duplicates_and_sets_partitioner() {
        let c = ctx();
        let d = c.parallelize(vec![(1, 1), (1, 2), (1, 3)], 2);
        let p = d.partition_by(KeyPartitioner::hash(3));
        assert_eq!(p.count(), 3);
        assert_eq!(p.partitioner_descriptor(), Some(("hash(3)".into(), 3)));
        // Re-partitioning by the same partitioner is a no-op.
        let q = p.partition_by(KeyPartitioner::hash(3));
        let before = c.metrics().snapshot();
        q.count();
        let _ = before;
    }

    #[test]
    fn map_values_preserves_partitioning() {
        let c = ctx();
        let d = c
            .parallelize(vec![(1i64, 1i64), (2, 2)], 2)
            .partition_by(KeyPartitioner::hash(2));
        let m = d.map_values(|v| v * 10);
        assert_eq!(m.partitioner_descriptor(), Some(("hash(2)".into(), 2)));
        let mut out = m.collect();
        out.sort();
        assert_eq!(out, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn distinct_deduplicates() {
        let c = ctx();
        let d = c.parallelize(vec![1, 2, 2, 3, 1, 1], 3);
        let mut out = d.distinct(2).collect();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 1);
        let b = c.parallelize(vec![3], 1);
        assert_eq!(a.union(&b).collect(), vec![1, 2, 3]);
    }

    #[test]
    fn cache_reuses_partitions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = ctx();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let d = c
            .parallelize((0..10).collect(), 2)
            .map(move |x| {
                calls2.fetch_add(1, Ordering::SeqCst);
                x
            })
            .cache();
        d.collect();
        d.collect();
        assert_eq!(calls.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn persist_computes_lineage_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = cache_ctx();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let d = c
            .parallelize((0..10i64).collect(), 2)
            .map(move |x| {
                calls2.fetch_add(1, Ordering::SeqCst);
                x * 3
            })
            .persist();
        let expected: Vec<i64> = (0..10).map(|x| x * 3).collect();
        assert_eq!(d.collect(), expected);
        assert_eq!(d.collect(), expected);
        assert_eq!(calls.load(Ordering::SeqCst), 10, "second pass must hit");
        assert_eq!(c.storage_status().blocks_in_memory, 2);
    }

    #[test]
    fn persist_under_tiny_budget_still_correct() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Each block is 84 bytes (Vec header + 10 i64), so a 100-byte budget
        // holds exactly one of the four partitions, forcing eviction and
        // lineage recomputation on every pass.
        let c = Context::builder().workers(4).storage_memory(100).build();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let d = c
            .parallelize((0..40i64).collect(), 4)
            .map(move |x| {
                calls2.fetch_add(1, Ordering::SeqCst);
                x + 1
            })
            .persist();
        let expected: Vec<i64> = (1..=40).collect();
        assert_eq!(d.collect(), expected);
        assert_eq!(d.collect(), expected);
        assert!(
            calls.load(Ordering::SeqCst) > 40,
            "thrashing budget must force recomputation"
        );
        assert!(c.storage_status().evictions > 0);
    }

    #[test]
    fn persist_with_disk_level_serves_spilled_blocks() {
        let c = Context::builder().workers(2).storage_memory(64).build();
        let d = c
            .parallelize((0..40i64).collect(), 4)
            .map(|x| x * 2)
            .persist_with(crate::storage::StorageLevel::MemoryAndDisk);
        let expected: Vec<i64> = (0..40).map(|x| x * 2).collect();
        assert_eq!(d.collect(), expected);
        assert_eq!(d.collect(), expected);
        let status = c.storage_status();
        assert!(status.spills > 0, "tiny budget must spill: {status:?}");
        assert!(status.blocks_on_disk > 0);
    }

    #[test]
    fn unpersist_drops_blocks_and_recomputes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = cache_ctx();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let d = c
            .parallelize((0..6i64).collect(), 2)
            .map(move |x| {
                calls2.fetch_add(1, Ordering::SeqCst);
                x
            })
            .persist();
        d.collect();
        assert_eq!(d.unpersist(), 2);
        assert_eq!(c.storage_status().blocks_in_memory, 0);
        d.collect();
        assert_eq!(calls.load(Ordering::SeqCst), 12, "unpersist forces rerun");
        // Non-persisted datasets have nothing to unpersist.
        assert_eq!(c.parallelize(vec![1], 1).unpersist(), 0);
    }

    #[test]
    fn persisted_blocks_die_with_their_executor_and_recompute() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // One executor owns every block: killing it must drop them from the
        // block manager (storage is executor-scoped, and a dead executor's
        // spill files are gone too), and the next read must transparently
        // recompute from lineage and re-store.
        let c = Context::builder()
            .workers(1)
            .executors(1)
            .storage_memory(64 << 20)
            .chaos_off()
            .build();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let d = c
            .parallelize((0..8i64).collect(), 2)
            .map(move |x| {
                calls2.fetch_add(1, Ordering::SeqCst);
                x * 7
            })
            .persist();
        let expected: Vec<i64> = (0..8).map(|x| x * 7).collect();
        assert_eq!(d.collect(), expected);
        assert_eq!(c.storage_status().blocks_in_memory, 2);

        assert!(c.kill_executor(0));
        assert_eq!(
            c.storage_status().blocks_in_memory,
            0,
            "blocks die with their executor"
        );
        assert_eq!(d.collect(), expected, "lost blocks recompute from lineage");
        assert_eq!(calls.load(Ordering::SeqCst), 16);
        assert_eq!(
            c.storage_status().blocks_in_memory,
            2,
            "recomputed blocks are re-stored by the restarted incarnation"
        );
    }

    #[test]
    fn persist_preserves_partitioning() {
        let c = ctx();
        let d = c
            .parallelize(vec![(1i64, 1i64), (2, 2)], 2)
            .partition_by(KeyPartitioner::hash(2))
            .persist();
        assert_eq!(d.partitioner_descriptor(), Some(("hash(2)".into(), 2)));
    }

    #[test]
    fn lookup_finds_all_values() {
        let c = ctx();
        let d = c.parallelize(vec![(1, 10), (2, 20), (1, 11)], 3);
        let mut vs = d.lookup(&1);
        vs.sort();
        assert_eq!(vs, vec![10, 11]);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let mk = |workers| {
            let c = Context::builder().workers(workers).build();
            let d = c.parallelize((0..500i64).map(|i| (i % 7, i)).collect(), 8);
            d.reduce_by_key(3, |a, b| a + b).collect()
        };
        assert_eq!(mk(1), mk(8));
    }

    #[test]
    fn failure_injection_still_produces_correct_results() {
        let c = ctx();
        let d = c.parallelize((0..100i64).map(|i| (i % 5, 1i64)).collect(), 4);
        c.inject_task_failures(2);
        let mut out = d.reduce_by_key(2, |a, b| a + b).collect();
        out.sort();
        assert_eq!(out, (0..5).map(|k| (k, 20)).collect::<Vec<_>>());
        assert!(c.metrics().snapshot().tasks_failed >= 2);
    }
}
