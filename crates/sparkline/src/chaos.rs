//! Deterministic chaos harness: seeded fault schedules for the executor pool.
//!
//! A [`ChaosPlan`] is a list of fault events — kill an executor when the
//! context-wide task-launch counter reaches K, delay every Nth task launch,
//! fail every Nth shuffle fetch — that the runtime replays while a job runs.
//! Schedules are deterministic functions of the plan and the workload's task
//! order, so a failing chaos run reproduces from its seed alone.
//!
//! Plans come from three places, in priority order: an explicit
//! [`ContextBuilder::chaos`](crate::ContextBuilder::chaos) call, the
//! [`CHAOS_ENV`] environment variable (a numeric seed expanded by
//! [`ChaosPlan::seeded`], or `off`), or nothing (no chaos). The controller
//! itself only *decides* faults; the [`Context`](crate::Context) applies them
//! (kills executors, sleeps, fails fetches), keeping this module free of
//! scheduler dependencies.

use crate::sync::Mutex;
use std::time::Duration;

/// Environment variable holding a chaos seed for the whole process (or `off`
/// to disable). Lets CI rerun the entire test suite under a fixed fault
/// schedule without touching any test. An explicit
/// [`ContextBuilder::chaos`](crate::ContextBuilder::chaos) /
/// [`ContextBuilder::chaos_off`](crate::ContextBuilder::chaos_off) wins over
/// the variable, mirroring [`STORAGE_BUDGET_ENV`](crate::STORAGE_BUDGET_ENV).
pub const CHAOS_ENV: &str = "SPARKLINE_CHAOS";

/// Task-launch count a seeded plan's first kill waits for. Kills before this
/// point would hit the many tiny fixed-count unit stages that pin exact task
/// and retry counts; real recovery coverage comes from the larger pipelines.
const SEEDED_FIRST_KILL_AT: u64 = 64;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Kill `executor` when the context has launched `at_task` tasks.
    /// One-shot.
    KillExecutorAtTask { at_task: u64, executor: usize },
    /// At the `nth_barrier`-th map→reduce barrier crossed on this context,
    /// kill whichever executor currently owns `map_partition`'s output of the
    /// shuffle at that barrier. One-shot; lets tests lose a *specific* map
    /// output deterministically, independent of thread scheduling.
    KillOwnerAtBarrier {
        nth_barrier: u64,
        map_partition: usize,
    },
    /// Sleep `micros` before every `every`-th task launch: jitters thread
    /// interleavings and manufactures stragglers for speculation.
    DelayTask { every: u64, micros: u64 },
    /// Fail every `every`-th shuffle fetch (a reduce task's read of the map
    /// outputs), at most `limit` times. Each failure drops one live map
    /// output, so recovery has real recomputation to do.
    FailFetch { every: u64, limit: u32 },
    /// Process-level fault (multi-process mode only): when the context-wide
    /// task-launch counter reaches `at_task`, `kill -9` the worker process
    /// hosting `executor`. In local thread mode this degrades to a plain
    /// executor kill. One-shot.
    KillWorkerAtTask { at_task: u64, executor: usize },
    /// Wire-level fault on every `every`-th remote shuffle fetch, at most
    /// `limit` times (`limit == 0` means unlimited for delays): drop the
    /// stream, delay it, or garble a payload byte (which the frame CRC must
    /// catch). Only consulted on the multi-process fetch path.
    WireFaultFetch {
        every: u64,
        limit: u32,
        fault: WireFault,
    },
}

/// The wire-level fault kinds applied to a remote shuffle fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The fetch stream dies before a frame arrives (connection reset).
    Drop,
    /// The fetch stalls for this many microseconds before proceeding.
    Delay(u64),
    /// One payload byte is flipped in transit; CRC validation must reject
    /// the frame and the fetch must retry.
    Garble,
}

/// A deterministic fault schedule. Build one explicitly with the
/// `with_*` methods or expand a seed with [`ChaosPlan::seeded`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule `executor` to die at the `at_task`-th task launch.
    pub fn with_kill_at_task(mut self, at_task: u64, executor: usize) -> ChaosPlan {
        self.events
            .push(ChaosEvent::KillExecutorAtTask { at_task, executor });
        self
    }

    /// Schedule the owner of `map_partition` to die at the `nth_barrier`-th
    /// map→reduce barrier.
    pub fn with_kill_owner_at_barrier(
        mut self,
        nth_barrier: u64,
        map_partition: usize,
    ) -> ChaosPlan {
        self.events.push(ChaosEvent::KillOwnerAtBarrier {
            nth_barrier,
            map_partition,
        });
        self
    }

    /// Delay every `every`-th task launch by `micros`.
    pub fn with_task_delay(mut self, every: u64, micros: u64) -> ChaosPlan {
        self.events.push(ChaosEvent::DelayTask { every, micros });
        self
    }

    /// Fail every `every`-th shuffle fetch, at most `limit` times.
    pub fn with_fetch_failures(mut self, every: u64, limit: u32) -> ChaosPlan {
        self.events.push(ChaosEvent::FailFetch { every, limit });
        self
    }

    /// Schedule the worker process hosting `executor` to be `kill -9`'d at
    /// the `at_task`-th task launch (multi-process mode; degrades to an
    /// executor kill in local mode).
    pub fn with_kill_worker_at_task(mut self, at_task: u64, executor: usize) -> ChaosPlan {
        self.events
            .push(ChaosEvent::KillWorkerAtTask { at_task, executor });
        self
    }

    /// Apply `fault` to every `every`-th remote shuffle fetch, at most
    /// `limit` times (0 = unlimited).
    pub fn with_wire_fault(mut self, every: u64, limit: u32, fault: WireFault) -> ChaosPlan {
        self.events.push(ChaosEvent::WireFaultFetch {
            every,
            limit,
            fault,
        });
        self
    }

    /// Expand a seed into a full schedule for a pool of `executors`: up to
    /// `executors - 1` kills (so at least one executor always survives, per
    /// the recovery contract), spaced far enough apart for recovery to make
    /// progress, plus a task delay and a bounded burst of fetch failures.
    pub fn seeded(seed: u64, executors: usize) -> ChaosPlan {
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || splitmix64(&mut state);
        let mut plan = ChaosPlan::new();
        let kills = if executors > 1 {
            (1 + next() % 3).min(executors as u64 - 1)
        } else {
            0
        };
        let mut at = SEEDED_FIRST_KILL_AT + next() % 64;
        for _ in 0..kills {
            let executor = (next() % executors as u64) as usize;
            plan = plan.with_kill_at_task(at, executor);
            at += SEEDED_FIRST_KILL_AT + next() % 96;
        }
        plan = plan.with_task_delay(5 + next() % 8, 20 + next() % 180);
        plan = plan.with_fetch_failures(6 + next() % 10, 2);
        // Wire-level faults: only consulted on the multi-process fetch path,
        // free in local mode. Garbled frames exercise CRC rejection + retry;
        // drops exercise the reconnect; delays jitter fetch interleavings.
        plan = plan.with_wire_fault(9 + next() % 8, 2, WireFault::Garble);
        plan = plan.with_wire_fault(11 + next() % 8, 2, WireFault::Drop);
        plan.with_wire_fault(7 + next() % 6, 4, WireFault::Delay(30 + next() % 120))
    }

    /// Parse the [`CHAOS_ENV`] value: `off`/empty disables, a decimal seed
    /// expands via [`ChaosPlan::seeded`]. Anything else is ignored (no chaos)
    /// rather than failing the process.
    pub fn from_env(value: &str, executors: usize) -> Option<ChaosPlan> {
        let v = value.trim();
        if v.is_empty() || v.eq_ignore_ascii_case("off") {
            return None;
        }
        v.parse::<u64>()
            .ok()
            .map(|seed| ChaosPlan::seeded(seed, executors))
    }
}

/// Sebastiano Vigna's splitmix64: the tiny seed-expansion PRNG (public
/// domain algorithm), avoiding any dependency for deterministic schedules.
/// Also used by [`crate::BackoffPolicy`] for deterministic retry jitter.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What the controller wants done at one task launch.
#[derive(Debug, Default)]
pub(crate) struct TaskFaults {
    /// Executors to kill, in schedule order.
    pub(crate) kill: Vec<usize>,
    /// Executors whose *worker process* dies (kill -9), in schedule order.
    pub(crate) kill_worker_of: Vec<usize>,
    /// How long to delay the launch.
    pub(crate) delay: Duration,
}

/// Replays a [`ChaosPlan`] against the live counters of one context. Pure
/// decision logic: the context owns the side effects.
pub(crate) struct ChaosController {
    plan: ChaosPlan,
    state: Mutex<ChaosState>,
}

#[derive(Default)]
struct ChaosState {
    tasks: u64,
    barriers: u64,
    fetches: u64,
    wire_fetches: u64,
    /// Per-event one-shot latch (kill events) / remaining budget (fetch
    /// failures), indexed like `plan.events`.
    fired: Vec<u64>,
}

impl ChaosController {
    pub(crate) fn new(plan: ChaosPlan) -> ChaosController {
        let fired = vec![0; plan.events.len()];
        ChaosController {
            plan,
            state: Mutex::new(ChaosState {
                fired,
                ..ChaosState::default()
            }),
        }
    }

    pub(crate) fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Advance the task-launch counter and collect the faults due now.
    pub(crate) fn on_task_start(&self) -> TaskFaults {
        let mut state = self.state.lock();
        state.tasks += 1;
        let now = state.tasks;
        let mut faults = TaskFaults::default();
        for (idx, event) in self.plan.events.iter().enumerate() {
            match event {
                ChaosEvent::KillExecutorAtTask { at_task, executor }
                    if state.fired[idx] == 0 && now >= *at_task =>
                {
                    state.fired[idx] = 1;
                    faults.kill.push(*executor);
                }
                ChaosEvent::KillWorkerAtTask { at_task, executor }
                    if state.fired[idx] == 0 && now >= *at_task =>
                {
                    state.fired[idx] = 1;
                    faults.kill_worker_of.push(*executor);
                }
                ChaosEvent::DelayTask { every, micros }
                    if *every > 0 && now.is_multiple_of(*every) =>
                {
                    faults.delay += Duration::from_micros(*micros);
                }
                _ => {}
            }
        }
        faults
    }

    /// Advance the barrier counter; returns the map partitions whose owners
    /// die at this barrier.
    pub(crate) fn on_barrier(&self) -> Vec<usize> {
        let mut state = self.state.lock();
        let crossed = state.barriers;
        state.barriers += 1;
        let mut doomed = Vec::new();
        for (idx, event) in self.plan.events.iter().enumerate() {
            if let ChaosEvent::KillOwnerAtBarrier {
                nth_barrier,
                map_partition,
            } = event
            {
                if state.fired[idx] == 0 && crossed >= *nth_barrier {
                    state.fired[idx] = 1;
                    doomed.push(*map_partition);
                }
            }
        }
        doomed
    }

    /// Advance the wire-fetch counter; returns the fault to apply to this
    /// remote fetch, if any. Separate counter from [`Self::on_fetch`]: wire
    /// faults fire per socket transfer, logical fetch failures per reduce
    /// read.
    pub(crate) fn on_wire_fetch(&self) -> Option<WireFault> {
        let mut state = self.state.lock();
        state.wire_fetches += 1;
        let now = state.wire_fetches;
        for (idx, event) in self.plan.events.iter().enumerate() {
            if let ChaosEvent::WireFaultFetch {
                every,
                limit,
                fault,
            } = event
            {
                if *every > 0
                    && now.is_multiple_of(*every)
                    && (*limit == 0 || state.fired[idx] < u64::from(*limit))
                {
                    state.fired[idx] += 1;
                    return Some(*fault);
                }
            }
        }
        None
    }

    /// Advance the fetch counter; true if this fetch should fail.
    pub(crate) fn on_fetch(&self) -> bool {
        let mut state = self.state.lock();
        state.fetches += 1;
        let now = state.fetches;
        for (idx, event) in self.plan.events.iter().enumerate() {
            if let ChaosEvent::FailFetch { every, limit } = event {
                if *every > 0 && now.is_multiple_of(*every) && state.fired[idx] < u64::from(*limit)
                {
                    state.fired[idx] += 1;
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        for seed in 0..50u64 {
            for executors in [1usize, 2, 4, 8] {
                let a = ChaosPlan::seeded(seed, executors);
                let b = ChaosPlan::seeded(seed, executors);
                assert_eq!(a, b, "seed {seed} not deterministic");
                let kills: Vec<_> = a
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        ChaosEvent::KillExecutorAtTask { executor, .. } => Some(*executor),
                        _ => None,
                    })
                    .collect();
                assert!(
                    kills.len() < executors.max(1) || kills.is_empty(),
                    "seed {seed}: {} kills for {executors} executors",
                    kills.len()
                );
                assert!(kills.iter().all(|&e| e < executors));
                if executors == 1 {
                    assert!(kills.is_empty(), "a lone executor must never be killed");
                }
            }
        }
    }

    #[test]
    fn env_parsing_accepts_seeds_and_off() {
        assert!(ChaosPlan::from_env("off", 4).is_none());
        assert!(ChaosPlan::from_env("OFF", 4).is_none());
        assert!(ChaosPlan::from_env("", 4).is_none());
        assert!(ChaosPlan::from_env("not a seed", 4).is_none());
        let plan = ChaosPlan::from_env(" 42 ", 4).expect("seed must parse");
        assert_eq!(plan, ChaosPlan::seeded(42, 4));
        assert!(!plan.is_empty());
    }

    #[test]
    fn kill_events_fire_once_at_threshold() {
        let ctl = ChaosController::new(ChaosPlan::new().with_kill_at_task(3, 1));
        assert!(ctl.on_task_start().kill.is_empty());
        assert!(ctl.on_task_start().kill.is_empty());
        assert_eq!(ctl.on_task_start().kill, vec![1]);
        assert!(ctl.on_task_start().kill.is_empty(), "one-shot");
    }

    #[test]
    fn fetch_failures_respect_the_limit() {
        let ctl = ChaosController::new(ChaosPlan::new().with_fetch_failures(2, 2));
        let outcomes: Vec<bool> = (0..10).map(|_| ctl.on_fetch()).collect();
        assert_eq!(outcomes.iter().filter(|&&b| b).count(), 2);
        assert!(outcomes[1] && outcomes[3]);
    }

    #[test]
    fn barrier_kills_fire_at_their_barrier() {
        let ctl = ChaosController::new(ChaosPlan::new().with_kill_owner_at_barrier(1, 0));
        assert!(ctl.on_barrier().is_empty(), "barrier 0 passes clean");
        assert_eq!(ctl.on_barrier(), vec![0], "barrier 1 kills");
        assert!(ctl.on_barrier().is_empty(), "one-shot");
    }

    #[test]
    fn wire_faults_fire_on_their_own_counter_and_respect_limits() {
        let ctl = ChaosController::new(
            ChaosPlan::new()
                .with_wire_fault(2, 2, WireFault::Garble)
                .with_fetch_failures(2, 1),
        );
        let faults: Vec<_> = (0..10).map(|_| ctl.on_wire_fetch()).collect();
        assert_eq!(faults.iter().filter(|f| f.is_some()).count(), 2);
        assert_eq!(faults[1], Some(WireFault::Garble));
        assert_eq!(faults[3], Some(WireFault::Garble));
        // The logical-fetch counter is untouched by wire fetches.
        assert!(!ctl.on_fetch());
        assert!(ctl.on_fetch());
    }

    #[test]
    fn worker_kills_fire_once_at_threshold() {
        let ctl = ChaosController::new(ChaosPlan::new().with_kill_worker_at_task(2, 3));
        assert!(ctl.on_task_start().kill_worker_of.is_empty());
        assert_eq!(ctl.on_task_start().kill_worker_of, vec![3]);
        assert!(ctl.on_task_start().kill_worker_of.is_empty(), "one-shot");
    }

    #[test]
    fn delays_accumulate_on_matching_tasks() {
        let ctl = ChaosController::new(ChaosPlan::new().with_task_delay(2, 50));
        assert_eq!(ctl.on_task_start().delay, Duration::ZERO);
        assert_eq!(ctl.on_task_start().delay, Duration::from_micros(50));
    }
}
