//! Query profiles: fold a structured event log into per-job / per-stage
//! statistics.
//!
//! A [`JobProfile`] is built from the events collected between
//! [`crate::Context::trace`] and [`crate::Context::take_profile`]. It answers
//! the questions the paper's evaluation cares about — how many shuffle
//! stages did a plan run, how many bytes moved, where did the time go, how
//! skewed were the tasks — without diffing global counters (which breaks
//! under concurrent jobs and parallel tests).

use crate::events::Event;

/// Block-manager cache activity, aggregated per stage, per dataset, or for
/// the whole profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Partitions served from cache (memory or disk).
    pub hits: u64,
    /// Subset of `hits` that were decoded from a spill file.
    pub hits_from_disk: u64,
    /// First-time computations of a persisted partition.
    pub misses: u64,
    /// Blocks evicted to honor the storage budget.
    pub evictions: u64,
    /// Blocks written to a spill file (at eviction or directly).
    pub spills: u64,
    /// Recomputations of a partition that had been cached before (the
    /// lineage-recovery path after an eviction or unpersist).
    pub recomputes: u64,
}

impl CacheStats {
    /// Any cache activity at all?
    pub fn is_empty(&self) -> bool {
        *self == CacheStats::default()
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.hits_from_disk += other.hits_from_disk;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.spills += other.spills;
        self.recomputes += other.recomputes;
    }

    fn render(&self) -> String {
        let mut parts = vec![format!("{} hits", self.hits)];
        if self.hits_from_disk > 0 {
            parts.push(format!("{} from disk", self.hits_from_disk));
        }
        parts.push(format!("{} misses", self.misses));
        if self.recomputes > 0 {
            parts.push(format!("{} recomputed", self.recomputes));
        }
        if self.evictions > 0 {
            parts.push(format!("{} evicted", self.evictions));
        }
        if self.spills > 0 {
            parts.push(format!("{} spilled", self.spills));
        }
        parts.join(", ")
    }
}

/// Fault-recovery activity folded from the executor-loss event family
/// (`ExecutorLost` / `FetchFailed` / `StageResubmitted` / `TaskSpeculated`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Worker processes declared dead (kill -9, heartbeat deadline, or a
    /// failed map-output PUT); each sweeps the executors it hosted.
    pub workers_lost: u64,
    /// Executor kills observed (chaos or explicit).
    pub executors_lost: u64,
    /// Shuffle map outputs swept with lost executors.
    pub lost_map_outputs: u64,
    /// Cached blocks swept with lost executors.
    pub lost_blocks: u64,
    /// Shuffle fetch retries against worker processes (each backed off and
    /// tried again before escalating to a fetch failure).
    pub fetch_retries: u64,
    /// Reduce tasks that surfaced missing map outputs.
    pub fetch_failures: u64,
    /// Map-stage resubmissions covering missing partitions.
    pub stages_resubmitted: u64,
    /// Map partitions recomputed by those resubmissions.
    pub resubmitted_tasks: u64,
    /// Duplicate attempts launched by speculative execution.
    pub speculated_tasks: u64,
    /// Wall-clock spent in resubmitted map stages — the recovery overhead a
    /// fault-free run would not pay.
    pub recovery_wall_micros: u64,
}

impl RecoveryStats {
    /// Any recovery activity at all?
    pub fn is_empty(&self) -> bool {
        *self == RecoveryStats::default()
    }

    fn render(&self) -> String {
        let mut parts = vec![format!(
            "{} executors lost ({} map outputs, {} blocks)",
            self.executors_lost, self.lost_map_outputs, self.lost_blocks
        )];
        if self.workers_lost > 0 {
            parts.push(format!("{} worker processes lost", self.workers_lost));
        }
        if self.fetch_retries > 0 {
            parts.push(format!("{} fetch retries", self.fetch_retries));
        }
        if self.fetch_failures > 0 {
            parts.push(format!("{} fetch failures", self.fetch_failures));
        }
        parts.push(format!(
            "{} stages resubmitted ({} tasks)",
            self.stages_resubmitted, self.resubmitted_tasks
        ));
        if self.speculated_tasks > 0 {
            parts.push(format!("{} speculated tasks", self.speculated_tasks));
        }
        parts.push(format!(
            "{} recovering",
            fmt_micros(self.recovery_wall_micros)
        ));
        parts.join(", ")
    }
}

/// Multi-tenant query-service activity folded from the admission-control
/// event family (`JobAdmitted` / `JobCancelled` / `PlanCacheHit`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs the fair scheduler admitted into an execution slot.
    pub jobs_admitted: u64,
    /// Jobs cancelled cooperatively at a task boundary.
    pub jobs_cancelled: u64,
    /// Queries answered from the normalized-comprehension plan cache.
    pub plan_cache_hits: u64,
    /// Total wall-clock jobs spent queued before admission.
    pub queue_micros: u64,
}

impl ServiceStats {
    /// Any service activity at all?
    pub fn is_empty(&self) -> bool {
        *self == ServiceStats::default()
    }

    fn render(&self) -> String {
        let mut parts = vec![format!(
            "{} jobs admitted ({} queued)",
            self.jobs_admitted,
            fmt_micros(self.queue_micros)
        )];
        if self.jobs_cancelled > 0 {
            parts.push(format!("{} cancelled", self.jobs_cancelled));
        }
        if self.plan_cache_hits > 0 {
            parts.push(format!("{} plan-cache hits", self.plan_cache_hits));
        }
        parts.join(", ")
    }
}

/// Statistics for one scheduler stage.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    pub stage_id: u64,
    /// Job (action) this stage ran under, if tracing saw the job start.
    pub job_id: Option<u64>,
    /// Scheduler-level stage kind, e.g. `shuffle.map(reduceByKey)` or
    /// `action(collect)`.
    pub label: String,
    /// Plan node that produced this stage, e.g. `contraction/groupByJoin`.
    pub tag: Option<String>,
    /// Operator lineage of the stage's input, innermost source last.
    pub lineage: Option<String>,
    /// Task count the stage was submitted with.
    pub tasks: usize,
    /// Driver wall-clock for the whole stage.
    pub wall_micros: u64,
    /// Wall-clock of each *successful* task attempt, in completion order
    /// (the per-stage task-time histogram).
    pub task_micros: Vec<u64>,
    /// Failed task attempts (retries) observed in this stage.
    pub failed_attempts: u32,
    /// How many of those failures were injected by fault-tolerance testing.
    pub injected_failures: u32,
    /// Shuffle output of this stage's tasks (map side), summed over tasks.
    pub shuffle_bytes_written: u64,
    pub shuffle_records_written: u64,
    /// Shuffle input of this stage's tasks (reduce side), summed over tasks.
    pub shuffle_bytes_read: u64,
    pub shuffle_records_read: u64,
    /// Largest single-task shuffle write/read, for partition-size skew.
    pub max_task_shuffle_bytes_written: u64,
    pub max_task_shuffle_bytes_read: u64,
    /// Shuffle operator, when this stage is a shuffle map or reduce stage.
    pub operator: Option<String>,
    /// Per-operator output cardinalities observed inside this stage's tasks
    /// (`operator_output` events), in first-seen order. A fused narrow chain
    /// reports one entry per operator even though the stage ran a single
    /// pipelined iterator per task.
    pub operators: Vec<OperatorStats>,
    /// Block-manager cache activity attributed to this stage's tasks.
    pub cache: CacheStats,
}

/// Output cardinality of one operator within one stage, summed over tasks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorStats {
    pub operator: String,
    /// Rows that flowed out of the operator's stream, over all task attempts.
    pub rows: u64,
    /// Shallow byte estimate (`rows × size_of::<T>()`).
    pub bytes: u64,
}

impl StageProfile {
    /// Slowest successful task.
    pub fn max_task_micros(&self) -> u64 {
        self.task_micros.iter().copied().max().unwrap_or(0)
    }

    /// Median successful task time.
    pub fn median_task_micros(&self) -> u64 {
        if self.task_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.task_micros.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Task-time skew `max / median` (1.0 for perfectly balanced stages).
    pub fn task_skew(&self) -> f64 {
        let med = self.median_task_micros();
        if med == 0 {
            1.0
        } else {
            self.max_task_micros() as f64 / med as f64
        }
    }

    /// Did this stage write shuffle output (i.e. is it a shuffle map stage)?
    pub fn is_shuffle_write(&self) -> bool {
        self.label.starts_with("shuffle.map")
    }

    /// One human-readable profile line, e.g.
    /// `contraction/groupByJoin stage 3 shuffle.map(groupByJoin): 8 tasks in 1.2ms, 1.2 MB shuffle write`.
    pub fn render(&self) -> String {
        let mut line = String::new();
        if let Some(tag) = &self.tag {
            line.push_str(tag);
            line.push(' ');
        }
        line.push_str(&format!(
            "stage {} {}: {} tasks in {}",
            self.stage_id,
            self.label,
            self.tasks,
            fmt_micros(self.wall_micros)
        ));
        line.push_str(&format!(
            ", max/med task {}/{}",
            fmt_micros(self.max_task_micros()),
            fmt_micros(self.median_task_micros())
        ));
        if self.shuffle_bytes_written > 0 || self.is_shuffle_write() {
            line.push_str(&format!(
                ", {} shuffle write ({} records)",
                fmt_bytes(self.shuffle_bytes_written),
                self.shuffle_records_written
            ));
        }
        if self.shuffle_bytes_read > 0 {
            line.push_str(&format!(
                ", {} shuffle read ({} records)",
                fmt_bytes(self.shuffle_bytes_read),
                self.shuffle_records_read
            ));
        }
        if self.failed_attempts > 0 {
            line.push_str(&format!(
                ", {} retried attempts ({} injected)",
                self.failed_attempts, self.injected_failures
            ));
        }
        if !self.operators.is_empty() {
            let ops: Vec<String> = self
                .operators
                .iter()
                .map(|o| format!("{} {} rows/{}", o.operator, o.rows, fmt_bytes(o.bytes)))
                .collect();
            line.push_str(&format!(", operators [{}]", ops.join(", ")));
        }
        if !self.cache.is_empty() {
            line.push_str(&format!(", cache [{}]", self.cache.render()));
        }
        line
    }

    /// Output stats of one operator inside this stage, if observed.
    pub fn operator_stats(&self, operator: &str) -> Option<&OperatorStats> {
        self.operators.iter().find(|o| o.operator == operator)
    }
}

/// One cost-based physical choice the planner made (`plan.chosen` event),
/// paired at query time with the actual shuffle volume of the stages that
/// carry the chosen tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChoice {
    /// Chosen strategy tag, e.g. `contraction/broadcast` — equal to the
    /// `tag` of the stages the plan ran.
    pub chosen: String,
    /// False when the strategy was pinned by configuration.
    pub auto: bool,
    /// Shuffle partition count the plan resolved to.
    pub partitions: u64,
    /// The cost model's estimated shuffle bytes for the chosen strategy.
    pub est_shuffle_bytes: u64,
    /// Every eligible candidate with its estimated shuffle bytes.
    pub candidates: Vec<(String, u64)>,
    /// Stage-frontier re-decisions the adaptive driver made against this
    /// choice (`plan_replanned` events), in emission order. Empty for frozen
    /// plans and for plans whose measured statistics confirmed the estimate.
    pub replans: Vec<PlanReplan>,
}

/// One adaptive re-decision (`plan_replanned` event): measured statistics at
/// a stage frontier revised the strategy, the partition count, or both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReplan {
    /// Plan-node tag the re-decision applies to.
    pub tag: String,
    /// Strategy tag chosen at plan time.
    pub from: String,
    /// Strategy tag the node actually ran with.
    pub to: String,
    /// Plan-time estimated shuffle bytes of `from`.
    pub est_shuffle_bytes: u64,
    /// Re-costed shuffle bytes of `to` under the measured statistics.
    pub observed_bytes: u64,
    /// Partition count the remainder ran with.
    pub partitions: u64,
}

/// One fused elementwise region (`region_fused` event): the planner
/// collapsed a multi-operator elementwise expression into a single compiled
/// tile program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedRegion {
    /// Compiled instruction count (after constant folding).
    pub ops: u64,
    /// Tile inputs joined into the region.
    pub inputs: u64,
    /// Compiled program signature.
    pub signature: String,
    /// `;`-joined post-order source operator tags.
    pub source: String,
}

/// Summary of one job (one action: `collect`, `count`, ...).
#[derive(Debug, Clone, Default)]
pub struct JobSummary {
    pub job_id: u64,
    /// Action name.
    pub label: String,
    pub wall_micros: u64,
    /// Stages submitted while this job was the innermost running job.
    pub stage_ids: Vec<u64>,
}

/// A queryable profile folded from an event log.
#[derive(Debug, Clone, Default)]
pub struct JobProfile {
    /// Stages in submission order.
    pub stages: Vec<StageProfile>,
    /// Jobs in start order.
    pub jobs: Vec<JobSummary>,
    /// Cache activity per persisted dataset id, in first-seen order. Unlike
    /// the per-stage `cache` fields this also counts events that carried no
    /// stage attribution (e.g. emitted from the driver thread).
    pub cache_by_dataset: Vec<(u64, CacheStats)>,
    /// Executor-loss / recovery activity across the whole profile.
    pub recovery: RecoveryStats,
    /// Cost-based plan decisions (`plan.chosen` events), in emission order.
    pub plan_choices: Vec<PlanChoice>,
    /// Fused elementwise regions (`region_fused` events), in emission order.
    pub fused_regions: Vec<FusedRegion>,
    /// Multi-tenant admission / cancellation / plan-cache activity.
    pub service: ServiceStats,
}

impl JobProfile {
    /// Fold a raw event log into per-stage / per-job statistics. Tolerates
    /// partial logs (e.g. tracing enabled mid-job): events for unknown
    /// stages create placeholder entries.
    pub fn from_events(events: &[Event]) -> JobProfile {
        let mut profile = JobProfile::default();
        for event in events {
            match event {
                Event::JobStart { job_id, label, .. } => profile.jobs.push(JobSummary {
                    job_id: *job_id,
                    label: label.clone(),
                    ..JobSummary::default()
                }),
                Event::JobEnd {
                    job_id,
                    wall_micros,
                } => {
                    if let Some(job) = profile.jobs.iter_mut().find(|j| j.job_id == *job_id) {
                        job.wall_micros = *wall_micros;
                    }
                }
                Event::StageStart {
                    stage_id,
                    job_id,
                    label,
                    tag,
                    lineage,
                    tasks,
                    ..
                } => {
                    let stage = profile.stage_mut(*stage_id);
                    stage.job_id = *job_id;
                    stage.label = label.clone();
                    stage.tag = tag.clone();
                    stage.lineage = lineage.clone();
                    stage.tasks = *tasks;
                    if let Some(job_id) = job_id {
                        if let Some(job) = profile.jobs.iter_mut().find(|j| j.job_id == *job_id) {
                            job.stage_ids.push(*stage_id);
                        }
                    }
                }
                Event::TaskEnd {
                    stage_id,
                    wall_micros,
                    ok,
                    injected,
                    ..
                } => {
                    let stage = profile.stage_mut(*stage_id);
                    if *ok {
                        stage.task_micros.push(*wall_micros);
                    } else {
                        stage.failed_attempts += 1;
                        if *injected {
                            stage.injected_failures += 1;
                        }
                    }
                }
                Event::StageEnd {
                    stage_id,
                    wall_micros,
                } => profile.stage_mut(*stage_id).wall_micros = *wall_micros,
                Event::ShuffleWrite {
                    stage_id,
                    operator,
                    bytes,
                    records,
                    ..
                } => {
                    let stage = profile.stage_mut(*stage_id);
                    stage.shuffle_bytes_written += bytes;
                    stage.shuffle_records_written += records;
                    stage.max_task_shuffle_bytes_written =
                        stage.max_task_shuffle_bytes_written.max(*bytes);
                    stage.operator = Some(operator.clone());
                }
                Event::ShuffleRead {
                    stage_id,
                    operator,
                    bytes,
                    records,
                    ..
                } => {
                    let stage = profile.stage_mut(*stage_id);
                    stage.shuffle_bytes_read += bytes;
                    stage.shuffle_records_read += records;
                    stage.max_task_shuffle_bytes_read =
                        stage.max_task_shuffle_bytes_read.max(*bytes);
                    stage.operator = Some(operator.clone());
                }
                Event::OperatorOutput {
                    stage_id,
                    operator,
                    rows,
                    bytes,
                    ..
                } => {
                    // Driver-side drains (no stage) have nowhere to attach.
                    if let Some(stage_id) = stage_id {
                        let stage = profile.stage_mut(*stage_id);
                        let stats =
                            match stage.operators.iter_mut().find(|o| o.operator == *operator) {
                                Some(stats) => stats,
                                None => {
                                    stage.operators.push(OperatorStats {
                                        operator: operator.clone(),
                                        ..OperatorStats::default()
                                    });
                                    stage.operators.last_mut().unwrap()
                                }
                            };
                        stats.rows += rows;
                        stats.bytes += bytes;
                    }
                }
                Event::CacheHit {
                    dataset,
                    from_disk,
                    stage_id,
                    ..
                } => profile.record_cache(*dataset, *stage_id, |c| {
                    c.hits += 1;
                    if *from_disk {
                        c.hits_from_disk += 1;
                    }
                }),
                Event::CacheMiss {
                    dataset, stage_id, ..
                } => profile.record_cache(*dataset, *stage_id, |c| c.misses += 1),
                Event::CacheEvict {
                    dataset, stage_id, ..
                } => profile.record_cache(*dataset, *stage_id, |c| c.evictions += 1),
                Event::CacheSpill {
                    dataset, stage_id, ..
                } => profile.record_cache(*dataset, *stage_id, |c| c.spills += 1),
                Event::CacheRecompute {
                    dataset, stage_id, ..
                } => profile.record_cache(*dataset, *stage_id, |c| c.recomputes += 1),
                Event::ExecutorLost {
                    lost_map_outputs,
                    lost_blocks,
                    ..
                } => {
                    profile.recovery.executors_lost += 1;
                    profile.recovery.lost_map_outputs += lost_map_outputs;
                    profile.recovery.lost_blocks += lost_blocks;
                }
                Event::WorkerLost { .. } => profile.recovery.workers_lost += 1,
                Event::FetchRetry { .. } => profile.recovery.fetch_retries += 1,
                Event::FetchFailed { .. } => profile.recovery.fetch_failures += 1,
                Event::StageResubmitted { missing_tasks, .. } => {
                    profile.recovery.stages_resubmitted += 1;
                    profile.recovery.resubmitted_tasks += missing_tasks;
                }
                Event::TaskSpeculated { .. } => profile.recovery.speculated_tasks += 1,
                Event::PlanChosen {
                    chosen,
                    auto,
                    partitions,
                    est_shuffle_bytes,
                    candidates,
                    ..
                } => profile.plan_choices.push(PlanChoice {
                    chosen: chosen.clone(),
                    auto: *auto,
                    partitions: *partitions,
                    est_shuffle_bytes: *est_shuffle_bytes,
                    candidates: candidates.clone(),
                    replans: Vec::new(),
                }),
                Event::PlanReplanned {
                    tag,
                    from,
                    to,
                    est_shuffle_bytes,
                    observed_bytes,
                    partitions,
                    ..
                } => {
                    let replan = PlanReplan {
                        tag: tag.clone(),
                        from: from.clone(),
                        to: to.clone(),
                        est_shuffle_bytes: *est_shuffle_bytes,
                        observed_bytes: *observed_bytes,
                        partitions: *partitions,
                    };
                    // Fold onto the choice the re-decision revised: the last
                    // choice whose chosen tag matches, else the last choice
                    // (a replan is always preceded by its `plan_chosen`).
                    let idx = profile
                        .plan_choices
                        .iter()
                        .rposition(|c| c.chosen == *tag)
                        .or_else(|| profile.plan_choices.len().checked_sub(1));
                    if let Some(i) = idx {
                        profile.plan_choices[i].replans.push(replan);
                    }
                }
                Event::JobAdmitted { queue_micros, .. } => {
                    profile.service.jobs_admitted += 1;
                    profile.service.queue_micros += queue_micros;
                }
                Event::JobCancelled { .. } => profile.service.jobs_cancelled += 1,
                Event::PlanCacheHit { .. } => profile.service.plan_cache_hits += 1,
                Event::RegionFused {
                    ops,
                    inputs,
                    signature,
                    source,
                    ..
                } => profile.fused_regions.push(FusedRegion {
                    ops: *ops,
                    inputs: *inputs,
                    signature: signature.clone(),
                    source: source.clone(),
                }),
            }
        }
        // Recovery wall-clock: time spent in resubmitted map stages (labels
        // `shuffle.resubmit(op)`), which only exist because of a fault.
        profile.recovery.recovery_wall_micros = profile
            .stages
            .iter()
            .filter(|s| s.label.starts_with("shuffle.resubmit"))
            .map(|s| s.wall_micros)
            .sum();
        profile
    }

    /// Apply one cache-event increment to the owning dataset's stats and, when
    /// the event was attributed to a stage, to that stage's stats too.
    fn record_cache(&mut self, dataset: u64, stage_id: Option<u64>, f: impl Fn(&mut CacheStats)) {
        let per_dataset = match self
            .cache_by_dataset
            .iter_mut()
            .find(|(d, _)| *d == dataset)
        {
            Some((_, stats)) => stats,
            None => {
                self.cache_by_dataset.push((dataset, CacheStats::default()));
                &mut self.cache_by_dataset.last_mut().unwrap().1
            }
        };
        f(per_dataset);
        if let Some(stage_id) = stage_id {
            f(&mut self.stage_mut(stage_id).cache);
        }
    }

    fn stage_mut(&mut self, stage_id: u64) -> &mut StageProfile {
        if let Some(i) = self.stages.iter().position(|s| s.stage_id == stage_id) {
            return &mut self.stages[i];
        }
        self.stages.push(StageProfile {
            stage_id,
            label: "?".into(),
            ..StageProfile::default()
        });
        self.stages.last_mut().unwrap()
    }

    /// Stage by id, if present.
    pub fn stage(&self, stage_id: u64) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.stage_id == stage_id)
    }

    /// Stages that ran under the given job.
    pub fn stages_of_job(&self, job_id: u64) -> Vec<&StageProfile> {
        self.stages
            .iter()
            .filter(|s| s.job_id == Some(job_id))
            .collect()
    }

    /// Number of shuffle *map* stages in the whole profile — the "how many
    /// shuffles did this plan run" figure the paper argues about.
    pub fn shuffle_stage_count(&self) -> usize {
        self.stages.iter().filter(|s| s.is_shuffle_write()).count()
    }

    /// Number of shuffle map stages attributed to one job.
    pub fn shuffle_stages_of_job(&self, job_id: u64) -> usize {
        self.stages
            .iter()
            .filter(|s| s.job_id == Some(job_id) && s.is_shuffle_write())
            .count()
    }

    /// Total shuffle bytes written across all stages.
    pub fn total_shuffle_bytes_written(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes_written).sum()
    }

    /// Total shuffle bytes read across all stages.
    pub fn total_shuffle_bytes_read(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes_read).sum()
    }

    /// Total failed task attempts (retries) across all stages.
    pub fn total_failed_attempts(&self) -> u32 {
        self.stages.iter().map(|s| s.failed_attempts).sum()
    }

    /// Cache activity summed over every persisted dataset.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for (_, stats) in &self.cache_by_dataset {
            total.add(stats);
        }
        total
    }

    /// Cache activity for one persisted dataset id.
    pub fn cache_of_dataset(&self, dataset: u64) -> CacheStats {
        self.cache_by_dataset
            .iter()
            .find(|(d, _)| *d == dataset)
            .map(|(_, stats)| *stats)
            .unwrap_or_default()
    }

    /// Actual shuffle bytes written by the stages a plan choice produced:
    /// the sum over stages whose `tag` equals the chosen strategy tag. The
    /// est-vs-actual comparison `explain_analyze` prints.
    ///
    /// Resubmitted map stages (labels `shuffle.resubmit(op)`) inherit the
    /// plan tag but re-write bytes the first attempt already wrote, so they
    /// are excluded — a faulted run reports first-successful-attempt bytes,
    /// the figure the estimate is comparable to.
    pub fn actual_shuffle_bytes_of_tag(&self, tag: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.tag.as_deref() == Some(tag) && !s.label.starts_with("shuffle.resubmit"))
            .map(|s| s.shuffle_bytes_written)
            .sum()
    }

    /// Shuffle write volume per operator name, in first-seen order.
    pub fn shuffle_bytes_by_operator(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for stage in &self.stages {
            let (Some(op), true) = (&stage.operator, stage.shuffle_bytes_written > 0) else {
                continue;
            };
            match out.iter_mut().find(|(name, _)| name == op) {
                Some((_, bytes)) => *bytes += stage.shuffle_bytes_written,
                None => out.push((op.clone(), stage.shuffle_bytes_written)),
            }
        }
        out
    }

    /// Multi-line human-readable rendering of the whole profile.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for job in &self.jobs {
            out.push_str(&format!(
                "job {} ({}): {} stages, {}\n",
                job.job_id,
                job.label,
                job.stage_ids.len(),
                fmt_micros(job.wall_micros)
            ));
            for stage_id in &job.stage_ids {
                if let Some(stage) = self.stage(*stage_id) {
                    out.push_str("  ");
                    out.push_str(&stage.render());
                    out.push('\n');
                }
            }
        }
        let orphans: Vec<&StageProfile> = self
            .stages
            .iter()
            .filter(|s| s.job_id.is_none() || !self.jobs.iter().any(|j| Some(j.job_id) == s.job_id))
            .collect();
        if !orphans.is_empty() {
            out.push_str("stages outside any traced job:\n");
            for stage in orphans {
                out.push_str("  ");
                out.push_str(&stage.render());
                out.push('\n');
            }
        }
        for choice in &self.plan_choices {
            let mode = if choice.auto { "auto" } else { "pinned" };
            out.push_str(&format!(
                "plan.chosen {} ({mode}, {} partitions): est {} shuffle, actual {}\n",
                choice.chosen,
                choice.partitions,
                fmt_bytes(choice.est_shuffle_bytes),
                fmt_bytes(self.actual_shuffle_bytes_of_tag(&choice.chosen)),
            ));
            for (tag, est) in &choice.candidates {
                out.push_str(&format!("  candidate {tag}: est {}\n", fmt_bytes(*est)));
            }
            for replan in &choice.replans {
                out.push_str(&format!(
                    "  plan.replanned {} -> {} ({} partitions): est {}, observed {}\n",
                    replan.from,
                    replan.to,
                    replan.partitions,
                    fmt_bytes(replan.est_shuffle_bytes),
                    fmt_bytes(replan.observed_bytes),
                ));
            }
        }
        for (dataset, stats) in &self.cache_by_dataset {
            out.push_str(&format!("cache dataset {}: {}\n", dataset, stats.render()));
        }
        if !self.recovery.is_empty() {
            out.push_str(&format!("recovery: {}\n", self.recovery.render()));
        }
        if !self.service.is_empty() {
            out.push_str(&format!("service: {}\n", self.service.render()));
        }
        if out.is_empty() {
            out.push_str("(empty profile — was tracing enabled?)\n");
        }
        out
    }
}

/// `1234` -> `1.2 KB`, etc.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Microseconds -> human-readable duration.
pub fn fmt_micros(micros: u64) -> String {
    if micros >= 1_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 1_000 {
        format!("{:.1}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn log() -> Vec<Event> {
        vec![
            Event::JobStart {
                job_id: 3,
                label: "collect".into(),
                at_micros: 0,
            },
            Event::StageStart {
                stage_id: 10,
                job_id: Some(3),
                label: "shuffle.map(reduceByKey)".into(),
                tag: Some("contraction/reduceByKey".into()),
                lineage: Some("reduceByKey <~ source".into()),
                tasks: 2,
                at_micros: 1,
            },
            Event::TaskEnd {
                stage_id: 10,
                task: 0,
                attempt: 0,
                wall_micros: 100,
                ok: true,
                injected: false,
            },
            Event::TaskEnd {
                stage_id: 10,
                task: 1,
                attempt: 0,
                wall_micros: 10,
                ok: false,
                injected: true,
            },
            Event::TaskEnd {
                stage_id: 10,
                task: 1,
                attempt: 1,
                wall_micros: 20,
                ok: true,
                injected: false,
            },
            Event::ShuffleWrite {
                stage_id: 10,
                shuffle_id: 0,
                operator: "reduceByKey".into(),
                task: 0,
                bytes: 3000,
                records: 5,
            },
            Event::ShuffleWrite {
                stage_id: 10,
                shuffle_id: 0,
                operator: "reduceByKey".into(),
                task: 1,
                bytes: 1000,
                records: 3,
            },
            Event::StageEnd {
                stage_id: 10,
                wall_micros: 150,
            },
            Event::StageStart {
                stage_id: 11,
                job_id: Some(3),
                label: "shuffle.reduce(reduceByKey)".into(),
                tag: Some("contraction/reduceByKey".into()),
                lineage: None,
                tasks: 1,
                at_micros: 160,
            },
            Event::ShuffleRead {
                stage_id: 11,
                shuffle_id: 0,
                operator: "reduceByKey".into(),
                task: 0,
                bytes: 4000,
                records: 8,
            },
            Event::TaskEnd {
                stage_id: 11,
                task: 0,
                attempt: 0,
                wall_micros: 40,
                ok: true,
                injected: false,
            },
            Event::StageEnd {
                stage_id: 11,
                wall_micros: 50,
            },
            Event::JobEnd {
                job_id: 3,
                wall_micros: 230,
            },
        ]
    }

    #[test]
    fn folds_stages_jobs_and_shuffle_io() {
        let p = JobProfile::from_events(&log());
        assert_eq!(p.jobs.len(), 1);
        assert_eq!(p.jobs[0].label, "collect");
        assert_eq!(p.jobs[0].stage_ids, vec![10, 11]);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.shuffle_stage_count(), 1);
        assert_eq!(p.shuffle_stages_of_job(3), 1);
        assert_eq!(p.total_shuffle_bytes_written(), 4000);
        assert_eq!(p.total_shuffle_bytes_read(), 4000);
        let map = p.stage(10).unwrap();
        assert_eq!(map.tasks, 2);
        assert_eq!(map.task_micros, vec![100, 20]);
        assert_eq!(map.failed_attempts, 1);
        assert_eq!(map.injected_failures, 1);
        assert_eq!(map.max_task_micros(), 100);
        assert_eq!(map.median_task_micros(), 100);
        assert_eq!(map.max_task_shuffle_bytes_written, 3000);
        assert!(map.is_shuffle_write());
        let red = p.stage(11).unwrap();
        assert!(!red.is_shuffle_write());
        assert_eq!(red.shuffle_bytes_read, 4000);
        assert_eq!(
            p.shuffle_bytes_by_operator(),
            vec![("reduceByKey".to_string(), 4000)]
        );
    }

    #[test]
    fn render_mentions_tag_stage_and_volume() {
        let p = JobProfile::from_events(&log());
        let text = p.render();
        assert!(text.contains("job 3 (collect)"), "{text}");
        assert!(text.contains("contraction/reduceByKey stage 10"), "{text}");
        assert!(text.contains("shuffle write"), "{text}");
        assert!(text.contains("retried attempts (1 injected)"), "{text}");
    }

    #[test]
    fn skew_is_max_over_median() {
        let stage = StageProfile {
            task_micros: vec![10, 10, 40],
            ..StageProfile::default()
        };
        assert_eq!(stage.median_task_micros(), 10);
        assert_eq!(stage.max_task_micros(), 40);
        assert!((stage.task_skew() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn tolerates_partial_logs() {
        let p = JobProfile::from_events(&[Event::TaskEnd {
            stage_id: 99,
            task: 0,
            attempt: 0,
            wall_micros: 5,
            ok: true,
            injected: false,
        }]);
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.stages[0].label, "?");
        assert!(p.render().contains("stages outside any traced job"));
    }

    #[test]
    fn folds_cache_events_per_stage_and_per_dataset() {
        let events = vec![
            Event::StageStart {
                stage_id: 7,
                job_id: None,
                label: "action(collect)".into(),
                tag: None,
                lineage: None,
                tasks: 2,
                at_micros: 0,
            },
            Event::CacheMiss {
                dataset: 1,
                partition: 0,
                stage_id: Some(7),
            },
            Event::CacheHit {
                dataset: 1,
                partition: 0,
                bytes: 64,
                from_disk: false,
                stage_id: Some(7),
            },
            Event::CacheHit {
                dataset: 1,
                partition: 1,
                bytes: 64,
                from_disk: true,
                stage_id: Some(7),
            },
            Event::CacheEvict {
                dataset: 1,
                partition: 0,
                bytes: 64,
                spilled: true,
                stage_id: Some(7),
            },
            Event::CacheSpill {
                dataset: 1,
                partition: 0,
                bytes: 64,
                stage_id: Some(7),
            },
            Event::CacheRecompute {
                dataset: 1,
                partition: 0,
                stage_id: Some(7),
            },
            // Dataset 2's activity carries no stage attribution: it must
            // count in the per-dataset view and totals but not in stage 7.
            Event::CacheMiss {
                dataset: 2,
                partition: 0,
                stage_id: None,
            },
        ];
        let p = JobProfile::from_events(&events);
        let stage = p.stage(7).unwrap();
        assert_eq!(
            stage.cache,
            CacheStats {
                hits: 2,
                hits_from_disk: 1,
                misses: 1,
                evictions: 1,
                spills: 1,
                recomputes: 1,
            }
        );
        assert_eq!(
            p.cache_of_dataset(1),
            CacheStats {
                hits: 2,
                hits_from_disk: 1,
                misses: 1,
                evictions: 1,
                spills: 1,
                recomputes: 1,
            }
        );
        assert_eq!(p.cache_of_dataset(2).misses, 1);
        assert_eq!(p.cache_totals().misses, 2);
        assert_eq!(p.cache_of_dataset(99), CacheStats::default());
        let text = p.render();
        assert!(
            text.contains("cache [2 hits, 1 from disk, 1 misses"),
            "{text}"
        );
        assert!(text.contains("cache dataset 1:"), "{text}");
        assert!(text.contains("cache dataset 2:"), "{text}");
    }

    #[test]
    fn folds_recovery_events_and_resubmit_wall_clock() {
        let events = vec![
            Event::WorkerLost {
                worker: 0,
                executors: 1,
                at_micros: 39,
            },
            Event::ExecutorLost {
                executor: 1,
                lost_map_outputs: 3,
                lost_blocks: 2,
                at_micros: 40,
            },
            Event::FetchRetry {
                shuffle_id: 5,
                reduce_task: 0,
                map_partition: 2,
                attempt: 0,
            },
            Event::FetchRetry {
                shuffle_id: 5,
                reduce_task: 0,
                map_partition: 2,
                attempt: 1,
            },
            Event::FetchFailed {
                shuffle_id: 5,
                stage_id: 21,
                reduce_task: 0,
                lost_map_outputs: 3,
            },
            Event::StageResubmitted {
                shuffle_id: 5,
                attempt: 1,
                missing_tasks: 3,
            },
            Event::StageStart {
                stage_id: 22,
                job_id: None,
                label: "shuffle.resubmit(reduceByKey)".into(),
                tag: None,
                lineage: None,
                tasks: 3,
                at_micros: 50,
            },
            Event::StageEnd {
                stage_id: 22,
                wall_micros: 75,
            },
            Event::TaskSpeculated {
                stage_id: 22,
                task: 2,
                executor: 0,
            },
        ];
        let p = JobProfile::from_events(&events);
        assert_eq!(
            p.recovery,
            RecoveryStats {
                workers_lost: 1,
                executors_lost: 1,
                lost_map_outputs: 3,
                lost_blocks: 2,
                fetch_retries: 2,
                fetch_failures: 1,
                stages_resubmitted: 1,
                resubmitted_tasks: 3,
                speculated_tasks: 1,
                recovery_wall_micros: 75,
            }
        );
        // Resubmitted map stages must not count as fresh shuffle stages.
        assert_eq!(p.shuffle_stage_count(), 0);
        let text = p.render();
        assert!(text.contains("recovery: 1 executors lost"), "{text}");
        assert!(text.contains("1 worker processes lost"), "{text}");
        assert!(text.contains("2 fetch retries"), "{text}");
        assert!(text.contains("1 stages resubmitted (3 tasks)"), "{text}");
    }

    #[test]
    fn folds_plan_choices_and_pairs_estimate_with_actual_bytes() {
        let mut events = log();
        events.push(Event::PlanChosen {
            chosen: "contraction/reduceByKey".into(),
            auto: true,
            partitions: 4,
            est_shuffle_bytes: 5000,
            candidates: vec![
                ("contraction/reduceByKey".into(), 5000),
                ("contraction/groupByJoin".into(), 9000),
            ],
            at_micros: 240,
        });
        let p = JobProfile::from_events(&events);
        assert_eq!(p.plan_choices.len(), 1);
        let choice = &p.plan_choices[0];
        assert!(choice.auto);
        assert_eq!(choice.est_shuffle_bytes, 5000);
        // Stage 10 (tagged contraction/reduceByKey) wrote 4000 bytes.
        assert_eq!(p.actual_shuffle_bytes_of_tag(&choice.chosen), 4000);
        assert_eq!(p.actual_shuffle_bytes_of_tag("contraction/broadcast"), 0);
        let text = p.render();
        assert!(
            text.contains("plan.chosen contraction/reduceByKey (auto, 4 partitions)"),
            "{text}"
        );
        assert!(text.contains("est 4.9 KB shuffle, actual 3.9 KB"), "{text}");
        assert!(text.contains("candidate contraction/groupByJoin"), "{text}");
    }

    /// A resubmitted map stage inherits the plan tag but re-writes bytes the
    /// first attempt already wrote; actual-vs-estimate must count only the
    /// first successful attempt, not sum attempts.
    #[test]
    fn resubmitted_stage_bytes_do_not_inflate_actual_of_tag() {
        let mut events = log();
        events.extend([
            Event::StageStart {
                stage_id: 12,
                job_id: Some(3),
                label: "shuffle.resubmit(reduceByKey)".into(),
                tag: Some("contraction/reduceByKey".into()),
                lineage: None,
                tasks: 1,
                at_micros: 200,
            },
            Event::ShuffleWrite {
                stage_id: 12,
                shuffle_id: 0,
                operator: "reduceByKey".into(),
                task: 1,
                bytes: 1000,
                records: 3,
            },
            Event::StageEnd {
                stage_id: 12,
                wall_micros: 30,
            },
        ]);
        let p = JobProfile::from_events(&events);
        // The resubmission is still visible in totals and recovery stats...
        assert_eq!(p.total_shuffle_bytes_written(), 5000);
        assert_eq!(p.recovery.recovery_wall_micros, 30);
        // ...but the est-vs-actual pairing reports first-attempt bytes only.
        assert_eq!(
            p.actual_shuffle_bytes_of_tag("contraction/reduceByKey"),
            4000
        );
    }

    #[test]
    fn folds_replans_onto_their_plan_choice_and_renders_them() {
        let mut events = log();
        events.push(Event::PlanChosen {
            chosen: "contraction/reduceByKey".into(),
            auto: true,
            partitions: 4,
            est_shuffle_bytes: 5000,
            candidates: vec![("contraction/reduceByKey".into(), 5000)],
            at_micros: 240,
        });
        events.push(Event::PlanReplanned {
            tag: "contraction/reduceByKey".into(),
            from: "contraction/reduceByKey".into(),
            to: "contraction/broadcast".into(),
            est_shuffle_bytes: 5000,
            observed_bytes: 700,
            partitions: 8,
            at_micros: 245,
        });
        let p = JobProfile::from_events(&events);
        assert_eq!(p.plan_choices.len(), 1);
        assert_eq!(
            p.plan_choices[0].replans,
            vec![PlanReplan {
                tag: "contraction/reduceByKey".into(),
                from: "contraction/reduceByKey".into(),
                to: "contraction/broadcast".into(),
                est_shuffle_bytes: 5000,
                observed_bytes: 700,
                partitions: 8,
            }]
        );
        let text = p.render();
        assert!(
            text.contains(
                "plan.replanned contraction/reduceByKey -> contraction/broadcast \
                 (8 partitions): est 4.9 KB, observed 700 B"
            ),
            "{text}"
        );
    }

    #[test]
    fn folds_service_events() {
        let events = vec![
            Event::JobAdmitted {
                tenant: "alice".into(),
                job: 1,
                queue_micros: 120,
                at_micros: 0,
            },
            Event::JobAdmitted {
                tenant: "bob".into(),
                job: 2,
                queue_micros: 80,
                at_micros: 5,
            },
            Event::JobCancelled {
                tenant: "bob".into(),
                job: 2,
                stage_id: Some(4),
                at_micros: 9,
            },
            Event::PlanCacheHit {
                tenant: "alice".into(),
                key: 0xbeef,
                at_micros: 12,
            },
        ];
        let p = JobProfile::from_events(&events);
        assert_eq!(
            p.service,
            ServiceStats {
                jobs_admitted: 2,
                jobs_cancelled: 1,
                plan_cache_hits: 1,
                queue_micros: 200,
            }
        );
        let text = p.render();
        assert!(
            text.contains("service: 2 jobs admitted (200us queued)"),
            "{text}"
        );
        assert!(text.contains("1 cancelled"), "{text}");
        assert!(text.contains("1 plan-cache hits"), "{text}");
    }

    #[test]
    fn empty_recovery_stats_render_nothing() {
        let p = JobProfile::from_events(&log());
        assert!(p.recovery.is_empty());
        assert!(!p.render().contains("recovery:"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.5 KB");
        assert_eq!(fmt_bytes(1024 * 1024 * 3 / 2), "1.5 MB");
        assert_eq!(fmt_micros(900), "900us");
        assert_eq!(fmt_micros(1500), "1.5ms");
        assert_eq!(fmt_micros(2_500_000), "2.50s");
    }
}
