//! # sparkline — a Spark-like in-process distributed dataflow runtime
//!
//! This crate is the execution substrate for the SAC reproduction. The paper
//! ("Scalable Linear Algebra Programming for Big Data Analysis", EDBT 2021)
//! compiles array comprehensions to Apache Spark RDD programs; `sparkline`
//! provides the same programming and execution model in-process:
//!
//! * [`Dataset<T>`] — a lazy, immutable, partitioned collection (an RDD).
//!   Transformations build a DAG; actions (`collect`, `count`, `reduce`)
//!   trigger execution.
//! * **Narrow transformations** (`map`, `flat_map`, `filter`,
//!   `map_partitions`, `map_values`) run pipelined inside one task per
//!   partition: operators exchange pull-based [`PartitionStream`]s, so a
//!   narrow chain fuses into one iterator per task with no intermediate
//!   collection, and sources/cached blocks are handed out as zero-copy
//!   shared views.
//! * **Wide transformations** (`reduce_by_key`, `group_by_key`, `join`,
//!   `cogroup`, `partition_by`) introduce a shuffle: map tasks bucket their
//!   output by a [`KeyPartitioner`], reduce tasks merge the buckets. Shuffled
//!   bytes and record counts are accounted in [`Metrics`] so the cost claims
//!   of the paper (e.g. `reduceByKey` shuffles less than `groupByKey` thanks
//!   to map-side combining) are observable, not just asserted.
//! * **Executors** are logical fault domains over the worker threads; every
//!   stage's tasks are scheduled onto them, and failed tasks are retried from
//!   lineage (narrow chains recompute, shuffle outputs are reused). Losing an
//!   executor ([`Context::kill_executor`], or a seeded [`ChaosPlan`]) loses
//!   the shuffle map outputs and cached blocks it owned; the scheduler
//!   resubmits only the missing map tasks and recomputes lost blocks from
//!   lineage, and stragglers can be speculatively re-executed on healthy
//!   executors — all of which is exercised by the chaos tests.
//!
//! The runtime is intentionally faithful to Spark semantics where the paper
//! relies on them:
//!
//! * `reduce_by_key` performs **map-side combining** (Spark's combiner), so a
//!   tile-level `reduceByKey` plan writes one partially-reduced tile per key
//!   per map task rather than one record per product.
//! * `join`/`cogroup` of two datasets that are **co-partitioned** (same
//!   [`KeyPartitioner`] descriptor and partition count) execute as a narrow
//!   zip of partitions without any shuffle, mirroring Spark's
//!   partitioner-aware joins.
//! * Nested datasets are not allowed inside task closures (there is no handle
//!   to smuggle: closures only see plain values), matching Spark's "no nested
//!   RDDs" rule that §4 of the paper designs around.

// Generic dataflow signatures (`Dataset<(K, (Vec<V>, Vec<W>))>`, boxed
// combiner closures) spell out the shuffle contract; aliases would hide it.
#![allow(clippy::type_complexity)]

pub mod chaos;
pub mod context;
pub mod dataset;
pub mod events;
pub mod metrics;
pub mod ops;
pub mod partitioner;
pub mod profile;
pub mod service;
pub mod shuffle;
pub mod size;
pub mod storage;
pub mod stream;
mod sync;
pub mod transport;
pub mod wire;

pub use chaos::{ChaosEvent, ChaosPlan, WireFault, CHAOS_ENV};
pub use context::{
    Context, ContextBuilder, ExecutorStatus, InjectedFailuresGuard, EXTERNAL_SHUFFLE_ENV,
    STORAGE_BUDGET_ENV, WORKER_PROCS_ENV,
};
pub use dataset::Dataset;
pub use events::{Event, EventCollector};
pub use metrics::{Metrics, MetricsSnapshot, ShuffleDetail};
pub use partitioner::KeyPartitioner;
pub use profile::{
    CacheStats, JobProfile, JobSummary, OperatorStats, PlanChoice, RecoveryStats, ServiceStats,
    StageProfile,
};
pub use service::{panic_is_cancelled, AdmissionGuard, CancelToken, FairScheduler, CANCELLED_MSG};
pub use shuffle::BackoffPolicy;
pub use size::SizeOf;
pub use storage::{
    BlockManager, CacheRead, SpillCodec, StorageLevel, StorageStatus, TenantStorage,
};
pub use stream::PartitionStream;
pub use transport::{WorkerClient, WorkerGroup};
pub use wire::WireError;

/// Marker bound for element types stored in datasets.
///
/// Everything that flows through the runtime must be shareable across worker
/// threads and clonable (records are duplicated at shuffle boundaries, as
/// serialization would do on a real cluster).
pub trait Data: Send + Sync + Clone + 'static {}
impl<T: Send + Sync + Clone + 'static> Data for T {}
