//! Abstract syntax of the loop language.

use comp::ast::Expr;

/// Accumulating assignment operators (each corresponds to a monoid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=` — plain (re)definition.
    Set,
    /// `+=` — sum accumulation.
    AddAssign,
    /// `*=` — product accumulation.
    MulAssign,
}

/// A statement of the loop language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for v = lo, hi do body` — inclusive bounds, as in DIABLO/Fortran.
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        body: Vec<Stmt>,
    },
    /// `A[e1, ..., en] op rhs;`
    Assign {
        array: String,
        indices: Vec<Expr>,
        op: AssignOp,
        rhs: Expr,
    },
}

/// A program: a sequence of top-level statements, each loop nest producing
/// (or updating) one array.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub stmts: Vec<Stmt>,
}

impl Stmt {
    /// The innermost assignment of a perfect loop nest, with the loop
    /// variables and bounds collected outside-in. `None` if the nest is not
    /// perfect (multiple statements at some level).
    #[allow(clippy::type_complexity)]
    pub fn as_perfect_nest(&self) -> Option<(Vec<(String, Expr, Expr)>, &Stmt)> {
        let mut loops = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Stmt::For { var, lo, hi, body } => {
                    if body.len() != 1 {
                        return None;
                    }
                    loops.push((var.clone(), lo.clone(), hi.clone()));
                    cur = &body[0];
                }
                assign @ Stmt::Assign { .. } => return Some((loops, assign)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_nest_extraction() {
        let inner = Stmt::Assign {
            array: "V".into(),
            indices: vec![Expr::Var("i".into())],
            op: AssignOp::AddAssign,
            rhs: Expr::Int(1),
        };
        let nest = Stmt::For {
            var: "i".into(),
            lo: Expr::Int(0),
            hi: Expr::Int(9),
            body: vec![Stmt::For {
                var: "j".into(),
                lo: Expr::Int(0),
                hi: Expr::Int(4),
                body: vec![inner.clone()],
            }],
        };
        let (loops, assign) = nest.as_perfect_nest().unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].0, "i");
        assert_eq!(assign, &inner);
    }

    #[test]
    fn imperfect_nest_is_rejected() {
        let a = Stmt::Assign {
            array: "V".into(),
            indices: vec![Expr::Var("i".into())],
            op: AssignOp::Set,
            rhs: Expr::Int(0),
        };
        let nest = Stmt::For {
            var: "i".into(),
            lo: Expr::Int(0),
            hi: Expr::Int(9),
            body: vec![a.clone(), a],
        };
        assert!(nest.as_perfect_nest().is_none());
    }
}
