//! Parser for the loop language, reusing the comprehension lexer and
//! expression grammar.

use crate::ast::{AssignOp, Program, Stmt};
use comp::errors::CompError;
use comp::lexer::{tokenize, Spanned, Token};

/// Parse a loop program.
pub fn parse_program(src: &str) -> Result<Program, CompError> {
    let tokens = tokenize(src)?;
    let mut p = LoopParser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while p.pos < p.tokens.len() {
        stmts.push(p.stmt()?);
    }
    Ok(Program { stmts })
}

struct LoopParser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl LoopParser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |s| s.offset)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), CompError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompError::parse(
                format!("expected {what}, found {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    /// Collect the tokens of one expression (up to a delimiter at depth 0)
    /// and parse them with the comprehension expression parser.
    fn expr_until(&mut self, stops: &[Token]) -> Result<comp::Expr, CompError> {
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && stops.contains(t) {
                break;
            }
            match t {
                Token::LParen | Token::LBracket | Token::LBrace => depth += 1,
                Token::RParen | Token::RBracket | Token::RBrace => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(CompError::parse("expected an expression", self.offset()));
        }
        // Re-render the token slice into source for the expression parser.
        // Tokens are whitespace-insensitive, so rendering is lossless.
        let text: String = self.tokens[start..self.pos]
            .iter()
            .map(|s| render(&s.token))
            .collect::<Vec<_>>()
            .join(" ");
        comp::parse_expr(&text)
    }

    fn stmt(&mut self) -> Result<Stmt, CompError> {
        match self.peek() {
            Some(Token::Ident(w)) if w == "for" => {
                self.pos += 1;
                let Some(Token::Ident(var)) = self.peek().cloned() else {
                    return Err(CompError::parse(
                        "expected loop variable after `for`",
                        self.offset(),
                    ));
                };
                self.pos += 1;
                self.expect(&Token::Assign, "`=` in for header")?;
                let lo = self.expr_until(&[Token::Comma])?;
                self.expect(&Token::Comma, "`,` between loop bounds")?;
                let hi = self.expr_until(&[Token::Ident("do".into())])?;
                self.expect(&Token::Ident("do".into()), "`do`")?;
                let body = if self.eat(&Token::LBrace) {
                    let mut body = Vec::new();
                    while !self.eat(&Token::RBrace) {
                        body.push(self.stmt()?);
                    }
                    body
                } else {
                    vec![self.stmt()?]
                };
                Ok(Stmt::For { var, lo, hi, body })
            }
            Some(Token::Ident(_)) => {
                let Some(Token::Ident(array)) = self.peek().cloned() else {
                    unreachable!()
                };
                self.pos += 1;
                self.expect(&Token::LBracket, "`[` in array assignment")?;
                let mut indices = vec![self.expr_until(&[Token::Comma, Token::RBracket])?];
                while self.eat(&Token::Comma) {
                    indices.push(self.expr_until(&[Token::Comma, Token::RBracket])?);
                }
                self.expect(&Token::RBracket, "`]`")?;
                let op = if self.eat(&Token::Plus) {
                    self.expect(&Token::Assign, "`=` of `+=`")?;
                    AssignOp::AddAssign
                } else if self.eat(&Token::Star) {
                    self.expect(&Token::Assign, "`=` of `*=`")?;
                    AssignOp::MulAssign
                } else {
                    self.expect(&Token::Assign, "`=` or `+=`")?;
                    AssignOp::Set
                };
                let rhs = self.expr_until(&[Token::Semi])?;
                self.expect(&Token::Semi, "`;` after assignment")?;
                Ok(Stmt::Assign {
                    array,
                    indices,
                    op,
                    rhs,
                })
            }
            other => Err(CompError::parse(
                format!("expected a statement, found {other:?}"),
                self.offset(),
            )),
        }
    }
}

/// Render one token back to source text.
fn render(t: &Token) -> String {
    match t {
        Token::Int(n) => n.to_string(),
        Token::Float(x) => format!("{x:?}"),
        Token::Str(s) => format!("\"{s}\""),
        Token::Ident(w) => w.clone(),
        Token::Let => "let".into(),
        Token::Group => "group".into(),
        Token::By => "by".into(),
        Token::Until => "until".into(),
        Token::To => "to".into(),
        Token::If => "if".into(),
        Token::Else => "else".into(),
        Token::True => "true".into(),
        Token::False => "false".into(),
        Token::LBracket => "[".into(),
        Token::RBracket => "]".into(),
        Token::LParen => "(".into(),
        Token::RParen => ")".into(),
        Token::Comma => ",".into(),
        Token::Bar => "|".into(),
        Token::Arrow => "<-".into(),
        Token::Assign => "=".into(),
        Token::Colon => ":".into(),
        Token::Dot => ".".into(),
        Token::Plus => "+".into(),
        Token::Minus => "-".into(),
        Token::Star => "*".into(),
        Token::Slash => "/".into(),
        Token::Percent => "%".into(),
        Token::EqEq => "==".into(),
        Token::NotEq => "!=".into(),
        Token::Lt => "<".into(),
        Token::Le => "<=".into(),
        Token::Gt => ">".into(),
        Token::Ge => ">=".into(),
        Token::AndAnd => "&&".into(),
        Token::OrOr => "||".into(),
        Token::PlusPlus => "++".into(),
        Token::Not => "!".into(),
        Token::Underscore => "_".into(),
        Token::Semi => ";".into(),
        Token::LBrace => "{".into(),
        Token::RBrace => "}".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comp::ast::Expr;

    #[test]
    fn parses_matmul_nest() {
        let src = "for i = 0, n-1 do for j = 0, n-1 do for k = 0, n-1 do \
                   C[i, j] += A[i, k] * B[k, j];";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.stmts.len(), 1);
        let (loops, assign) = prog.stmts[0].as_perfect_nest().unwrap();
        assert_eq!(
            loops.iter().map(|(v, _, _)| v.as_str()).collect::<Vec<_>>(),
            vec!["i", "j", "k"]
        );
        let Stmt::Assign {
            array,
            indices,
            op,
            rhs,
        } = assign
        else {
            panic!()
        };
        assert_eq!(array, "C");
        assert_eq!(indices.len(), 2);
        assert_eq!(*op, AssignOp::AddAssign);
        assert!(matches!(rhs, Expr::BinOp(comp::BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_braced_blocks_and_sequences() {
        let src = "for i = 0, 9 do { V[i] = 0.0; W[i] = 1.0; } V[0] = 5.0;";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.stmts.len(), 2);
        let Stmt::For { body, .. } = &prog.stmts[0] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn loop_bounds_are_expressions() {
        let src = "for i = 0, 2*n - 1 do V[i] = 0.0;";
        let prog = parse_program(src).unwrap();
        let Stmt::For { hi, .. } = &prog.stmts[0] else {
            panic!()
        };
        assert!(matches!(hi, Expr::BinOp(comp::BinOp::Sub, _, _)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("for = 0").is_err());
        assert!(parse_program("V[0] 5;").is_err());
        assert!(parse_program("V[0] = ;").is_err());
    }

    #[test]
    fn star_assign() {
        let prog = parse_program("P[i] *= x;").unwrap();
        let Stmt::Assign { op, .. } = &prog.stmts[0] else {
            panic!()
        };
        assert_eq!(*op, AssignOp::MulAssign);
    }
}
