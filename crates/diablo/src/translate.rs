//! Loop-nest → comprehension translation.
//!
//! Each perfect loop nest with one innermost assignment becomes one array
//! comprehension:
//!
//! * every array *read* `X[e1, ..., en]` becomes a generator over `X`; index
//!   positions that are fresh loop variables bind them, repeated or complex
//!   positions get fresh variables plus equality guards (this is what makes
//!   joins appear — rule 14 fires on the guards);
//! * loop variables not bound by any read become range generators;
//! * `=` assignments produce a plain comprehension; `+=`/`*=` accumulations
//!   produce a group-by over the written indices with the matching monoid —
//!   exactly the recurrence restriction DIABLO imposes;
//! * a preceding `X[...] = 0;`-style initialization nest for an accumulated
//!   array is recognized and absorbed (the dense builder zero-fills).
//!
//! The output is a `tiled(...)` / `tiled_vector(...)` builder expression the
//! SAC planner compiles; matrix multiplication written as a triple loop
//! plans as a contraction, row sums as an axis reduction, and so on.

use crate::ast::{AssignOp, Program, Stmt};
use comp::ast::{BinOp, Comprehension, Expr, Monoid, Pattern, Qualifier};
use comp::errors::CompError;
use std::collections::BTreeSet;

/// A translated program: one comprehension per produced array.
#[derive(Debug, Clone)]
pub struct Translated {
    /// `(array name, builder expression)`, in program order.
    pub outputs: Vec<(String, Expr)>,
}

/// Translate a whole program.
pub fn translate(program: &Program) -> Result<Translated, CompError> {
    let mut outputs: Vec<(String, Expr)> = Vec::new();
    let stmts = &program.stmts;
    let mut skip: Vec<usize> = Vec::new();

    // Recognize zero-initialization nests absorbed by later accumulations.
    for (i, stmt) in stmts.iter().enumerate() {
        let Some((_, Stmt::Assign { array, op, rhs, .. })) = stmt.as_perfect_nest() else {
            continue;
        };
        if *op == AssignOp::Set && is_zero(rhs) {
            let accumulated_later = stmts.iter().skip(i + 1).any(|later| {
                matches!(
                    later.as_perfect_nest(),
                    Some((_, Stmt::Assign { array: a, op, .. }))
                        if a == array && *op != AssignOp::Set
                )
            });
            if accumulated_later {
                skip.push(i);
            }
        }
    }

    for (i, stmt) in stmts.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let Some((loops, assign)) = stmt.as_perfect_nest() else {
            return Err(CompError::plan(
                "only perfect loop nests (one innermost assignment) are translatable",
            ));
        };
        let Stmt::Assign {
            array,
            indices,
            op,
            rhs,
        } = assign
        else {
            unreachable!()
        };
        let expr = translate_nest(&loops, array, indices, *op, rhs)?;
        outputs.push((array.clone(), expr));
    }
    Ok(Translated { outputs })
}

fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::Int(0)) || matches!(e, Expr::Float(x) if *x == 0.0)
}

/// Translate one perfect nest.
fn translate_nest(
    loops: &[(String, Expr, Expr)],
    array: &str,
    indices: &[Expr],
    op: AssignOp,
    rhs: &Expr,
) -> Result<Expr, CompError> {
    if indices.is_empty() || indices.len() > 2 {
        return Err(CompError::plan(
            "only 1-D and 2-D array targets are translatable",
        ));
    }
    for (v, lo, _) in loops {
        if !is_zero(lo) {
            return Err(CompError::plan(format!(
                "loop `{v}` must start at 0 (found {lo})"
            )));
        }
    }
    let loop_vars: Vec<&String> = loops.iter().map(|(v, _, _)| v).collect();

    // Replace array reads with generators.
    let mut state = ReadLift {
        loop_vars: loop_vars.iter().map(|v| (*v).clone()).collect(),
        bound: BTreeSet::new(),
        generators: Vec::new(),
        guards: Vec::new(),
        reads: Vec::new(),
        counter: 0,
    };
    let value = state.lift(rhs.clone());

    // Range generators for loop variables no read binds.
    let mut qualifiers: Vec<Qualifier> = state.generators;
    for (v, lo, hi) in loops {
        if !state.bound.contains(v) {
            qualifiers.push(Qualifier::Generator(
                Pattern::Var(v.clone()),
                Expr::Range {
                    lo: Box::new(lo.clone()),
                    hi: Box::new(hi.clone()),
                    inclusive: true,
                },
            ));
        }
    }
    qualifiers.extend(state.guards.into_iter().map(Qualifier::Guard));

    // Output dimensions: hi+1 of the first loop variable in each index.
    let mut dims = Vec::new();
    for idx in indices {
        let fv = idx.free_vars();
        let dim_loop = loops
            .iter()
            .find(|(v, _, _)| fv.contains(v))
            .ok_or_else(|| {
                CompError::plan(format!(
                    "written index `{idx}` does not reference a loop variable"
                ))
            })?;
        dims.push(Expr::BinOp(
            BinOp::Add,
            Box::new(dim_loop.2.clone()),
            Box::new(Expr::Int(1)),
        ));
    }

    // Head and (for accumulations) the group-by.
    let key = if indices.len() == 1 {
        indices[0].clone()
    } else {
        Expr::Tuple(indices.to_vec())
    };
    let head_value = match op {
        AssignOp::Set => value,
        AssignOp::AddAssign | AssignOp::MulAssign => {
            let monoid = if op == AssignOp::AddAssign {
                Monoid::Sum
            } else {
                Monoid::Product
            };
            // Group by the written indices. Plain loop-variable keys group
            // by pattern; anything else groups by expression key.
            let all_vars = indices
                .iter()
                .all(|e| matches!(e, Expr::Var(v) if state.loop_vars.contains(v)));
            if all_vars {
                let pat = if indices.len() == 1 {
                    let Expr::Var(v) = &indices[0] else {
                        unreachable!()
                    };
                    Pattern::Var(v.clone())
                } else {
                    Pattern::Tuple(
                        indices
                            .iter()
                            .map(|e| {
                                let Expr::Var(v) = e else { unreachable!() };
                                Pattern::Var(v.clone())
                            })
                            .collect(),
                    )
                };
                qualifiers.push(Qualifier::GroupBy(pat, None));
            } else {
                state.counter += 1;
                let kv = format!("_key{}", state.counter);
                qualifiers.push(Qualifier::GroupBy(Pattern::Var(kv), Some(key.clone())));
            }
            Expr::Reduce(monoid, Box::new(value))
        }
    };
    let comp = Comprehension {
        head: Box::new(Expr::Tuple(vec![key, head_value])),
        qualifiers,
    };
    let builder = if indices.len() == 1 {
        "tiled_vector"
    } else {
        "tiled"
    };
    let _ = array;
    Ok(Expr::Build {
        builder: builder.into(),
        args: dims,
        body: Box::new(Expr::Comprehension(comp)),
    })
}

/// Rewrites array reads into generators while walking an expression.
struct ReadLift {
    loop_vars: Vec<String>,
    bound: BTreeSet<String>,
    generators: Vec<Qualifier>,
    guards: Vec<Expr>,
    /// `(array, rendered indices, value var)` for read deduplication.
    reads: Vec<(String, String, String)>,
    counter: usize,
}

impl ReadLift {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("_{prefix}{}", self.counter)
    }

    fn lift(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Index(base, idx) => {
                if let Expr::Var(name) = base.as_ref() {
                    return self.lift_read(name.clone(), idx);
                }
                Expr::Index(
                    Box::new(self.lift(*base)),
                    idx.into_iter().map(|x| self.lift(x)).collect(),
                )
            }
            Expr::BinOp(op, a, b) => {
                Expr::BinOp(op, Box::new(self.lift(*a)), Box::new(self.lift(*b)))
            }
            Expr::UnOp(op, a) => Expr::UnOp(op, Box::new(self.lift(*a))),
            Expr::Tuple(es) => Expr::Tuple(es.into_iter().map(|x| self.lift(x)).collect()),
            Expr::Call(f, args) => Expr::Call(f, args.into_iter().map(|x| self.lift(x)).collect()),
            Expr::If(c, t, f) => Expr::If(
                Box::new(self.lift(*c)),
                Box::new(self.lift(*t)),
                Box::new(self.lift(*f)),
            ),
            other => other,
        }
    }

    fn lift_read(&mut self, array: String, idx: Vec<Expr>) -> Expr {
        let rendered = idx
            .iter()
            .map(|e| format!("{e}"))
            .collect::<Vec<_>>()
            .join(",");
        if let Some((_, _, val)) = self
            .reads
            .iter()
            .find(|(a, r, _)| *a == array && *r == rendered)
        {
            return Expr::Var(val.clone());
        }
        let mut index_pats = Vec::new();
        for e in &idx {
            match e {
                Expr::Var(v) if self.loop_vars.contains(v) && !self.bound.contains(v) => {
                    self.bound.insert(v.clone());
                    index_pats.push(Pattern::Var(v.clone()));
                }
                other => {
                    let fresh = self.fresh("g");
                    self.guards.push(Expr::BinOp(
                        BinOp::Eq,
                        Box::new(Expr::Var(fresh.clone())),
                        Box::new(other.clone()),
                    ));
                    index_pats.push(Pattern::Var(fresh));
                }
            }
        }
        let val = self.fresh("v");
        let key_pat = if index_pats.len() == 1 {
            index_pats.pop().expect("one pattern")
        } else {
            Pattern::Tuple(index_pats)
        };
        self.generators.push(Qualifier::Generator(
            Pattern::Tuple(vec![key_pat, Pattern::Var(val.clone())]),
            Expr::Var(array.clone()),
        ));
        self.reads.push((array, rendered, val.clone()));
        Expr::Var(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn translate_src(src: &str) -> Vec<(String, Expr)> {
        translate(&parse_program(src).unwrap()).unwrap().outputs
    }

    #[test]
    fn matmul_loop_becomes_query9() {
        let outs = translate_src(
            "for i = 0, n-1 do for j = 0, n-1 do for k = 0, n-1 do \
             C[i, j] += A[i, k] * B[k, j];",
        );
        assert_eq!(outs.len(), 1);
        let Expr::Build { builder, body, .. } = &outs[0].1 else {
            panic!()
        };
        assert_eq!(builder, "tiled");
        let Expr::Comprehension(c) = body.as_ref() else {
            panic!()
        };
        // Two matrix generators, one equality guard (the contraction), one
        // group-by, a sum-reduce head.
        let gens = c
            .qualifiers
            .iter()
            .filter(|q| matches!(q, Qualifier::Generator(_, Expr::Var(_))))
            .count();
        assert_eq!(gens, 2, "{c}");
        assert!(c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::Guard(_))));
        assert!(c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::GroupBy(Pattern::Tuple(_), None))));
    }

    #[test]
    fn row_sums_loop_becomes_fig1() {
        let outs = translate_src("for i = 0, n-1 do for j = 0, m-1 do V[i] += M[i, j];");
        let Expr::Build { builder, body, .. } = &outs[0].1 else {
            panic!()
        };
        assert_eq!(builder, "tiled_vector");
        let Expr::Comprehension(c) = body.as_ref() else {
            panic!()
        };
        assert!(c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::GroupBy(Pattern::Var(v), None) if v == "i")));
    }

    #[test]
    fn zero_init_is_absorbed() {
        let outs = translate_src(
            "for i = 0, n-1 do V[i] = 0.0; \
             for i = 0, n-1 do for j = 0, n-1 do V[i] += M[i, j];",
        );
        assert_eq!(outs.len(), 1, "init nest must be absorbed");
    }

    #[test]
    fn pure_assignment_has_no_group_by() {
        let outs =
            translate_src("for i = 0, n-1 do for j = 0, m-1 do C[i, j] = A[i, j] + B[i, j];");
        let Expr::Build { body, .. } = &outs[0].1 else {
            panic!()
        };
        let Expr::Comprehension(c) = body.as_ref() else {
            panic!()
        };
        assert!(!c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::GroupBy(_, _))));
        // A and B both read at (i,j): second read gets fresh vars + guards.
        let guards = c
            .qualifiers
            .iter()
            .filter(|q| matches!(q, Qualifier::Guard(_)))
            .count();
        assert_eq!(guards, 2, "{c}");
    }

    #[test]
    fn uncovered_loop_vars_become_ranges() {
        let outs = translate_src("for i = 0, 9 do V[i] = 1.0;");
        let Expr::Build { body, .. } = &outs[0].1 else {
            panic!()
        };
        let Expr::Comprehension(c) = body.as_ref() else {
            panic!()
        };
        assert!(matches!(
            &c.qualifiers[0],
            Qualifier::Generator(
                _,
                Expr::Range {
                    inclusive: true,
                    ..
                }
            )
        ));
    }

    #[test]
    fn nonzero_lower_bound_is_rejected() {
        let prog = parse_program("for i = 1, 9 do V[i] = 1.0;").unwrap();
        assert!(translate(&prog).is_err());
    }

    #[test]
    fn shifted_write_index_groups_by_expression() {
        let outs = translate_src("for i = 0, n-1 do for j = 0, m-1 do C[i / 2, j] += M[i, j];");
        let Expr::Build { body, .. } = &outs[0].1 else {
            panic!()
        };
        let Expr::Comprehension(c) = body.as_ref() else {
            panic!()
        };
        assert!(c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::GroupBy(_, Some(_)))));
    }
}
