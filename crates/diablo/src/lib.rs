//! # diablo — a loop front-end for SAC
//!
//! The paper (§1.1) presents SAC as the back-end half of a pipeline whose
//! front-end, DIABLO, "translates array-based loops to array
//! comprehensions". This crate provides that front-end: a small imperative
//! loop language whose programs translate into the comprehensions the SAC
//! planner compiles — so the classic loop-based formulations of linear
//! algebra run as distributed block-array plans with no further work.
//!
//! ```text
//! for i = 0, n-1 do
//!   for j = 0, n-1 do
//!     for k = 0, n-1 do
//!       C[i, j] += A[i, k] * B[k, j];
//! ```
//!
//! translates to Query (9) of the paper,
//!
//! ```text
//! tiled(n,n)[ ((i,j), +/%v) | ((i,k),%a) <- A, ((%k,j),%b) <- B, %k == k,
//!             let %v = %a * %b, group by (i,j) ]
//! ```
//!
//! which the planner recognizes as a contraction and runs as a group-by-join.
//!
//! Translation restrictions (the paper's "simple syntactic restrictions"):
//! each loop nest is perfect (one assignment innermost), loop bounds start
//! at 0, array subscripts in *reads* are loop variables, and the assignment
//! is either `=` (pure) or `+=`/`*=` (an accumulation, which becomes a
//! group-by with the matching monoid).

pub mod ast;
pub mod parser;
pub mod translate;

pub use ast::{AssignOp, Program, Stmt};
pub use parser::parse_program;
pub use translate::{translate, Translated};
