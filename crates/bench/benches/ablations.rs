//! Ablations for the design choices the paper argues qualitatively:
//!
//! * `rbk_vs_gbk` — `reduceByKey` vs `groupByKey` on the runtime (§4's
//!   reason for generating reduceByKey).
//! * `coo_vs_tiled` — coordinate-format (DIABLO, §4) vs block-array
//!   multiplication (§5's motivation).
//! * `tile_size` — sensitivity of the GBJ plan to the block side length.

use bench::{bench_session, dense_local, tiled_of};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::MatMulStrategy;
use sparkline::Context;
use tiled::{CooMatrix, TiledMatrix};

fn rbk_vs_gbk(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rbk_vs_gbk");
    group.sample_size(10);
    let ctx = Context::builder().workers(4).build();
    let data: Vec<(i64, i64)> = (0..200_000).map(|i| (i % 512, i)).collect();
    let d = ctx.parallelize(data, 8).cache();
    d.count();
    group.bench_function("reduce_by_key", |b| {
        b.iter(|| d.reduce_by_key(8, |x, y| x + y).count())
    });
    group.bench_function("group_by_key", |b| {
        b.iter(|| {
            d.group_by_key(8)
                .map_values(|v| v.iter().sum::<i64>())
                .count()
        })
    });
    group.finish();
}

fn coo_vs_tiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coo_vs_tiled");
    group.sample_size(10);
    let n = 128;
    let session = bench_session(MatMulStrategy::GroupByJoin);
    let a = dense_local(n, 1);
    let b = dense_local(n, 2);
    let (ta, tb) = (
        tiled_of(&session, &a).cache(),
        tiled_of(&session, &b).cache(),
    );
    ta.tiles().count();
    tb.tiles().count();
    group.bench_function("tiled_gbj", |bench| {
        bench.iter(|| {
            sac::linalg::multiply(&session, &ta, &tb)
                .expect("plan")
                .tiles()
                .count()
        })
    });
    let ctx = session.spark();
    let (ca, cb) = (
        CooMatrix::from_local(ctx, &a, 8),
        CooMatrix::from_local(ctx, &b, 8),
    );
    group.bench_function("coo_join_rbk", |bench| {
        bench.iter(|| ca.multiply(&cb, 8).entries().count())
    });
    group.finish();
}

fn tile_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tile_size");
    group.sample_size(10);
    let n = 256;
    let a = dense_local(n, 3);
    let b = dense_local(n, 4);
    for tile in [16usize, 32, 64, 128] {
        let session = bench_session(MatMulStrategy::GroupByJoin);
        let ta = TiledMatrix::from_local(session.spark(), &a, tile, 8).cache();
        let tb = TiledMatrix::from_local(session.spark(), &b, tile, 8).cache();
        ta.tiles().count();
        tb.tiles().count();
        group.bench_with_input(BenchmarkId::new("gbj_multiply", tile), &tile, |bench, _| {
            bench.iter(|| {
                sac::linalg::multiply(&session, &ta, &tb)
                    .expect("plan")
                    .tiles()
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, rbk_vs_gbk, coo_vs_tiled, tile_size);
criterion_main!(benches);
