//! Figure 4.A — matrix addition: total time vs matrix elements.
//!
//! Series: MLlib `BlockMatrix.add` vs the SAC tiling-preserving plan
//! (rule 17) generated from Query (8). Paper shape: SAC slightly faster.

use bench::{bench_session, block_of, dense_local, tiled_of};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::MatMulStrategy;

fn fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_addition");
    group.sample_size(10);
    for n in [256usize, 384, 512, 640] {
        let session = bench_session(MatMulStrategy::GroupByJoin);
        let a = dense_local(n, 100 + n as u64);
        let b = dense_local(n, 200 + n as u64);
        let elements = (n * n) as u64;

        let (ba, bb) = (
            block_of(&session, &a).cache(),
            block_of(&session, &b).cache(),
        );
        ba.blocks().count();
        bb.blocks().count();
        group.bench_with_input(BenchmarkId::new("mllib", elements), &n, |bench, _| {
            bench.iter(|| ba.add(&bb).blocks().count());
        });

        let (ta, tb) = (
            tiled_of(&session, &a).cache(),
            tiled_of(&session, &b).cache(),
        );
        ta.tiles().count();
        tb.tiles().count();
        group.bench_with_input(BenchmarkId::new("sac", elements), &n, |bench, _| {
            bench.iter(|| {
                sac::linalg::add(&session, &ta, &tb)
                    .expect("plan")
                    .tiles()
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig4a);
criterion_main!(benches);
