//! Figure 4.C — one gradient-descent iteration of matrix factorization.
//!
//! Series: MLlib (composed BlockMatrix library calls) vs SAC GBJ
//! (comprehension-compiled). Paper shape: SAC GBJ up to 3x faster.
//! Paper parameters: R sparse (10% non-zero, values 0..5), γ=0.002, λ=0.02,
//! rank k scaled with the matrices.

use bench::{
    bench_session, block_of, mllib_factorization_step, sac_factorization_step, sparse_local,
    tiled_of, TILE,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sac::MatMulStrategy;
use tiled::LocalMatrix;

fn fig4c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c_factorization");
    group.sample_size(10);
    let k = TILE; // one tile-column of factors, like the paper's k=1000=N
    for n in [128usize, 192, 256] {
        let elements = (n * n) as u64;
        let r = sparse_local(n, 500 + n as u64);
        let mut rng = StdRng::seed_from_u64(600 + n as u64);
        let p = LocalMatrix::random(n, k, 0.0, 1.0, &mut rng);
        let q = LocalMatrix::random(n, k, 0.0, 1.0, &mut rng);

        let session = bench_session(MatMulStrategy::GroupByJoin);
        let (br, bp, bq) = (
            block_of(&session, &r).cache(),
            block_of(&session, &p).cache(),
            block_of(&session, &q).cache(),
        );
        br.blocks().count();
        bp.blocks().count();
        bq.blocks().count();
        group.bench_with_input(BenchmarkId::new("mllib", elements), &n, |bench, _| {
            bench.iter(|| {
                let (p2, q2) = mllib_factorization_step(&br, &bp, &bq, 0.002, 0.02);
                p2.blocks().count() + q2.blocks().count()
            });
        });

        let (tr, tp, tq) = (
            tiled_of(&session, &r).cache(),
            tiled_of(&session, &p).cache(),
            tiled_of(&session, &q).cache(),
        );
        tr.tiles().count();
        tp.tiles().count();
        tq.tiles().count();
        group.bench_with_input(BenchmarkId::new("sac_gbj", elements), &n, |bench, _| {
            bench.iter(|| {
                let (p2, q2) = sac_factorization_step(&session, &tr, &tp, &tq, 0.002, 0.02);
                p2.tiles().count() + q2.tiles().count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig4c);
criterion_main!(benches);
