//! Figure 4.B — matrix multiplication: total time vs matrix elements.
//!
//! Series: MLlib `BlockMatrix.multiply` (replicate + cogroup + reduceByKey),
//! SAC join + group-by (the §4 naive translation), and SAC GBJ (§5.4
//! group-by-join / SUMMA). Paper shape: SAC join+group-by slowest (up to 3x
//! slower than MLlib), SAC GBJ fastest (MLlib up to 6x slower than it).

use bench::{bench_session, block_of, dense_local, tiled_of};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::MatMulStrategy;

fn fig4b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_multiplication");
    group.sample_size(10);
    for n in [128usize, 192, 256, 320] {
        let a = dense_local(n, 300 + n as u64);
        let b = dense_local(n, 400 + n as u64);
        let elements = (n * n) as u64;

        let session = bench_session(MatMulStrategy::GroupByJoin);
        let (ba, bb) = (
            block_of(&session, &a).cache(),
            block_of(&session, &b).cache(),
        );
        ba.blocks().count();
        bb.blocks().count();
        group.bench_with_input(BenchmarkId::new("mllib", elements), &n, |bench, _| {
            bench.iter(|| ba.multiply(&bb).blocks().count());
        });

        for (label, strategy) in [
            ("sac_join_groupby", MatMulStrategy::JoinGroupBy),
            ("sac_gbj", MatMulStrategy::GroupByJoin),
        ] {
            let session = bench_session(strategy);
            let (ta, tb) = (
                tiled_of(&session, &a).cache(),
                tiled_of(&session, &b).cache(),
            );
            ta.tiles().count();
            tb.tiles().count();
            group.bench_with_input(BenchmarkId::new(label, elements), &n, |bench, _| {
                bench.iter(|| {
                    sac::linalg::multiply(&session, &ta, &tb)
                        .expect("plan")
                        .tiles()
                        .count()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4b);
criterion_main!(benches);
