//! Streaming-pipeline smoke benchmark: measure the win from pull-based
//! operator fusion over the seed's Vec-materializing execution.
//!
//! Two runs of the same 3-deep map/filter/map chain over a 10^7-row source:
//!
//! - **fused**: `map.filter.map` — narrow ops compose into one lazy iterator
//!   per task; the source partition is pulled through a zero-copy `Shared`
//!   view and never materializes an intermediate Vec.
//! - **materialized**: the same chain through the `map_partitions` Vec shim,
//!   which collects every stage into a fresh `Vec` — the seed semantics.
//!
//! Plus one tiled matmul through the full session stack, as a guard that
//! kernels did not regress under streaming.
//!
//! ```text
//! cargo run --release -p bench --bin pipeline            # writes BENCH_pipeline.json
//! cargo run --release -p bench --bin pipeline -- out.json
//! ```
//!
//! Exit is nonzero (failing CI) unless fused peak allocation is >= 1.3x
//! lower than materialized and fused wall time is no worse (10% tolerance).

use sac::Session;
use sparkline::Context;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Global allocator wrapper tracking live bytes and the high-water mark.
struct PeakAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    fn on_alloc(&self, size: usize) {
        let live = self.current.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: usize) {
        self.current.fetch_sub(size, Ordering::Relaxed);
    }

    /// Drop the high-water mark back to the live level, so the next
    /// measurement window reports only its own growth.
    fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

const ROWS: i64 = 10_000_000;
const ITERS: usize = 3;

struct Row {
    name: String,
    wall_ms: f64,
    peak_bytes: usize,
}

/// Run `f` ITERS times; report the best wall time and the largest peak any
/// iteration hit above the pre-run live level.
fn measure(name: &str, expect: usize, f: impl Fn() -> usize) -> Row {
    let mut wall_ms = f64::INFINITY;
    let mut peak_bytes = 0usize;
    for _ in 0..ITERS {
        ALLOC.reset_peak();
        let start = Instant::now();
        let n = f();
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        peak_bytes = peak_bytes.max(ALLOC.peak());
        assert_eq!(n, expect, "{name}: wrong row count");
    }
    println!(
        "{name:>20}: {wall_ms:>9.2} ms  peak {:>9.2} MiB",
        peak_bytes as f64 / (1 << 20) as f64
    );
    Row {
        name: name.to_string(),
        wall_ms,
        peak_bytes,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let c = Context::builder().workers(workers).chaos_off().build();
    let d = c.parallelize((0..ROWS).collect(), workers);
    // x*3 is divisible by 5 exactly when x is, so the chain keeps 4/5 of rows.
    let expect = (ROWS - ROWS / 5) as usize;

    let fused = measure("fused_chain", expect, || {
        d.map(|x| x * 3)
            .filter(|x| x % 5 != 0)
            .map(|x| x + 1)
            .count()
    });
    // The deprecated Vec shim is exactly the materialized baseline this
    // bench exists to compare against, so its use here is deliberate.
    #[allow(deprecated)]
    let materialized = measure("materialized_chain", expect, || {
        d.map_partitions(|_, v: Vec<i64>| v.into_iter().map(|x| x * 3).collect())
            .map_partitions(|_, v| v.into_iter().filter(|x| x % 5 != 0).collect())
            .map_partitions(|_, v| v.into_iter().map(|x| x + 1).collect())
            .count()
    });

    // One tiled matmul through the whole stack: streaming must not cost the
    // kernels anything. (No fused/materialized pair here — just a record.)
    let n = 256usize;
    let mut s = Session::builder().workers(workers).build();
    s.register_local_matrix("A", &bench::dense_local(n, 300), bench::TILE);
    s.register_local_matrix("B", &bench::dense_local(n, 400), bench::TILE);
    s.set_int("n", n as i64);
    let src = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
     let v = a*b, group by (i,j) ]";
    ALLOC.reset_peak();
    let start = Instant::now();
    s.run(src).expect("matmul must run").force();
    let matmul = Row {
        name: format!("tiled_matmul_{n}"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_bytes: ALLOC.peak(),
    };
    println!(
        "{:>20}: {:>9.2} ms  peak {:>9.2} MiB",
        matmul.name,
        matmul.wall_ms,
        matmul.peak_bytes as f64 / (1 << 20) as f64
    );

    let peak_ratio = materialized.peak_bytes as f64 / fused.peak_bytes.max(1) as f64;
    let wall_ratio = fused.wall_ms / materialized.wall_ms.max(1e-9);
    println!("fused vs materialized: {peak_ratio:.2}x less peak, {wall_ratio:.2}x wall");

    let rows = [fused, materialized, matmul];
    let mut json = String::from("{\"bench\":\"pipeline\",\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"wall_ms\":{:.3},\"peak_bytes\":{}}}",
            r.name, r.wall_ms, r.peak_bytes
        ));
    }
    json.push_str(&format!(
        "],\"fused_vs_materialized\":{{\"peak_ratio\":{peak_ratio:.3},\"wall_ratio\":{wall_ratio:.3}}}}}\n"
    ));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    // CI gate: fusion must actually pay — >= 1.3x lower peak allocation and
    // wall clock no worse than materialized (10% noise tolerance).
    if peak_ratio < 1.3 {
        eprintln!("FAIL: fused peak only {peak_ratio:.2}x lower than materialized (need >= 1.3x)");
        std::process::exit(1);
    }
    if wall_ratio > 1.10 {
        eprintln!("FAIL: fused chain slower than materialized ({wall_ratio:.2}x wall)");
        std::process::exit(1);
    }
}
