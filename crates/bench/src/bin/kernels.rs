//! Local GEMM kernel bench: the packed, register-blocked, SIMD-dispatched
//! microkernel against the retained naive triple-loop reference.
//!
//! For each size n in {96, 192, 384} the harness times `n x n x n`
//! accumulate-GEMM through:
//!
//! - **naive** — `DenseMatrix::gemm_acc_naive`, the seed's i-k-j row loop,
//!   retained as the proptest oracle;
//! - **micro** — the packed microkernel (`gemm_acc`), single-threaded;
//! - **micro_par** — the same kernel parallelized over row bands on every
//!   available core.
//!
//! Every variant's output is fingerprinted (wrapping sum of the f64 bit
//! patterns) and must match the naive reference exactly — the determinism
//! contract, enforced here on top of the proptests.
//!
//! ```text
//! cargo run --release -p bench --bin kernels            # writes BENCH_kernels.json
//! cargo run --release -p bench --bin kernels -- out.json
//! ```
//!
//! Exit is nonzero (failing CI) unless the microkernel is >= 4x faster than
//! the naive reference at 384x384 (best of single-threaded and parallel —
//! on a single-core runner they coincide) and every fingerprint matches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tiled::kernel::Backend;
use tiled::{DenseMatrix, LocalMatrix};

const SIZES: [usize; 3] = [96, 192, 384];
const GATE_SIZE: usize = 384;
const GATE_SPEEDUP: f64 = 4.0;

struct Row {
    n: usize,
    naive_ms: f64,
    micro_ms: f64,
    micro_par_ms: f64,
    naive_gflops: f64,
    micro_gflops: f64,
    speedup: f64,
    fingerprint_match: bool,
}

fn fingerprint(m: &DenseMatrix) -> u64 {
    m.data().iter().fold(0u64, |acc, v| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(v.to_bits())
    })
}

/// Best-of-k wall time of `f`, scaled so small sizes get more repetitions.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let backend = Backend::active();
    println!("backend: {backend:?}, {threads} thread(s)");

    let mut rows = Vec::new();
    let mut all_match = true;
    for &n in &SIZES {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let a = LocalMatrix::random(n, n, -1.0, 1.0, &mut rng).to_dense();
        let b = LocalMatrix::random(n, n, -1.0, 1.0, &mut rng).to_dense();
        let reps = (GATE_SIZE / n).max(1) * 3;

        let mut c_naive = DenseMatrix::zeros(n, n);
        let naive_ms = time_ms(reps, || {
            c_naive = DenseMatrix::zeros(n, n);
            c_naive.gemm_acc_naive(&a, &b);
        });
        let mut c_micro = DenseMatrix::zeros(n, n);
        let micro_ms = time_ms(reps, || {
            c_micro = DenseMatrix::zeros(n, n);
            c_micro.gemm_acc(&a, &b);
        });
        let mut c_par = DenseMatrix::zeros(n, n);
        let micro_par_ms = time_ms(reps, || {
            c_par = DenseMatrix::zeros(n, n);
            c_par.gemm_acc_with(&a, &b, threads, backend);
        });

        let flops = 2.0 * (n as f64).powi(3);
        let best_ms = micro_ms.min(micro_par_ms);
        let fp = fingerprint(&c_naive);
        let matches = fingerprint(&c_micro) == fp && fingerprint(&c_par) == fp;
        all_match &= matches;
        let row = Row {
            n,
            naive_ms,
            micro_ms,
            micro_par_ms,
            naive_gflops: flops / naive_ms / 1e6,
            micro_gflops: flops / best_ms / 1e6,
            speedup: naive_ms / best_ms,
            fingerprint_match: matches,
        };
        println!(
            "n={:>3}: naive {:>8.2} ms ({:>5.2} GF/s)  micro {:>7.2} ms  micro_par {:>7.2} ms ({:>5.2} GF/s)  {:>5.2}x  fp {}",
            row.n,
            row.naive_ms,
            row.naive_gflops,
            row.micro_ms,
            row.micro_par_ms,
            row.micro_gflops,
            row.speedup,
            if matches { "ok" } else { "MISMATCH" },
        );
        rows.push(row);
    }

    let mut json = format!(
        "{{\"bench\":\"kernels\",\"backend\":\"{}\",\"threads\":{threads},\"results\":[",
        match backend {
            Backend::Avx512 => "avx512",
            Backend::Avx2 => "avx2",
            Backend::Scalar => "scalar",
        }
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"n\":{},\"naive_ms\":{:.3},\"micro_ms\":{:.3},\"micro_par_ms\":{:.3},\
             \"naive_gflops\":{:.3},\"micro_gflops\":{:.3},\"speedup\":{:.3},\
             \"fingerprint_match\":{}}}",
            r.n,
            r.naive_ms,
            r.micro_ms,
            r.micro_par_ms,
            r.naive_gflops,
            r.micro_gflops,
            r.speedup,
            r.fingerprint_match
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    // CI gates: exact-result fingerprints everywhere, >= 4x at the gate size.
    if !all_match {
        eprintln!("FAIL: microkernel output diverged from the naive oracle");
        std::process::exit(1);
    }
    let gate = rows
        .iter()
        .find(|r| r.n == GATE_SIZE)
        .expect("gate size row");
    if gate.speedup < GATE_SPEEDUP {
        eprintln!(
            "FAIL: microkernel only {:.2}x naive at {GATE_SIZE} (need >= {GATE_SPEEDUP}x)",
            gate.speedup
        );
        std::process::exit(1);
    }
}
