//! Regenerate the paper's Figure 4 (panels A, B, C) as printed tables.
//!
//! ```text
//! cargo run --release -p bench --bin figures            # all panels
//! cargo run --release -p bench --bin figures -- a       # one panel
//! cargo run --release -p bench --bin figures -- b quick # smaller sizes
//! cargo run --release -p bench --bin figures -- b --trace # + JSON event log
//! ```
//!
//! With `--trace`, the SAC runs of each panel are executed with structured
//! tracing on and the collected event log is written as JSON to
//! `target/figures_trace_<panel>.json` (schema in EXPERIMENTS.md).
//!
//! For every panel the harness prints the same series the paper plots —
//! total time per operation for each system — plus the shuffle-byte
//! accounting that explains the orderings. Absolute numbers differ from the
//! paper (laptop vs 4-node cluster, scaled matrices); the *shape* (who wins,
//! by what factor) is the reproduction target recorded in EXPERIMENTS.md.

use bench::{
    bench_session, block_of, dense_local, mllib_factorization_step, sac_factorization_step,
    sparse_local, tiled_of, TILE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sac::{MatMulStrategy, Session};
use sparkline::Event;
use std::time::Instant;
use tiled::LocalMatrix;

const REPEATS: usize = 3;

/// Dump a panel's collected event log as a JSON event-log file.
fn write_trace(panel: &str, events: &[Event]) {
    std::fs::create_dir_all("target").ok();
    let path = format!("target/figures_trace_{panel}.json");
    std::fs::write(&path, sparkline::events::to_json(events)).expect("write trace file");
    println!("trace: {} events -> {path}", events.len());
}

/// Drain the events of the SAC runs just measured, if tracing.
fn drain_trace(session: &Session, trace: bool, sink: &mut Vec<Event>) {
    if trace {
        sink.extend(session.spark().take_events());
        session.spark().stop_trace();
    }
}

fn start_trace(session: &Session, trace: bool) {
    if trace {
        session.spark().trace();
    }
}

/// Run `f` REPEATS times, returning (mean seconds, shuffled MiB per run).
fn measure(session: &Session, mut f: impl FnMut()) -> (f64, f64) {
    // Warm-up run.
    f();
    let before = session.spark().metrics().snapshot();
    let start = Instant::now();
    for _ in 0..REPEATS {
        f();
    }
    let secs = start.elapsed().as_secs_f64() / REPEATS as f64;
    let delta = session.spark().metrics().snapshot().since(&before);
    let mib = delta.shuffle_bytes as f64 / (1u64 << 20) as f64 / REPEATS as f64;
    (secs, mib)
}

fn panel_a(sizes: &[usize], trace: bool) {
    let mut events: Vec<Event> = Vec::new();
    println!("\n=== Figure 4.A — Matrix Addition: total time vs elements ===");
    println!(
        "{:>8} {:>12} | {:>12} {:>12} | {:>10} {:>12}",
        "n", "elements", "MLlib (s)", "SAC (s)", "SAC/MLlib", "plan"
    );
    for &n in sizes {
        let session = bench_session(MatMulStrategy::GroupByJoin);
        let a = dense_local(n, 100 + n as u64);
        let b = dense_local(n, 200 + n as u64);

        let (ba, bb) = (
            block_of(&session, &a).cache(),
            block_of(&session, &b).cache(),
        );
        ba.blocks().count();
        bb.blocks().count();
        let (mllib_s, _) = measure(&session, || {
            ba.add(&bb).blocks().count();
        });

        let (ta, tb) = (
            tiled_of(&session, &a).cache(),
            tiled_of(&session, &b).cache(),
        );
        ta.tiles().count();
        tb.tiles().count();
        start_trace(&session, trace);
        let (sac_s, _) = measure(&session, || {
            sac::linalg::add(&session, &ta, &tb)
                .expect("plan")
                .tiles()
                .count();
        });
        drain_trace(&session, trace, &mut events);
        println!(
            "{:>8} {:>12} | {:>12.4} {:>12.4} | {:>10.2} {:>12}",
            n,
            n * n,
            mllib_s,
            sac_s,
            sac_s / mllib_s,
            "eltwise"
        );
    }
    println!("paper shape: SAC a bit faster than MLlib (ratio < 1).");
    if trace {
        write_trace("a", &events);
    }
}

fn panel_b(sizes: &[usize], trace: bool) {
    let mut events: Vec<Event> = Vec::new();
    println!("\n=== Figure 4.B — Matrix Multiplication: total time vs elements ===");
    println!(
        "{:>6} {:>10} | {:>11} {:>14} {:>11} | {:>9} {:>9}",
        "n", "elements", "MLlib (s)", "SAC j+gb (s)", "SAC GBJ(s)", "jgb MiB", "gbj MiB"
    );
    for &n in sizes {
        let a = dense_local(n, 300 + n as u64);
        let b = dense_local(n, 400 + n as u64);

        let session = bench_session(MatMulStrategy::GroupByJoin);
        let (ba, bb) = (
            block_of(&session, &a).cache(),
            block_of(&session, &b).cache(),
        );
        ba.blocks().count();
        bb.blocks().count();
        let (mllib_s, _) = measure(&session, || {
            ba.multiply(&bb).blocks().count();
        });

        let mut run_sac = |strategy: MatMulStrategy| -> (f64, f64) {
            let session = bench_session(strategy);
            let (ta, tb) = (
                tiled_of(&session, &a).cache(),
                tiled_of(&session, &b).cache(),
            );
            ta.tiles().count();
            tb.tiles().count();
            start_trace(&session, trace);
            let out = measure(&session, || {
                sac::linalg::multiply(&session, &ta, &tb)
                    .expect("plan")
                    .tiles()
                    .count();
            });
            drain_trace(&session, trace, &mut events);
            out
        };
        let (jgb_s, jgb_mib) = run_sac(MatMulStrategy::JoinGroupBy);
        let (gbj_s, gbj_mib) = run_sac(MatMulStrategy::GroupByJoin);
        println!(
            "{:>6} {:>10} | {:>11.4} {:>14.4} {:>11.4} | {:>9.1} {:>9.1}",
            n,
            n * n,
            mllib_s,
            jgb_s,
            gbj_s,
            jgb_mib,
            gbj_mib
        );
    }
    println!("paper shape: SAC join+group-by slowest, SAC GBJ fastest, MLlib between.");
    if trace {
        write_trace("b", &events);
    }
}

fn panel_c(sizes: &[usize], trace: bool) {
    let mut events: Vec<Event> = Vec::new();
    println!("\n=== Figure 4.C — Matrix Factorization (1 GD iteration) ===");
    println!(
        "{:>6} {:>10} | {:>12} {:>14} | {:>10}",
        "n", "elements", "MLlib (s)", "SAC GBJ (s)", "MLlib/SAC"
    );
    let k = TILE;
    for &n in sizes {
        let r = sparse_local(n, 500 + n as u64);
        let mut rng = StdRng::seed_from_u64(600 + n as u64);
        let p = LocalMatrix::random(n, k, 0.0, 1.0, &mut rng);
        let q = LocalMatrix::random(n, k, 0.0, 1.0, &mut rng);

        let session = bench_session(MatMulStrategy::GroupByJoin);
        let (br, bp, bq) = (
            block_of(&session, &r).cache(),
            block_of(&session, &p).cache(),
            block_of(&session, &q).cache(),
        );
        br.blocks().count();
        bp.blocks().count();
        bq.blocks().count();
        let (mllib_s, _) = measure(&session, || {
            let (p2, q2) = mllib_factorization_step(&br, &bp, &bq, 0.002, 0.02);
            p2.blocks().count();
            q2.blocks().count();
        });

        let (tr, tp, tq) = (
            tiled_of(&session, &r).cache(),
            tiled_of(&session, &p).cache(),
            tiled_of(&session, &q).cache(),
        );
        tr.tiles().count();
        tp.tiles().count();
        tq.tiles().count();
        start_trace(&session, trace);
        let (sac_s, _) = measure(&session, || {
            let (p2, q2) = sac_factorization_step(&session, &tr, &tp, &tq, 0.002, 0.02);
            p2.tiles().count();
            q2.tiles().count();
        });
        drain_trace(&session, trace, &mut events);
        println!(
            "{:>6} {:>10} | {:>12.4} {:>14.4} | {:>10.2}",
            n,
            n * n,
            mllib_s,
            sac_s,
            mllib_s / sac_s
        );
    }
    println!("paper shape: SAC GBJ up to ~3x faster than MLlib (ratio > 1).");
    if trace {
        write_trace("c", &events);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let trace = args.iter().any(|a| a == "--trace");
    let panel = args
        .iter()
        .find(|a| ["a", "b", "c"].contains(&a.as_str()))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let (a_sizes, b_sizes, c_sizes): (Vec<usize>, Vec<usize>, Vec<usize>) = if quick {
        (vec![128, 256], vec![128, 192], vec![128])
    } else {
        (
            vec![256, 512, 768, 1024, 1280],
            vec![128, 256, 384, 512, 640],
            vec![128, 256, 384, 512],
        )
    };

    match panel.as_str() {
        "a" => panel_a(&a_sizes, trace),
        "b" => panel_b(&b_sizes, trace),
        "c" => panel_c(&c_sizes, trace),
        _ => {
            panel_a(&a_sizes, trace);
            panel_b(&b_sizes, trace);
            panel_c(&c_sizes, trace);
        }
    }
}
