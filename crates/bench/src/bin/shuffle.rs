//! Shuffle data-plane smoke benchmark: the 384×384 matmul panel in
//! multi-process mode, recording the cost model's *estimated* shuffle bytes
//! against the *true serialized wire bytes* the worker data plane carried,
//! plus fetch latency percentiles with and without wire-fault-induced
//! retries.
//!
//! ```text
//! cargo run --release -p bench --bin shuffle            # writes BENCH_shuffle.json
//! cargo run --release -p bench --bin shuffle -- out.json
//! ```
//!
//! The emitted JSON is a flat result list consumed by the CI distributed job:
//!
//! ```json
//! {"bench":"shuffle","results":[
//!   {"name":"matmul_384","est_shuffle_bytes":..,"wire_bytes":..,
//!    "est_actual_ratio":1.3,"wall_ms":..,"fetches":..,"fetch_retries":0,
//!    "fetch_p50_us":..,"fetch_p99_us":..}, ...]}
//! ```
//!
//! The est-vs-actual ratio is a hard contract, not just a reading: the run
//! aborts if the cost model's estimate drifts beyond 2× from the measured
//! wire bytes of the chosen plan.

use bench::{dense_local, TILE};
use sac::{MatMulStrategy, Session};
use sparkline::{ChaosPlan, WireFault};
use std::time::Instant;

const MUL_SRC: &str = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
     let v = a*b, group by (i,j) ]";

struct Row {
    name: String,
    est_bytes: u64,
    wire_bytes: u64,
    ratio: f64,
    wall_ms: f64,
    fetches: usize,
    fetch_retries: u64,
    fetch_p50_us: u64,
    fetch_p99_us: u64,
}

/// Nearest-rank percentile over a sorted series; 0 for an empty one.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_panel(name: &str, n: usize, chaos: Option<ChaosPlan>) -> Row {
    let mut b = Session::builder()
        .workers(std::thread::available_parallelism().map_or(4, |c| c.get()))
        .partitions(8)
        // Pin the shuffling contraction so the panel actually moves bytes
        // over the wire (auto would broadcast an operand this small).
        .matmul(MatMulStrategy::ReduceByKey)
        .worker_processes(2)
        .max_task_attempts(8)
        .max_stage_attempts(12);
    b = match chaos {
        Some(p) => b.chaos(p),
        None => b.chaos_off(),
    };
    let mut s = b.build();
    s.register_local_matrix("A", &dense_local(n, 300 + n as u64), TILE);
    s.register_local_matrix("B", &dense_local(n, 400 + n as u64), TILE);
    s.set_int("n", n as i64);

    let start = Instant::now();
    let analysis = s.explain_analyze(MUL_SRC).expect("panel must run");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let choice = analysis
        .profile
        .plan_choices
        .first()
        .expect("traced run records plan.chosen");
    let est_bytes = choice.est_shuffle_bytes;
    let wire_bytes = analysis.profile.actual_shuffle_bytes_of_tag(&choice.chosen);
    let ratio = est_bytes.max(wire_bytes) as f64 / est_bytes.min(wire_bytes).max(1) as f64;
    let (mut lat, fetch_retries) = s
        .spark()
        .worker_fetch_stats()
        .expect("panel runs multi-process");
    lat.sort_unstable();
    let row = Row {
        name: name.to_string(),
        est_bytes,
        wire_bytes,
        ratio,
        wall_ms,
        fetches: lat.len(),
        fetch_retries,
        fetch_p50_us: pct(&lat, 0.50),
        fetch_p99_us: pct(&lat, 0.99),
    };
    println!(
        "{:>16}: est {:>10} B, wire {:>10} B (x{:.2}) {:>9.1} ms, \
         {} fetches ({} retries), p50 {} us, p99 {} us",
        row.name,
        row.est_bytes,
        row.wire_bytes,
        row.ratio,
        row.wall_ms,
        row.fetches,
        row.fetch_retries,
        row.fetch_p50_us,
        row.fetch_p99_us
    );
    row
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_shuffle.json".to_string());
    let n = 384usize;

    // Clean panel: estimate-vs-wire contract and baseline fetch latency.
    let clean = run_panel(&format!("matmul_{n}"), n, None);
    assert!(
        clean.ratio <= 2.0,
        "cost-model estimate ({} B) drifted {}x from measured wire bytes ({} B)",
        clean.est_bytes,
        clean.ratio,
        clean.wire_bytes
    );
    assert_eq!(clean.fetch_retries, 0, "clean run must not retry fetches");

    // Faulty panel: garbled and dropped fetch streams force retries; the
    // latency percentiles show what the backoff policy costs.
    let plan = ChaosPlan::new()
        .with_wire_fault(11, 6, WireFault::Garble)
        .with_wire_fault(17, 6, WireFault::Drop)
        .with_wire_fault(13, 8, WireFault::Delay(200));
    let faulty = run_panel(&format!("matmul_{n}_wire_faults"), n, Some(plan));
    assert!(
        faulty.fetch_retries > 0,
        "wire faults must force at least one fetch retry"
    );

    let mut json = String::from("{\"bench\":\"shuffle\",\"results\":[");
    for (i, r) in [&clean, &faulty].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"est_shuffle_bytes\":{},\"wire_bytes\":{},\
             \"est_actual_ratio\":{:.3},\"wall_ms\":{:.3},\"fetches\":{},\
             \"fetch_retries\":{},\"fetch_p50_us\":{},\"fetch_p99_us\":{}}}",
            r.name,
            r.est_bytes,
            r.wire_bytes,
            r.ratio,
            r.wall_ms,
            r.fetches,
            r.fetch_retries,
            r.fetch_p50_us,
            r.fetch_p99_us
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
