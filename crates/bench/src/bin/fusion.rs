//! Elementwise-fusion smoke benchmark: measure the win from executing a
//! whole elementwise region as one fused tile kernel (`Plan::FusedEltwise`)
//! over the unfused per-op interpreter (`ScalarFn::eval_batch`, one scratch
//! `Vec` per expression node per tile).
//!
//! One deep right-nested elementwise panel over 384x384 inputs with 128-wide
//! tiles, run twice through the full session stack:
//!
//! - **fused**: the default plan — the planner traces the region into a
//!   postfix program and each tile runs one pass through a fixed register
//!   file of chunk buffers.
//! - **unfused**: `fuse_eltwise = false` — the per-op oracle, whose
//!   recursive interpreter keeps one live tile-sized scratch vector per
//!   expression-tree level.
//!
//! ```text
//! cargo run --release -p bench --bin fusion            # writes BENCH_fusion.json
//! cargo run --release -p bench --bin fusion -- out.json
//! ```
//!
//! Exit is nonzero (failing CI) unless the fused and unfused results are
//! bit-identical, fused peak allocation is >= 1.6x lower, and fused wall
//! time is no worse (10% tolerance).

use sac::Session;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Global allocator wrapper tracking live bytes and the high-water mark.
struct PeakAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    fn on_alloc(&self, size: usize) {
        let live = self.current.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: usize) {
        self.current.fetch_sub(size, Ordering::Relaxed);
    }

    /// Drop the high-water mark back to the live level, so the next
    /// measurement window reports only its own growth.
    fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

const N: usize = 384;
const TILE: usize = 192;
const ITERS: usize = 3;
const DEPTH: usize = 24;

struct Row {
    name: String,
    wall_ms: f64,
    peak_bytes: usize,
}

/// A deep right-nested elementwise chain: every level adds one live
/// tile-sized scratch vector to the unfused interpreter's recursion, while
/// the fused program still runs in `max_stack` chunk-sized registers.
fn panel_src() -> String {
    let mut expr = "a".to_string();
    for i in 0..DEPTH {
        let c = 0.25 + (i % 4) as f64 * 0.25;
        expr = if i % 2 == 0 {
            format!("((b * {c:?}) + {expr})")
        } else {
            format!("((a - {expr}) * {c:?})")
        };
    }
    format!("tiled(n,n)[ ((i,j), {expr}) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]")
}

fn session(workers: usize, fuse: bool) -> Session {
    let mut s = Session::builder().workers(workers).chaos_off().build();
    s.register_local_matrix("A", &bench::dense_local(N, 300), TILE);
    s.register_local_matrix("B", &bench::dense_local(N, 400), TILE);
    s.set_int("n", N as i64);
    s.config_mut().fuse_eltwise = fuse;
    s
}

fn fingerprint(s: &Session, src: &str) -> Vec<u64> {
    s.matrix(src)
        .expect("panel must run")
        .to_local()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Run the panel ITERS times; report the best wall time and the largest
/// peak any iteration hit above the pre-run live level.
fn measure(name: &str, s: &Session, src: &str) -> Row {
    let mut wall_ms = f64::INFINITY;
    let mut peak_bytes = 0usize;
    for _ in 0..ITERS {
        ALLOC.reset_peak();
        let start = Instant::now();
        s.run(src).expect("panel must run").force();
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        peak_bytes = peak_bytes.max(ALLOC.peak());
    }
    println!(
        "{name:>16}: {wall_ms:>9.2} ms  peak {:>9.2} MiB",
        peak_bytes as f64 / (1 << 20) as f64
    );
    Row {
        name: name.to_string(),
        wall_ms,
        peak_bytes,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fusion.json".to_string());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let src = panel_src();

    // One session alive at a time, so each phase's peak sits on its own live
    // baseline rather than on both sessions' registered inputs at once.
    // Fingerprinting first also warms each session before its timed runs.
    let (fused, fused_bits) = {
        let s = session(workers, true);
        let bits = fingerprint(&s, &src);
        (measure("fused_eltwise", &s, &src), bits)
    };
    let (unfused, unfused_bits) = {
        let s = session(workers, false);
        let bits = fingerprint(&s, &src);
        (measure("unfused_eltwise", &s, &src), bits)
    };
    // The fused region must reproduce the unfused per-op oracle bit-for-bit
    // for the timings to be comparing the same computation.
    let fingerprint_match = fused_bits == unfused_bits;

    let peak_ratio = unfused.peak_bytes as f64 / fused.peak_bytes.max(1) as f64;
    let wall_ratio = fused.wall_ms / unfused.wall_ms.max(1e-9);
    println!(
        "fused vs unfused: {peak_ratio:.2}x less peak, {wall_ratio:.2}x wall, \
         fingerprint_match {fingerprint_match}"
    );

    let rows = [fused, unfused];
    let mut json = String::from("{\"bench\":\"fusion\",\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"wall_ms\":{:.3},\"peak_bytes\":{}}}",
            r.name, r.wall_ms, r.peak_bytes
        ));
    }
    json.push_str(&format!(
        "],\"fused_vs_unfused\":{{\"peak_ratio\":{peak_ratio:.3},\"wall_ratio\":{wall_ratio:.3}}},\
         \"fingerprint_match\":{fingerprint_match}}}\n"
    ));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    // CI gates: bit-exactness is non-negotiable; fusion must actually pay —
    // >= 1.6x lower peak allocation on the panel and wall clock no worse
    // than the unfused oracle (10% noise tolerance).
    if !fingerprint_match {
        eprintln!("FAIL: fused result is not bit-identical to the unfused oracle");
        std::process::exit(1);
    }
    if peak_ratio < 1.6 {
        eprintln!("FAIL: fused peak only {peak_ratio:.2}x lower than unfused (need >= 1.6x)");
        std::process::exit(1);
    }
    if wall_ratio > 1.10 {
        eprintln!("FAIL: fused panel slower than unfused ({wall_ratio:.2}x wall)");
        std::process::exit(1);
    }
}
