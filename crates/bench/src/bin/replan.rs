//! Adaptive re-planning benchmark + CI gate: a skewed 384x384 join panel
//! whose registration statistics are wrong by 8x.
//!
//! The registered `ArrayStats` claim both operands are 8x their honest
//! resident bytes (and hide the density), pushing them past the broadcast
//! budget: the frozen planner settles on the shuffling reduceByKey
//! contraction. The adaptive stage driver probes the materialized inputs,
//! observes the truth (a density-skewed panel — one dense block-row stripe,
//! zeros elsewhere), and promotes the node to the broadcast contraction at
//! runtime.
//!
//! ```text
//! cargo run --release -p bench --bin replan            # writes BENCH_replan.json
//! cargo run --release -p bench --bin replan -- out.json
//! ```
//!
//! Gates (exit code 1 on violation, after writing the JSON):
//! * the adaptive run re-plans to a strategy different from — and cheaper
//!   in measured shuffle bytes than — the forced-frozen choice;
//! * adaptive wall-clock is at least [`MIN_SPEEDUP`]x better than frozen.
//!
//! Emitted JSON:
//!
//! ```json
//! {"bench":"replan","results":[
//!   {"name":"join_384_frozen","strategy":"contraction/reduceByKey",
//!    "replanned_to":"","wall_ms":9.1,"shuffle_bytes":9830400}, ...],
//!  "gates":{"cheaper_strategy":true,"speedup":2.4,"min_speedup":1.3}}
//! ```

use bench::TILE;
use sac::Session;
use std::time::Instant;

const MIN_SPEEDUP: f64 = 1.3;
const N: usize = 384;
const REPS: usize = 3;

const MUL_SRC: &str = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
     let v = a*b, group by (i,j) ]";

struct Row {
    name: String,
    strategy: String,
    replanned_to: String,
    wall_ms: f64,
    shuffle_bytes: u64,
}

/// Session over the skewed panel with 8x-lying registration statistics.
fn panel_session(adaptive: bool) -> Session {
    let mut s = Session::builder()
        .workers(std::thread::available_parallelism().map_or(4, |n| n.get()))
        // Few, wide partitions: map-side merging then collapses the
        // broadcast path's combine round to a handful of partial tiles,
        // while the frozen reduceByKey path still ships every join input
        // plus out_tiles x k partial products.
        .partitions(4)
        // Between the honest bytes (~296 KB CSC-discounted) and the 8x lie
        // (~9.4 MB): the frozen plan can never broadcast, the probed one can.
        .broadcast_budget(2_000_000)
        .adaptive(adaptive)
        .build();
    // Density skew: one dense 64-row stripe, zeros everywhere else. The
    // honest tiles are ~1/6 dense; registration keeps full-dense bytes.
    let skewed = |seed: u64| {
        tiled::LocalMatrix::from_fn(N, N, move |i, j| {
            if i < TILE {
                ((i * 31 + j * 7 + seed as usize) % 13) as f64 - 6.0
            } else {
                0.0
            }
        })
    };
    s.register_local_matrix("A", &skewed(3), TILE);
    s.register_local_matrix("B", &skewed(11), TILE);
    s.set_int("n", N as i64);
    for name in ["A", "B"] {
        let mut lied = *s.env().stats(name).expect("registered");
        lied.nnz = None;
        lied.estimated_bytes *= 8;
        s.env_mut().set_stats(name, lied);
    }
    s
}

/// One traced run for the plan decisions, then `REPS` timed runs (best
/// wall) for the measured cost.
fn run(name: &str, adaptive: bool) -> Row {
    let s = panel_session(adaptive);
    let analysis = s.explain_analyze(MUL_SRC).expect("panel query must run");
    let choice = &analysis.profile.plan_choices[0];
    let strategy = choice.chosen.to_string();
    let replanned_to = choice
        .replans
        .last()
        .map(|r| r.to.clone())
        .unwrap_or_default();

    let mut wall_ms = f64::INFINITY;
    let before = s.spark().metrics().snapshot();
    for _ in 0..REPS {
        let start = Instant::now();
        s.run(MUL_SRC).expect("panel query must run").force();
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let shuffle_bytes = s.spark().metrics().snapshot().since(&before).shuffle_bytes / REPS as u64;
    println!(
        "{name:>16}: {strategy:<26} -> {:<24} {wall_ms:>9.2} ms {shuffle_bytes:>12} shuffled bytes",
        if replanned_to.is_empty() {
            "(frozen)"
        } else {
            &replanned_to
        }
    );
    Row {
        name: name.to_string(),
        strategy,
        replanned_to,
        wall_ms,
        shuffle_bytes,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replan.json".to_string());

    let frozen = run("join_384_frozen", false);
    let adaptive = run("join_384_adaptive", true);

    let cheaper_strategy = !adaptive.replanned_to.is_empty()
        && adaptive.replanned_to != frozen.strategy
        && adaptive.shuffle_bytes < frozen.shuffle_bytes;
    let speedup = frozen.wall_ms / adaptive.wall_ms;

    let mut json = String::from("{\"bench\":\"replan\",\"results\":[");
    for (i, r) in [&frozen, &adaptive].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"strategy\":\"{}\",\"replanned_to\":\"{}\",\
             \"wall_ms\":{:.3},\"shuffle_bytes\":{}}}",
            r.name, r.strategy, r.replanned_to, r.wall_ms, r.shuffle_bytes
        ));
    }
    json.push_str(&format!(
        "],\"gates\":{{\"cheaper_strategy\":{cheaper_strategy},\
         \"speedup\":{speedup:.3},\"min_speedup\":{MIN_SPEEDUP}}}}}\n"
    ));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    if !cheaper_strategy {
        eprintln!(
            "GATE FAILED: adaptive must re-plan to a cheaper strategy \
             (frozen {} @ {} bytes, adaptive {} -> {} @ {} bytes)",
            frozen.strategy,
            frozen.shuffle_bytes,
            adaptive.strategy,
            adaptive.replanned_to,
            adaptive.shuffle_bytes
        );
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("GATE FAILED: speedup {speedup:.3} < {MIN_SPEEDUP} over forced-frozen");
        std::process::exit(1);
    }
    println!("gates passed: cheaper strategy, {speedup:.2}x over forced-frozen");
}
