//! Smoke benchmark of the adaptive planner: run a small size sweep with no
//! pinned strategy and record which strategy the cost model picked, how long
//! the query took, and how many bytes it shuffled.
//!
//! ```text
//! cargo run --release -p bench --bin adaptive            # writes BENCH_adaptive.json
//! cargo run --release -p bench --bin adaptive -- out.json
//! ```
//!
//! The emitted JSON is a flat result list consumed by the CI bench-smoke job:
//!
//! ```json
//! {"bench":"adaptive","results":[
//!   {"name":"matmul_96","strategy":"contraction/broadcast",
//!    "wall_ms":1.9,"shuffle_bytes":0}, ...]}
//! ```

use bench::{dense_local, TILE};
use sac::Session;
use std::time::Instant;

struct Row {
    name: String,
    strategy: String,
    wall_ms: f64,
    shuffle_bytes: u64,
}

fn adaptive_session() -> Session {
    // Everything on automatic: strategy, partition count, broadcast budget.
    Session::builder()
        .workers(std::thread::available_parallelism().map_or(4, |n| n.get()))
        .build()
}

/// Run one traced query and record the planner's choice plus the measured
/// wall time and shuffle volume of that execution.
fn run(name: &str, s: &Session, src: &str) -> Row {
    let strategy = s
        .compile(src)
        .expect("query must plan")
        .plan
        .strategy_name()
        .to_string();
    let before = s.spark().metrics().snapshot();
    let start = Instant::now();
    s.run(src).expect("query must run").force();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let shuffle_bytes = s.spark().metrics().snapshot().since(&before).shuffle_bytes;
    println!("{name:>12}: {strategy:<24} {wall_ms:>9.2} ms {shuffle_bytes:>12} shuffled bytes");
    Row {
        name: name.to_string(),
        strategy,
        wall_ms,
        shuffle_bytes,
    }
}

const MUL_SRC: &str = "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
     let v = a*b, group by (i,j) ]";
const MAT_VEC_SRC: &str = "tiled_vector(n)[ (i, +/v) | ((i,k),a) <- A, (kk,x) <- V, kk == k, \
     let v = a*x, group by i ]";

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_adaptive.json".to_string());
    let mut rows = Vec::new();

    // Size sweep across the broadcast budget: small operands are broadcast,
    // large ones fall back to the cheapest shuffling strategy.
    for n in [96usize, 384] {
        let mut s = adaptive_session();
        s.register_local_matrix("A", &dense_local(n, 300 + n as u64), TILE);
        s.register_local_matrix("B", &dense_local(n, 400 + n as u64), TILE);
        s.set_int("n", n as i64);
        rows.push(run(&format!("matmul_{n}"), &s, MUL_SRC));
    }

    // Mat-vec: the vector side always fits the budget, so the adaptive
    // planner runs it shuffle-free via broadcast.
    {
        let n = 384usize;
        let mut s = adaptive_session();
        s.register_local_matrix("A", &dense_local(n, 700), TILE);
        let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
        let v = tiled::TiledVector::from_local(s.spark(), &x, TILE, bench::ingest_partitions(&s));
        s.register_vector("V", v);
        s.set_int("n", n as i64);
        rows.push(run(&format!("matvec_{n}"), &s, MAT_VEC_SRC));
    }

    let mut json = String::from("{\"bench\":\"adaptive\",\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"strategy\":\"{}\",\"wall_ms\":{:.3},\"shuffle_bytes\":{}}}",
            r.name, r.strategy, r.wall_ms, r.shuffle_bytes
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
