//! Multi-tenant query-service load generator.
//!
//! Boots a [`service::QueryService`] with its TCP front end on an ephemeral
//! port, registers two shared matrices, and drives it with closed-loop
//! clients in three phases:
//!
//! 1. **warmup** — one pass over the query mix to populate the plan cache
//!    and materialize the shared blocks;
//! 2. **solo** — a single well-behaved tenant (`alice`) runs the mix alone,
//!    establishing the baseline latency distribution and the per-query
//!    result fingerprints;
//! 3. **contended** — three well-behaved tenants (`alice`, `bob`, `carol`)
//!    run the same closed-loop mix, one outstanding request each, while a
//!    noisy neighbor (`mallory`) floods the service from
//!    `NOISE_CONNECTIONS` parallel connections for the whole phase. Without
//!    fair scheduling mallory's waiters would FIFO-queue ahead of every
//!    well-behaved request; stride scheduling instead admits the tenant
//!    with the least accrued virtual time first.
//!
//! ```text
//! cargo run --release -p bench --bin serve            # writes BENCH_service.json
//! cargo run --release -p bench --bin serve -- out.json
//! ```
//!
//! Exit is nonzero (failing CI) unless
//! - every well-behaved tenant's per-query fingerprints under contention are
//!   bit-identical to alice's solo fingerprints, and
//! - alice's contended p99 is within `FAIRNESS_LIMIT` (3x) of her solo p99 —
//!   i.e. fair scheduling actually bounded the noisy neighbor's impact.

use rand::rngs::StdRng;
use rand::SeedableRng;
use service::net::{serve, Client};
use service::QueryService;
use std::collections::BTreeMap;
use std::time::Instant;
use tiled::LocalMatrix;

const N: usize = 96;
const TILE: usize = 16;
const SLOTS: usize = 1;
const ROUNDS: usize = 20;
const NOISE_CONNECTIONS: usize = 6;
/// Pause between a well-behaved tenant's requests: interactive users think,
/// floods don't. Keeps the three polite tenants from saturating the pool
/// against each other, which would swamp the noisy-neighbor signal.
const THINK_MILLIS: u64 = 12;
const FAIRNESS_LIMIT: f64 = 3.0;

const QUERIES: &[(&str, &str)] = &[
    ("scale", "tiled(n,n)[ ((i,j), a*2.0) | ((i,j),a) <- A ]"),
    (
        "add",
        "tiled(n,n)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]",
    ),
    (
        "rowsum",
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
    ),
    ("trace", "+/[ v | ((i,j),v) <- A, i == j ]"),
    (
        "matmul",
        "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k, \
         let v = a*b, group by (i,j) ]",
    ),
];

/// One closed-loop client pass: `rounds` rounds over the query mix,
/// returning per-request latencies (micros) and per-query fingerprints.
fn drive(
    addr: std::net::SocketAddr,
    tenant: &str,
    rounds: usize,
) -> (Vec<u64>, BTreeMap<String, String>) {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(rounds * QUERIES.len());
    let mut fingerprints = BTreeMap::new();
    for _ in 0..rounds {
        for (name, query) in QUERIES {
            let started = Instant::now();
            let reply = client
                .run(tenant, query)
                .expect("io")
                .unwrap_or_else(|e| panic!("{tenant}/{name} failed: {e}"));
            latencies.push(started.elapsed().as_micros() as u64);
            let fp = json_field(&reply, "fingerprint").expect("fingerprint in reply");
            fingerprints.insert((*name).to_string(), fp);
            std::thread::sleep(std::time::Duration::from_millis(THINK_MILLIS));
        }
    }
    (latencies, fingerprints)
}

/// Extract a top-level numeric/bool field from a flat JSON object.
fn json_field(json: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().to_string())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct TenantReport {
    tenant: String,
    requests: usize,
    p50_micros: u64,
    p99_micros: u64,
    throughput_qps: f64,
}

fn report(tenant: &str, mut latencies: Vec<u64>, wall_micros: u64) -> TenantReport {
    latencies.sort_unstable();
    TenantReport {
        tenant: tenant.to_string(),
        requests: latencies.len(),
        p50_micros: percentile(&latencies, 50.0),
        p99_micros: percentile(&latencies, 99.0),
        throughput_qps: latencies.len() as f64 / (wall_micros as f64 / 1e6),
    }
}

impl TenantReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"tenant\":\"{}\",\"requests\":{},\"p50_micros\":{},\"p99_micros\":{},\
             \"throughput_qps\":{:.2}}}",
            self.tenant, self.requests, self.p50_micros, self.p99_micros, self.throughput_qps
        )
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let svc = QueryService::builder()
        .workers(4)
        .executors(4)
        .storage_memory(256 << 20)
        .slots(SLOTS)
        .chaos_off()
        .build();
    let mut rng = StdRng::seed_from_u64(2021);
    let a = LocalMatrix::random(N, N, -1.0, 1.0, &mut rng);
    let b = LocalMatrix::random(N, N, -1.0, 1.0, &mut rng);
    svc.register_shared_matrix("A", &a, TILE)
        .expect("register A");
    svc.register_shared_matrix("B", &b, TILE)
        .expect("register B");
    svc.register_shared_int("n", N as i64);
    let server = serve(svc.clone(), ("127.0.0.1", 0)).expect("bind");
    let addr = server.addr();
    eprintln!("serving {} tenants mix on {addr}", 4);

    // Phase 1: warmup — compile every plan once, materialize shared blocks.
    let (_, _) = drive(addr, "alice", 1);

    // Phase 2: solo baseline.
    let solo_started = Instant::now();
    let (solo_lat, solo_fps) = drive(addr, "alice", ROUNDS);
    let solo_wall = solo_started.elapsed().as_micros() as u64;
    let solo = report("alice", solo_lat, solo_wall);
    eprintln!(
        "solo: {} requests, p50 {}us p99 {}us, {:.1} q/s",
        solo.requests, solo.p50_micros, solo.p99_micros, solo.throughput_qps
    );

    // Phase 3: contended — three well-behaved closed-loop tenants while the
    // noisy neighbor floods from NOISE_CONNECTIONS parallel connections for
    // the whole phase.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let contended_started = Instant::now();
    let noise_handles: Vec<_> = (0..NOISE_CONNECTIONS)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    for (name, query) in QUERIES {
                        let started = Instant::now();
                        client
                            .run("mallory", query)
                            .expect("io")
                            .unwrap_or_else(|e| panic!("mallory/{name} failed: {e}"));
                        latencies.push(started.elapsed().as_micros() as u64);
                    }
                }
                latencies
            })
        })
        .collect();
    // Let the flood accrue virtual time first: the well-behaved tenants
    // must arrive at an already-noisy service, not race it from zero.
    std::thread::sleep(std::time::Duration::from_millis(250));
    let handles: Vec<_> = ["alice", "bob", "carol"]
        .into_iter()
        .map(|tenant| {
            std::thread::spawn(move || {
                let (lat, fps) = drive(addr, tenant, ROUNDS);
                (tenant, lat, fps)
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    let contended_wall = contended_started.elapsed().as_micros() as u64;
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mallory_lat: Vec<u64> = noise_handles
        .into_iter()
        .flat_map(|h| h.join().expect("noise client"))
        .collect();
    let mut contended_reports = Vec::new();
    let mut contended_fps: Vec<(String, BTreeMap<String, String>)> = Vec::new();
    for (tenant, lat, fps) in results {
        contended_reports.push(report(tenant, lat, contended_wall));
        contended_fps.push((tenant.to_string(), fps));
    }
    contended_reports.push(report("mallory", mallory_lat, contended_wall));
    for r in &contended_reports {
        eprintln!(
            "contended {}: {} requests, p50 {}us p99 {}us, {:.1} q/s",
            r.tenant, r.requests, r.p50_micros, r.p99_micros, r.throughput_qps
        );
    }

    // Gate 1: bit-identical results — every well-behaved tenant's per-query
    // fingerprint under contention equals alice's solo fingerprint.
    let mut bit_identical = true;
    for (tenant, fps) in &contended_fps {
        for (name, fp) in fps {
            let solo_fp = solo_fps.get(name).expect("query in solo set");
            if fp != solo_fp {
                eprintln!("MISMATCH: {tenant}/{name} fingerprint {fp} != solo {solo_fp}");
                bit_identical = false;
            }
        }
    }

    // Gate 2: fairness — the noisy neighbor must not degrade alice's p99
    // beyond FAIRNESS_LIMIT x her solo p99.
    let alice = contended_reports
        .iter()
        .find(|r| r.tenant == "alice")
        .expect("alice report");
    let fairness_ratio = alice.p99_micros as f64 / solo.p99_micros.max(1) as f64;
    eprintln!(
        "fairness: alice p99 {}us contended vs {}us solo = {:.2}x (limit {FAIRNESS_LIMIT}x)",
        alice.p99_micros, solo.p99_micros, fairness_ratio
    );

    let (hits, misses, entries) = svc.plan_cache_stats();
    let pass = bit_identical && fairness_ratio <= FAIRNESS_LIMIT;

    let tenants_json: Vec<String> = contended_reports
        .iter()
        .map(TenantReport::to_json)
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"config\": {{\"n\": {N}, \"tile\": {TILE}, \
         \"slots\": {SLOTS}, \"rounds\": {ROUNDS}, \"clients\": 4, \
         \"noisy_tenant\": \"mallory\", \"noise_connections\": {NOISE_CONNECTIONS}}},\n  \
         \"queries\": [{queries}],\n  \
         \"solo\": {solo_json},\n  \
         \"contended\": {{\"wall_micros\": {contended_wall}, \"tenants\": [{tenants}]}},\n  \
         \"fairness_ratio\": {fairness_ratio:.3},\n  \"fairness_limit\": {FAIRNESS_LIMIT},\n  \
         \"plan_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"entries\": {entries}}},\n  \
         \"results_bit_identical\": {bit_identical},\n  \"pass\": {pass}\n}}\n",
        queries = QUERIES
            .iter()
            .map(|(name, _)| format!("\"{name}\""))
            .collect::<Vec<_>>()
            .join(", "),
        solo_json = solo.to_json(),
        tenants = tenants_json.join(", "),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");

    server.shutdown();
    if !pass {
        eprintln!("FAIL: service bench gates violated");
        std::process::exit(1);
    }
}
