//! Shared workload builders for the benchmark harness.
//!
//! The paper's evaluation (§6) runs three programs over tiled matrices —
//! addition, multiplication, and one gradient-descent iteration of matrix
//! factorization — comparing SAC-generated plans against Spark MLlib's
//! `BlockMatrix`. This module constructs those workloads, scaled from the
//! paper's cluster sizes (tiles of 1000², matrices to 40000²) down to
//! laptop sizes with the same *shapes*.

use mllib::BlockMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sac::{MatMulStrategy, Session};
use tiled::{LocalMatrix, TiledMatrix};

/// Default tile side for benchmark matrices (the paper used 1000).
pub const TILE: usize = 64;

/// Build a SAC session sized for benchmarking.
pub fn bench_session(strategy: MatMulStrategy) -> Session {
    Session::builder()
        .workers(std::thread::available_parallelism().map_or(4, |n| n.get()))
        .partitions(8)
        .matmul(strategy)
        .build()
}

/// A dense random `n x n` matrix with values in `[0, 10)` — the paper's
/// addition/multiplication operand distribution.
pub fn dense_local(n: usize, seed: u64) -> LocalMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    LocalMatrix::random(n, n, 0.0, 10.0, &mut rng)
}

/// The paper's factorization input: sparse `n x n`, 10% non-zero, integer
/// values in `0..=5`.
pub fn sparse_local(n: usize, seed: u64) -> LocalMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    LocalMatrix::sparse_random(n, n, 0.10, &mut rng)
}

/// Resolved ingest partition count: the session's configured count, or one
/// per worker when the config leaves it on automatic (0).
pub fn ingest_partitions(s: &Session) -> usize {
    match s.config().partitions {
        0 => s.spark().workers().max(1),
        p => p,
    }
}

/// Distribute a local matrix for SAC.
pub fn tiled_of(s: &Session, m: &LocalMatrix) -> TiledMatrix {
    TiledMatrix::from_local(s.spark(), m, TILE, ingest_partitions(s))
}

/// Distribute a local matrix for the MLlib baseline.
pub fn block_of(s: &Session, m: &LocalMatrix) -> BlockMatrix {
    BlockMatrix::from_local(s.spark(), m, TILE, ingest_partitions(s))
}

/// One MLlib-style factorization iteration, composed from `BlockMatrix`
/// library calls exactly as an MLlib user would write it:
///
/// ```text
/// E  = R  - P·Qᵀ
/// P' = (1 − γλ)·P + 2γ·(E·Q)
/// Q' = (1 − γλ)·Q + 2γ·(Eᵀ·P)
/// ```
pub fn mllib_factorization_step(
    r: &BlockMatrix,
    p: &BlockMatrix,
    q: &BlockMatrix,
    gamma: f64,
    lambda: f64,
) -> (BlockMatrix, BlockMatrix) {
    let e = r.subtract(&p.multiply(&q.transpose()));
    let p2 = p
        .scale(1.0 - gamma * lambda)
        .add(&e.multiply(q).scale(2.0 * gamma));
    let q2 = q
        .scale(1.0 - gamma * lambda)
        .add(&e.transpose().multiply(p).scale(2.0 * gamma));
    (p2, q2)
}

/// SAC factorization iteration (comprehension-compiled), re-exported for the
/// harness.
pub fn sac_factorization_step(
    s: &Session,
    r: &TiledMatrix,
    p: &TiledMatrix,
    q: &TiledMatrix,
    gamma: f64,
    lambda: f64,
) -> (TiledMatrix, TiledMatrix) {
    sac::linalg::factorization_step(s, r, p, q, gamma, lambda)
        .expect("factorization step must plan")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mllib_and_sac_factorization_agree() {
        let s = bench_session(MatMulStrategy::GroupByJoin);
        let n = 96;
        let r = sparse_local(n, 1);
        let p = dense_local_thin(n, 16, 2);
        let q = dense_local_thin(n, 16, 3);
        let (mp, mq) = mllib_factorization_step(
            &block_of(&s, &r),
            &block_of(&s, &p),
            &block_of(&s, &q),
            0.002,
            0.02,
        );
        let (sp, sq) = sac_factorization_step(
            &s,
            &tiled_of(&s, &r),
            &tiled_of(&s, &p),
            &tiled_of(&s, &q),
            0.002,
            0.02,
        );
        assert!(mp.to_local().max_abs_diff(&sp.to_local()) < 1e-9);
        assert!(mq.to_local().max_abs_diff(&sq.to_local()) < 1e-9);
    }

    fn dense_local_thin(n: usize, k: usize, seed: u64) -> LocalMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LocalMatrix::random(n, k, 0.0, 1.0, &mut rng)
    }
}
