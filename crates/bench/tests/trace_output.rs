//! End-to-end check of `figures -- b quick --trace`: the harness must write
//! a JSON event log that parses back into structured events.

use sparkline::events::{parse_events, to_json};
use sparkline::{Context, Event};

#[test]
fn figures_trace_writes_valid_json() {
    let exe = env!("CARGO_BIN_EXE_figures");
    let dir = std::env::temp_dir().join(format!("figures-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = std::process::Command::new(exe)
        .args(["b", "quick", "--trace"])
        .current_dir(&dir)
        .output()
        .expect("run figures");
    assert!(
        out.status.success(),
        "figures failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let path = dir.join("target/figures_trace_b.json");
    let json = std::fs::read_to_string(&path).expect("trace file written");
    let events = parse_events(&json).expect("trace file is valid event-log JSON");
    assert!(!events.is_empty(), "trace should contain events");
    // A traced multiplication run must include stage boundaries and shuffle
    // traffic from the contraction plans.
    assert!(events.iter().any(|e| matches!(e, Event::StageStart { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::ShuffleWrite { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::ShuffleRead { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

/// Cache events from a real persisted run survive the hand-rolled JSON
/// writer/parser round trip, exactly.
#[test]
fn cache_events_round_trip_through_event_log_json() {
    let c = Context::builder()
        .workers(2)
        .storage_memory(1 << 20)
        .build();
    c.trace();
    let d = c
        .parallelize((0..40i64).map(|i| (i % 4, i)).collect(), 4)
        .reduce_by_key(4, |a, b| a + b)
        .persist();
    d.collect();
    d.collect();
    let events = c.take_events();
    assert!(events.iter().any(|e| matches!(e, Event::CacheMiss { .. })));
    assert!(events.iter().any(|e| matches!(e, Event::CacheHit { .. })));
    let parsed = parse_events(&to_json(&events)).expect("cache events serialize as valid JSON");
    assert_eq!(parsed, events, "round trip must be lossless");
}
