//! Property tests over the language front-end:
//!
//! * pretty-printing any generated expression re-parses to the same AST;
//! * desugaring (rules 4–7) preserves semantics for generated group-by-free
//!   comprehensions;
//! * normalization preserves semantics for generated comprehensions with
//!   guards/lets over a fixed matrix environment.

use comp::ast::{BinOp, Comprehension, Expr, Pattern, Qualifier};
use comp::desugar::{desugar, eval_core};
use comp::eval::{eval_comprehension, Env};
use comp::normalize::normalize;
use comp::parser::parse_expr;
use comp::Value;
use proptest::prelude::*;

/// Generate arithmetic/boolean expressions over variables `x` and `y`.
fn arb_scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Int),
        Just(Expr::Var("x".into())),
        Just(Expr::Var("y".into())),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_arith_op())
                .prop_map(|(a, b, op)| { Expr::BinOp(op, Box::new(a), Box::new(b)) }),
            inner.clone().prop_map(|e| match e {
                // Mirror the parser's literal folding so the roundtrip is
                // exact.
                Expr::Int(n) => Expr::Int(-n),
                other => Expr::UnOp(comp::ast::UnOp::Neg, Box::new(other)),
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Tuple(vec![a, b])),
        ]
    })
}

fn arb_arith_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Eq),
    ]
}

/// Generate small group-by-free comprehensions over ranges.
fn arb_comprehension() -> impl Strategy<Value = Comprehension> {
    (
        1i64..6,
        1i64..6,
        arb_scalar_expr(),
        proptest::option::of(-10i64..10),
    )
        .prop_map(|(n, m, head, guard)| {
            let mut qualifiers = vec![
                Qualifier::Generator(
                    Pattern::Var("x".into()),
                    Expr::Range {
                        lo: Box::new(Expr::Int(0)),
                        hi: Box::new(Expr::Int(n)),
                        inclusive: false,
                    },
                ),
                Qualifier::Generator(
                    Pattern::Var("y".into()),
                    Expr::Range {
                        lo: Box::new(Expr::Int(0)),
                        hi: Box::new(Expr::Int(m)),
                        inclusive: false,
                    },
                ),
                Qualifier::Let(
                    Pattern::Var("z".into()),
                    Expr::BinOp(
                        BinOp::Add,
                        Box::new(Expr::Var("x".into())),
                        Box::new(Expr::Var("y".into())),
                    ),
                ),
            ];
            if let Some(g) = guard {
                qualifiers.push(Qualifier::Guard(Expr::BinOp(
                    BinOp::Ge,
                    Box::new(Expr::Var("z".into())),
                    Box::new(Expr::Int(g)),
                )));
            }
            Comprehension {
                head: Box::new(head),
                qualifiers,
            }
        })
}

/// Comparisons can yield booleans inside arithmetic; evaluation may fail on
/// ill-typed combinations — both sides must then fail identically.
fn eval_both(
    c: &Comprehension,
) -> (
    Result<Vec<Value>, comp::CompError>,
    Result<Vec<Value>, comp::CompError>,
) {
    let direct = eval_comprehension(c, &mut Env::new());
    let core = desugar(c).expect("group-by-free");
    let via_core = eval_core(&core, &mut Env::new());
    (direct, via_core)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pretty_print_reparses(e in arb_scalar_expr()) {
        let printed = format!("{e}");
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to re-parse: {err}"));
        prop_assert_eq!(e, reparsed, "printed form was `{}`", printed);
    }

    #[test]
    fn desugaring_agrees_with_direct_semantics(c in arb_comprehension()) {
        let (direct, via_core) = eval_both(&c);
        match (direct, via_core) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence: direct={a:?} core={b:?}"),
        }
    }

    #[test]
    fn normalization_preserves_semantics(c in arb_comprehension()) {
        let original = Expr::Comprehension(c);
        let normalized = normalize(original.clone());
        let a = comp::eval(&original, &mut Env::new());
        let b = comp::eval(&normalized, &mut Env::new());
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence: original={a:?} normalized={b:?}"),
        }
    }

    #[test]
    fn reductions_match_iterator_folds(xs in proptest::collection::vec(-50i64..50, 0..40)) {
        let list = Value::List(xs.iter().map(|&x| Value::Int(x)).collect());
        let mut env = Env::new();
        env.bind("L", list);
        let sum = comp::eval(&parse_expr("+/L").unwrap(), &mut env).unwrap();
        prop_assert_eq!(sum, Value::Int(xs.iter().sum()));
        if !xs.is_empty() {
            let mx = comp::eval(&parse_expr("max/L").unwrap(), &mut env).unwrap();
            prop_assert_eq!(mx, Value::Int(*xs.iter().max().unwrap()));
            let mn = comp::eval(&parse_expr("min/L").unwrap(), &mut env).unwrap();
            prop_assert_eq!(mn, Value::Int(*xs.iter().min().unwrap()));
        }
    }
}
