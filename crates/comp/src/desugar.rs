//! Desugaring rules (4)–(7) of Fig. 3: translate group-by-free
//! comprehensions into the core calculus of `flatMap` / `let` / `if` /
//! singleton, exactly as the paper (and Wadler's classic scheme) specifies:
//!
//! ```text
//! (4)  [ e1 | p <- e2, q ]  =  e2.flatMap(λp. [ e1 | q ])
//! (5)  [ e1 | let p = e2, q ]  =  let p = e2 in [ e1 | q ]
//! (6)  [ e1 | e2, q ]  =  if (e2) then [ e1 | q ] else Nil
//! (7)  [ e | ]  =  [ e ]
//! ```
//!
//! The core form is what the paper's algebra/optimizer consumes; here it
//! serves as an executable specification: `eval_core ∘ desugar` must equal
//! the direct comprehension semantics, which the tests check on the paper's
//! own examples.

use crate::ast::{Comprehension, Expr, Pattern, Qualifier};
use crate::errors::CompError;
use crate::eval::{eval, Env};
use crate::value::Value;

/// The core calculus after desugaring.
#[derive(Debug, Clone, PartialEq)]
pub enum Core {
    /// `source.flatMap(λ pattern. body)` — rule (4).
    FlatMap {
        pattern: Pattern,
        source: Expr,
        body: Box<Core>,
    },
    /// `let pattern = value in body` — rule (5).
    Let {
        pattern: Pattern,
        value: Expr,
        body: Box<Core>,
    },
    /// `if (cond) body else Nil` — rule (6).
    Filter { cond: Expr, body: Box<Core> },
    /// `[ e ]` — rule (7).
    Singleton(Expr),
}

impl Core {
    /// Count of `flatMap` nodes (used to check rule application).
    pub fn flat_map_depth(&self) -> usize {
        match self {
            Core::FlatMap { body, .. } => 1 + body.flat_map_depth(),
            Core::Let { body, .. } | Core::Filter { body, .. } => body.flat_map_depth(),
            Core::Singleton(_) => 0,
        }
    }
}

impl std::fmt::Display for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Core::FlatMap {
                pattern,
                source,
                body,
            } => write!(f, "{source}.flatMap(\\{pattern}. {body})"),
            Core::Let {
                pattern,
                value,
                body,
            } => write!(f, "let {pattern} = {value} in {body}"),
            Core::Filter { cond, body } => write!(f, "if ({cond}) {body} else Nil"),
            Core::Singleton(e) => write!(f, "[{e}]"),
        }
    }
}

/// Apply rules (4)–(7) to a group-by-free comprehension.
///
/// # Errors
/// If the comprehension contains a group-by qualifier (those desugar through
/// rule (11) instead; see [`mod@crate::eval`]).
pub fn desugar(c: &Comprehension) -> Result<Core, CompError> {
    desugar_quals(&c.qualifiers, &c.head)
}

fn desugar_quals(quals: &[Qualifier], head: &Expr) -> Result<Core, CompError> {
    match quals.split_first() {
        // Rule (7).
        None => Ok(Core::Singleton(head.clone())),
        // Rule (4).
        Some((Qualifier::Generator(p, e), rest)) => Ok(Core::FlatMap {
            pattern: p.clone(),
            source: e.clone(),
            body: Box::new(desugar_quals(rest, head)?),
        }),
        // Rule (5).
        Some((Qualifier::Let(p, e), rest)) => Ok(Core::Let {
            pattern: p.clone(),
            value: e.clone(),
            body: Box::new(desugar_quals(rest, head)?),
        }),
        // Rule (6).
        Some((Qualifier::Guard(e), rest)) => Ok(Core::Filter {
            cond: e.clone(),
            body: Box::new(desugar_quals(rest, head)?),
        }),
        Some((Qualifier::GroupBy(_, _), _)) => Err(CompError::eval(
            "rules (4)-(7) apply to group-by-free comprehensions; \
             group-by desugars through rule (11)",
        )),
    }
}

/// Evaluate a core term to the list it denotes.
pub fn eval_core(core: &Core, env: &mut Env) -> Result<Vec<Value>, CompError> {
    match core {
        Core::Singleton(e) => Ok(vec![eval(e, env)?]),
        Core::FlatMap {
            pattern,
            source,
            body,
        } => {
            let items = eval(source, env)?.into_list()?;
            let mut out = Vec::new();
            for item in items {
                let mark = env.mark();
                env.bind_pattern(pattern, item)?;
                out.extend(eval_core(body, env)?);
                env.reset(mark);
            }
            Ok(out)
        }
        Core::Let {
            pattern,
            value,
            body,
        } => {
            let v = eval(value, env)?;
            let mark = env.mark();
            env.bind_pattern(pattern, v)?;
            let out = eval_core(body, env)?;
            env.reset(mark);
            Ok(out)
        }
        Core::Filter { cond, body } => {
            if eval(cond, env)?.as_bool()? {
                eval_core(body, env)
            } else {
                Ok(Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_comprehension;
    use crate::parser::parse_expr;

    fn as_comprehension(src: &str) -> Comprehension {
        match parse_expr(src).unwrap() {
            Expr::Comprehension(c) => c,
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    fn sample_env() -> Env {
        let mut env = Env::new();
        let matrix = Value::List(
            (0..3)
                .flat_map(|i| {
                    (0..3).map(move |j| {
                        Value::pair(
                            Value::pair(Value::Int(i), Value::Int(j)),
                            Value::Float((i * 3 + j) as f64),
                        )
                    })
                })
                .collect(),
        );
        env.bind("M", matrix.clone());
        env.bind("N", matrix);
        env
    }

    /// `eval_core ∘ desugar` must equal the direct comprehension semantics.
    #[test]
    fn desugaring_preserves_semantics() {
        for src in [
            "[ v | ((i,j),v) <- M ]",
            "[ (i, v * 2.0) | ((i,j),v) <- M, i == j ]",
            "[ (i, j, a, b) | ((i,j),a) <- M, ((ii,jj),b) <- N, ii == i, jj == j ]",
            "[ x + y | x <- 0 until 4, let y = x * x, y > 2 ]",
            "[ x | x <- 0 until 10, x % 2 == 0, x > 3 ]",
        ] {
            let c = as_comprehension(src);
            let core = desugar(&c).unwrap();
            let mut env1 = sample_env();
            let mut env2 = sample_env();
            assert_eq!(
                eval_core(&core, &mut env1).unwrap(),
                eval_comprehension(&c, &mut env2).unwrap(),
                "desugaring changed the meaning of {src}"
            );
        }
    }

    #[test]
    fn rule4_generator_becomes_flat_map() {
        let c = as_comprehension("[ v | ((i,j),v) <- M ]");
        let core = desugar(&c).unwrap();
        assert!(matches!(core, Core::FlatMap { .. }));
        assert_eq!(core.flat_map_depth(), 1);
    }

    #[test]
    fn rule5_let_and_rule6_guard_nest_in_order() {
        let c = as_comprehension("[ y | x <- 0 until 3, let y = x + 1, y > 1 ]");
        let core = desugar(&c).unwrap();
        let Core::FlatMap { body, .. } = core else {
            panic!()
        };
        let Core::Let { body, .. } = *body else {
            panic!()
        };
        assert!(matches!(*body, Core::Filter { .. }));
    }

    #[test]
    fn rule7_empty_qualifiers_is_singleton() {
        let c = Comprehension {
            head: Box::new(Expr::Int(42)),
            qualifiers: vec![],
        };
        assert_eq!(desugar(&c).unwrap(), Core::Singleton(Expr::Int(42)));
        let mut env = Env::new();
        assert_eq!(
            eval_core(&desugar(&c).unwrap(), &mut env).unwrap(),
            vec![Value::Int(42)]
        );
    }

    #[test]
    fn group_by_is_rejected() {
        let c = as_comprehension("[ (i, +/v) | ((i,j),v) <- M, group by i ]");
        assert!(desugar(&c).is_err());
    }

    #[test]
    fn display_is_readable() {
        let c = as_comprehension("[ v | (k, v) <- M, k == 1 ]");
        let core = desugar(&c).unwrap();
        let s = format!("{core}");
        assert!(s.contains(".flatMap("), "{s}");
        assert!(s.contains("if ("), "{s}");
    }
}
