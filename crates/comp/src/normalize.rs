//! Source-to-source normalization rules from the paper.
//!
//! * **Rule (3)** — flatten nested comprehensions:
//!   `[e1 | q1, p <- [e2 | q3], q2] = [e1 | q1, q3', let p = e2', q2]`
//!   (with α-renaming of `q3`'s binders to prevent capture).
//! * **§2 array-indexing removal** — `V[e1,...,en]` inside a comprehension
//!   becomes a generator `((k1,...,kn), k0) <- V` plus guards `k1 == e1, ...`,
//!   with the index expression replaced by `k0`.
//! * **§2 index-range fusion** — a guard `v == e` where `v` is bound by an
//!   integer-range generator is replaced by `let v = e` plus the range's
//!   bound checks, fusing two index loops into one.
//! * **Rule (15)** — group-by elimination when the group-by key is provably
//!   unique (the key pattern is exactly the key of a single association-list
//!   generator): groups are singletons, so `⊕/v` collapses to `v`.
//!
//! Every rule is semantics-preserving; the property tests check each rewrite
//! against the reference evaluator on random inputs.

use crate::ast::*;
use std::collections::BTreeSet;

/// Apply all normalization rules to fixpoint, recursively.
pub fn normalize(expr: Expr) -> Expr {
    let mut e = expr;
    for _ in 0..16 {
        let next = normalize_once(e.clone());
        if next == e {
            return e;
        }
        e = next;
    }
    e
}

fn normalize_once(expr: Expr) -> Expr {
    let expr = map_subexprs(expr, &mut normalize_once);
    match expr {
        Expr::Comprehension(c) => {
            let c = flatten_nested(c);
            let c = lift_indexing(c);
            let c = fuse_ranges(c);
            let c = eliminate_injective_group_by(c);
            Expr::Comprehension(c)
        }
        other => other,
    }
}

/// Apply `f` to each direct sub-expression (not descending into the
/// comprehension rewrites themselves).
fn map_subexprs(e: Expr, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Var(_) => e,
        Expr::Tuple(es) => Expr::Tuple(es.into_iter().map(&mut *f).collect()),
        Expr::Comprehension(c) => Expr::Comprehension(Comprehension {
            head: Box::new(f(*c.head)),
            qualifiers: c
                .qualifiers
                .into_iter()
                .map(|q| match q {
                    Qualifier::Generator(p, e) => Qualifier::Generator(p, f(e)),
                    Qualifier::Let(p, e) => Qualifier::Let(p, f(e)),
                    Qualifier::Guard(e) => Qualifier::Guard(f(e)),
                    Qualifier::GroupBy(p, k) => Qualifier::GroupBy(p, k.map(&mut *f)),
                })
                .collect(),
        }),
        Expr::Reduce(m, e) => Expr::Reduce(m, Box::new(f(*e))),
        Expr::BinOp(op, a, b) => Expr::BinOp(op, Box::new(f(*a)), Box::new(f(*b))),
        Expr::UnOp(op, a) => Expr::UnOp(op, Box::new(f(*a))),
        Expr::Index(b, idx) => Expr::Index(Box::new(f(*b)), idx.into_iter().map(&mut *f).collect()),
        Expr::Call(name, args) => Expr::Call(name, args.into_iter().map(&mut *f).collect()),
        Expr::Field(b, field) => Expr::Field(Box::new(f(*b)), field),
        Expr::Range { lo, hi, inclusive } => Expr::Range {
            lo: Box::new(f(*lo)),
            hi: Box::new(f(*hi)),
            inclusive,
        },
        Expr::If(c, t, e2) => Expr::If(Box::new(f(*c)), Box::new(f(*t)), Box::new(f(*e2))),
        Expr::Build {
            builder,
            args,
            body,
        } => Expr::Build {
            builder,
            args: args.into_iter().map(&mut *f).collect(),
            body: Box::new(f(*body)),
        },
    }
}

/// Rule (3): inline a generator whose source is itself a group-by-free
/// comprehension.
fn flatten_nested(c: Comprehension) -> Comprehension {
    let mut out: Vec<Qualifier> = Vec::new();
    let mut counter = 0usize;
    for q in c.qualifiers {
        match q {
            Qualifier::Generator(p, Expr::Comprehension(inner))
                if !inner
                    .qualifiers
                    .iter()
                    .any(|q| matches!(q, Qualifier::GroupBy(_, _))) =>
            {
                // α-rename the inner binders to fresh names.
                let inner = alpha_rename(inner, &mut counter);
                out.extend(inner.qualifiers);
                out.push(Qualifier::Let(p, *inner.head));
            }
            other => out.push(other),
        }
    }
    Comprehension {
        head: c.head,
        qualifiers: out,
    }
}

/// Rename every variable bound inside `c` to a fresh `%rN` name.
fn alpha_rename(c: Comprehension, counter: &mut usize) -> Comprehension {
    let mut mapping: Vec<(String, String)> = Vec::new();
    let mut rename_pat = |p: &Pattern, mapping: &mut Vec<(String, String)>| -> Pattern {
        fn go(p: &Pattern, counter: &mut usize, mapping: &mut Vec<(String, String)>) -> Pattern {
            match p {
                Pattern::Wildcard => Pattern::Wildcard,
                Pattern::Var(v) => {
                    *counter += 1;
                    let fresh = format!("%r{counter}");
                    mapping.push((v.clone(), fresh.clone()));
                    Pattern::Var(fresh)
                }
                Pattern::Tuple(ps) => {
                    Pattern::Tuple(ps.iter().map(|p| go(p, counter, mapping)).collect())
                }
            }
        }
        go(p, counter, mapping)
    };
    let qualifiers: Vec<Qualifier> = c
        .qualifiers
        .into_iter()
        .map(|q| match q {
            Qualifier::Generator(p, e) => {
                let e = rename_vars(e, &mapping);
                Qualifier::Generator(rename_pat(&p, &mut mapping), e)
            }
            Qualifier::Let(p, e) => {
                let e = rename_vars(e, &mapping);
                Qualifier::Let(rename_pat(&p, &mut mapping), e)
            }
            Qualifier::Guard(e) => Qualifier::Guard(rename_vars(e, &mapping)),
            Qualifier::GroupBy(p, k) => {
                let k = k.map(|e| rename_vars(e, &mapping));
                Qualifier::GroupBy(rename_pat(&p, &mut mapping), k)
            }
        })
        .collect();
    let head = rename_vars(*c.head, &mapping);
    Comprehension {
        head: Box::new(head),
        qualifiers,
    }
}

fn rename_vars(e: Expr, mapping: &[(String, String)]) -> Expr {
    match e {
        Expr::Var(v) => {
            // Innermost (latest) mapping wins.
            match mapping.iter().rev().find(|(from, _)| *from == v) {
                Some((_, to)) => Expr::Var(to.clone()),
                None => Expr::Var(v),
            }
        }
        other => map_subexprs(other, &mut |x| rename_vars(x, mapping)),
    }
}

/// §2: replace array indexing `V[e...]` with a generator over `V` plus
/// equality guards. Applied to guard/let qualifiers and, when the
/// comprehension has no group-by, to the head.
fn lift_indexing(c: Comprehension) -> Comprehension {
    let has_group_by = c
        .qualifiers
        .iter()
        .any(|q| matches!(q, Qualifier::GroupBy(_, _)));
    let mut counter = 0usize;
    let mut added: Vec<Qualifier> = Vec::new();
    let mut qualifiers: Vec<Qualifier> = Vec::new();

    // Variables bound by generators in this comprehension: indexing into
    // those is not "array indexing into a stored array" — only free arrays
    // (registered storages) are lifted.
    let mut bound: BTreeSet<String> = BTreeSet::new();
    for q in &c.qualifiers {
        if let Qualifier::Generator(p, _) | Qualifier::Let(p, _) = q {
            bound.extend(p.vars());
        }
    }

    for q in c.qualifiers {
        let q = match q {
            Qualifier::Guard(e) => {
                Qualifier::Guard(extract_indexing(e, &bound, &mut counter, &mut added))
            }
            Qualifier::Let(p, e) => {
                Qualifier::Let(p, extract_indexing(e, &bound, &mut counter, &mut added))
            }
            other => other,
        };
        qualifiers.push(q);
    }
    let head = if has_group_by {
        *c.head
    } else {
        extract_indexing(*c.head, &bound, &mut counter, &mut added)
    };
    // New generators and guards go before any group-by.
    let gpos = qualifiers
        .iter()
        .position(|q| matches!(q, Qualifier::GroupBy(_, _)))
        .unwrap_or(qualifiers.len());
    for (off, q) in added.into_iter().enumerate() {
        qualifiers.insert(gpos + off, q);
    }
    Comprehension {
        head: Box::new(head),
        qualifiers,
    }
}

fn extract_indexing(
    e: Expr,
    bound: &BTreeSet<String>,
    counter: &mut usize,
    added: &mut Vec<Qualifier>,
) -> Expr {
    match e {
        Expr::Index(base, idx) => {
            let idx: Vec<Expr> = idx
                .into_iter()
                .map(|i| extract_indexing(i, bound, counter, added))
                .collect();
            match *base {
                Expr::Var(v) if !bound.contains(&v) => {
                    *counter += 1;
                    let kv = format!("%x{counter}");
                    let key_vars: Vec<String> =
                        (0..idx.len()).map(|d| format!("%i{counter}_{d}")).collect();
                    let key_pat = if key_vars.len() == 1 {
                        Pattern::Var(key_vars[0].clone())
                    } else {
                        Pattern::Tuple(key_vars.iter().cloned().map(Pattern::Var).collect())
                    };
                    added.push(Qualifier::Generator(
                        Pattern::Tuple(vec![key_pat, Pattern::Var(kv.clone())]),
                        Expr::Var(v),
                    ));
                    for (kvar, ie) in key_vars.iter().zip(idx) {
                        added.push(Qualifier::Guard(Expr::BinOp(
                            BinOp::Eq,
                            Box::new(Expr::Var(kvar.clone())),
                            Box::new(ie),
                        )));
                    }
                    Expr::Var(kv)
                }
                other => Expr::Index(Box::new(other), idx),
            }
        }
        // Do not descend into nested comprehensions (their own pass handles
        // them).
        Expr::Comprehension(_) => e,
        other => map_subexprs(other, &mut |x| extract_indexing(x, bound, counter, added)),
    }
}

/// §2: fuse an integer-range generator with an equality guard on its
/// variable: `v <- lo until hi, ..., v == e` becomes
/// `let v = e, lo <= v, v < hi` when `e` does not depend on `v`.
fn fuse_ranges(c: Comprehension) -> Comprehension {
    // Find a guard `a == b` where one side is a var bound by a Range
    // generator and the other side's free vars are all bound before that
    // generator.
    let quals = &c.qualifiers;
    for (gi, guard) in quals.iter().enumerate() {
        let Qualifier::Guard(Expr::BinOp(BinOp::Eq, lhs, rhs)) = guard else {
            continue;
        };
        for (var, other) in [(lhs, rhs), (rhs, lhs)] {
            let Expr::Var(v) = var.as_ref() else { continue };
            // Locate the generator binding `v` to a range.
            let Some(pos) = quals[..gi].iter().position(|q|

                matches!(q, Qualifier::Generator(Pattern::Var(pv), Expr::Range { .. }) if pv == v))
            else {
                continue;
            };
            // `other` must be fully bound before the range generator.
            let bound_before: BTreeSet<String> = quals[..pos]
                .iter()
                .flat_map(|q| match q {
                    Qualifier::Generator(p, _) | Qualifier::Let(p, _) => p.vars(),
                    _ => Vec::new(),
                })
                .collect();
            if !other.free_vars().iter().all(|fv| bound_before.contains(fv)) {
                continue;
            }
            let Qualifier::Generator(_, Expr::Range { lo, hi, inclusive }) = &quals[pos] else {
                unreachable!()
            };
            let mut new_quals = quals.clone();
            // Replace the guard position with bound checks and the generator
            // with a let.
            new_quals[gi] = Qualifier::Guard(Expr::BinOp(
                if *inclusive { BinOp::Le } else { BinOp::Lt },
                Box::new(Expr::Var(v.clone())),
                hi.clone(),
            ));
            new_quals.insert(
                gi,
                Qualifier::Guard(Expr::BinOp(
                    BinOp::Ge,
                    Box::new(Expr::Var(v.clone())),
                    lo.clone(),
                )),
            );
            new_quals[pos] = Qualifier::Let(Pattern::Var(v.clone()), (**other).clone());
            return Comprehension {
                head: c.head,
                qualifiers: new_quals,
            };
        }
    }
    c
}

/// Rule (15): a group-by whose key pattern is exactly the key pattern of a
/// single association-list generator is injective — every group is a
/// singleton — so the group-by can be removed. Lifted variables appear as
/// `⊕/v` (→ `v`), `count(v)` (→ `1`), or `v.length` (→ `1`).
fn eliminate_injective_group_by(c: Comprehension) -> Comprehension {
    let Some(gpos) = c
        .qualifiers
        .iter()
        .position(|q| matches!(q, Qualifier::GroupBy(_, _)))
    else {
        return c;
    };
    let Qualifier::GroupBy(key_pat, key_expr) = &c.qualifiers[gpos] else {
        unreachable!()
    };
    if key_expr.is_some() {
        return c;
    }
    let key_vars: Vec<String> = key_pat.vars();
    if key_vars.is_empty() {
        return c;
    }

    // The generators before the group-by. Exactly one, and its element
    // pattern must be (key_pattern, value) with the key pattern binding
    // exactly the group-by key vars — then keys are unique (association
    // lists map indices to values uniquely).
    let generators: Vec<&Qualifier> = c.qualifiers[..gpos]
        .iter()
        .filter(|q| matches!(q, Qualifier::Generator(_, _)))
        .collect();
    if generators.len() != 1 {
        return c;
    }
    let Qualifier::Generator(p, src) = generators[0] else {
        unreachable!()
    };
    // Ranges are also unique-key sources, but the common case is the
    // association-list pattern ((i,j), v).
    if matches!(src, Expr::Range { .. }) {
        return c;
    }
    let Pattern::Tuple(parts) = p else { return c };
    if parts.len() != 2 {
        return c;
    }
    let gen_key_vars = parts[0].vars();
    if gen_key_vars != key_vars {
        return c;
    }

    // Lifted variables: everything local except the keys.
    let lifted: Vec<String> = c.qualifiers[..gpos]
        .iter()
        .flat_map(|q| match q {
            Qualifier::Generator(p, _) | Qualifier::Let(p, _) => p.vars(),
            _ => Vec::new(),
        })
        .filter(|v| !key_vars.contains(v))
        .collect();

    // All uses of lifted vars (in head and post-group-by qualifiers) must be
    // reducible in singleton groups.
    let mut exprs: Vec<&Expr> = vec![&c.head];
    for q in &c.qualifiers[gpos + 1..] {
        match q {
            Qualifier::Generator(_, e) | Qualifier::Let(_, e) | Qualifier::Guard(e) => {
                exprs.push(e)
            }
            Qualifier::GroupBy(_, Some(e)) => exprs.push(e),
            Qualifier::GroupBy(_, None) => {}
        }
    }
    if !exprs.iter().all(|e| reducible_uses_only(e, &lifted)) {
        return c;
    }

    // Rewrite: drop the group-by; ⊕/v → v, count(v)/v.length → 1.
    let rewrite = |e: Expr| -> Expr { collapse_singleton_aggregates(e, &lifted) };
    let mut qualifiers: Vec<Qualifier> = Vec::new();
    for (i, q) in c.qualifiers.into_iter().enumerate() {
        if i == gpos {
            continue;
        }
        qualifiers.push(match q {
            Qualifier::Generator(p, e) => Qualifier::Generator(p, rewrite(e)),
            Qualifier::Let(p, e) => Qualifier::Let(p, rewrite(e)),
            Qualifier::Guard(e) => Qualifier::Guard(rewrite(e)),
            Qualifier::GroupBy(p, k) => Qualifier::GroupBy(p, k.map(rewrite)),
        });
    }
    Comprehension {
        head: Box::new(rewrite(*c.head)),
        qualifiers,
    }
}

/// True if every occurrence of a lifted variable in `e` is under a Reduce,
/// `count(...)`, or `.length`.
fn reducible_uses_only(e: &Expr, lifted: &[String]) -> bool {
    match e {
        Expr::Var(v) => !lifted.contains(v),
        Expr::Reduce(_, inner) => {
            if let Expr::Var(_) = inner.as_ref() {
                true
            } else {
                reducible_uses_only(inner, lifted)
            }
        }
        Expr::Call(f, args) if f == "count" && args.len() == 1 => {
            matches!(&args[0], Expr::Var(_)) || reducible_uses_only(&args[0], lifted)
        }
        Expr::Field(b, f) if f == "length" => {
            matches!(b.as_ref(), Expr::Var(_)) || reducible_uses_only(b, lifted)
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Str(_) => true,
        Expr::Tuple(es) | Expr::Call(_, es) => es.iter().all(|x| reducible_uses_only(x, lifted)),
        Expr::BinOp(_, a, b) => reducible_uses_only(a, lifted) && reducible_uses_only(b, lifted),
        Expr::UnOp(_, a) => reducible_uses_only(a, lifted),
        Expr::Index(b, idx) => {
            reducible_uses_only(b, lifted) && idx.iter().all(|x| reducible_uses_only(x, lifted))
        }
        Expr::Field(b, _) => reducible_uses_only(b, lifted),
        Expr::Range { lo, hi, .. } => {
            reducible_uses_only(lo, lifted) && reducible_uses_only(hi, lifted)
        }
        Expr::If(c, t, f) => {
            reducible_uses_only(c, lifted)
                && reducible_uses_only(t, lifted)
                && reducible_uses_only(f, lifted)
        }
        Expr::Build { args, body, .. } => {
            args.iter().all(|x| reducible_uses_only(x, lifted)) && reducible_uses_only(body, lifted)
        }
        // Conservative for nested comprehensions.
        Expr::Comprehension(c) => {
            let fv = Expr::Comprehension(c.clone()).free_vars();
            lifted.iter().all(|v| !fv.contains(v))
        }
    }
}

/// `⊕/v → v`, `count(v) → 1`, `v.length → 1` for lifted `v` in singleton
/// groups.
fn collapse_singleton_aggregates(e: Expr, lifted: &[String]) -> Expr {
    match e {
        Expr::Reduce(_, inner) => match *inner {
            Expr::Var(v) if lifted.contains(&v) => Expr::Var(v),
            other => Expr::Reduce(
                Monoid::Sum,
                Box::new(collapse_singleton_aggregates(other, lifted)),
            ),
        },
        Expr::Call(f, args)
            if f == "count"
                && args.len() == 1
                && matches!(&args[0], Expr::Var(v) if lifted.contains(v)) =>
        {
            Expr::Int(1)
        }
        Expr::Field(b, f)
            if f == "length" && matches!(b.as_ref(), Expr::Var(v) if lifted.contains(v)) =>
        {
            Expr::Int(1)
        }
        other => map_subexprs(other, &mut |x| collapse_singleton_aggregates(x, lifted)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::parser::parse_expr;
    use crate::value::Value;

    fn matrix_value(rows: usize, cols: usize) -> Value {
        let mut out = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                out.push(Value::pair(
                    Value::pair(Value::Int(i as i64), Value::Int(j as i64)),
                    Value::Float((i * cols + j) as f64),
                ));
            }
        }
        Value::List(out)
    }

    fn eval_with_m(e: &Expr) -> Value {
        let mut env = Env::new();
        env.bind("M", matrix_value(3, 3));
        env.bind("N", matrix_value(3, 3));
        env.bind("n", Value::Int(3));
        env.bind("m", Value::Int(3));
        eval(e, &mut env).unwrap()
    }

    #[test]
    fn rule3_flattens_nested_generator() {
        let nested = parse_expr("[ x + 1 | x <- [ v * 2 | ((i,j),v) <- M ] ]").unwrap();
        let flat = normalize(nested.clone());
        // One comprehension, no nested generator sources.
        let Expr::Comprehension(c) = &flat else {
            panic!()
        };
        assert!(c
            .qualifiers
            .iter()
            .all(|q| !matches!(q, Qualifier::Generator(_, Expr::Comprehension(_)))));
        assert_eq!(eval_with_m(&nested), eval_with_m(&flat));
    }

    #[test]
    fn rule3_renames_to_avoid_capture() {
        // Outer x would capture inner x without renaming.
        let nested = parse_expr("[ (x, y) | x <- [ x * 2 | (x, v) <- A ], y <- B ]").unwrap();
        let flat = normalize(nested.clone());
        let mut env = Env::new();
        env.bind(
            "A",
            Value::List(vec![
                Value::pair(Value::Int(1), Value::Int(0)),
                Value::pair(Value::Int(5), Value::Int(0)),
            ]),
        );
        env.bind("B", Value::List(vec![Value::Int(7)]));
        assert_eq!(
            eval(&nested, &mut env).unwrap(),
            eval(&flat, &mut env).unwrap()
        );
    }

    #[test]
    fn indexing_becomes_generator_and_guards() {
        let e = parse_expr("matrix(n,m)[ ((i,j), a + N[i,j]) | ((i,j),a) <- M ]").unwrap();
        let n = normalize(e.clone());
        let Expr::Build { body, .. } = &n else {
            panic!()
        };
        let Expr::Comprehension(c) = body.as_ref() else {
            panic!()
        };
        // Original generator + added generator over N + two guards.
        let gens = c
            .qualifiers
            .iter()
            .filter(|q| matches!(q, Qualifier::Generator(_, _)))
            .count();
        assert_eq!(gens, 2, "indexing must become a generator: {c:?}");
        assert_eq!(eval_with_m(&e), eval_with_m(&n));
    }

    #[test]
    fn range_fusion_preserves_semantics() {
        let e = parse_expr("[ (i, j) | i <- 0 until 5, j <- 0 until 7, j == i + 1 ]").unwrap();
        let n = normalize(e.clone());
        let Expr::Comprehension(c) = &n else { panic!() };
        // The j range generator must be gone (replaced by a let).
        let range_gens = c
            .qualifiers
            .iter()
            .filter(|q| matches!(q, Qualifier::Generator(_, Expr::Range { .. })))
            .count();
        assert_eq!(range_gens, 1, "ranges must fuse: {c:?}");
        let mut env = Env::new();
        assert_eq!(eval(&e, &mut env).unwrap(), eval(&n, &mut env).unwrap());
    }

    #[test]
    fn injective_group_by_is_eliminated() {
        // Map over a matrix grouped by its own unique key: groups are
        // singletons.
        let e = parse_expr("[ ((i,j), +/v) | ((i,j),v) <- M, group by (i,j) ]").unwrap();
        let n = normalize(e.clone());
        let Expr::Comprehension(c) = &n else { panic!() };
        assert!(
            !c.qualifiers
                .iter()
                .any(|q| matches!(q, Qualifier::GroupBy(_, _))),
            "injective group-by must be removed: {c:?}"
        );
        assert_eq!(eval_with_m(&e), eval_with_m(&n));
    }

    #[test]
    fn non_injective_group_by_is_kept() {
        let e = parse_expr("[ (i, +/v) | ((i,j),v) <- M, group by i ]").unwrap();
        let n = normalize(e.clone());
        let Expr::Comprehension(c) = &n else { panic!() };
        assert!(c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::GroupBy(_, _))));
        assert_eq!(eval_with_m(&e), eval_with_m(&n));
    }

    #[test]
    fn join_group_by_is_kept() {
        // Matmul's group-by must not be eliminated (two generators).
        let e = parse_expr(
            "[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N, kk == k, \
             let v = a*b, group by (i,j) ]",
        )
        .unwrap();
        let n = normalize(e.clone());
        let Expr::Comprehension(c) = &n else { panic!() };
        assert!(c
            .qualifiers
            .iter()
            .any(|q| matches!(q, Qualifier::GroupBy(_, _))));
        assert_eq!(eval_with_m(&e), eval_with_m(&n));
    }

    #[test]
    fn normalization_is_idempotent() {
        for src in [
            "[ (i, +/m) | ((i,j),m) <- M, group by i ]",
            "matrix(n,m)[ ((i,j), a + N[i,j]) | ((i,j),a) <- M ]",
            "[ (i, j) | i <- 0 until 5, j <- 0 until 7, j == i + 1 ]",
        ] {
            let once = normalize(parse_expr(src).unwrap());
            let twice = normalize(once.clone());
            assert_eq!(once, twice, "normalize must be idempotent for {src}");
        }
    }
}
