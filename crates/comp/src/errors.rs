//! Error types for the comprehension front-end.

use std::fmt;

/// An error from lexing, parsing, type checking, or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompError {
    /// Which phase produced the error.
    pub phase: Phase,
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source, when known.
    pub offset: Option<usize>,
}

/// Compilation phase that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Type,
    Eval,
    Plan,
}

impl CompError {
    pub fn lex(message: impl Into<String>, offset: usize) -> Self {
        CompError {
            phase: Phase::Lex,
            message: message.into(),
            offset: Some(offset),
        }
    }

    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        CompError {
            phase: Phase::Parse,
            message: message.into(),
            offset: Some(offset),
        }
    }

    pub fn typing(message: impl Into<String>) -> Self {
        CompError {
            phase: Phase::Type,
            message: message.into(),
            offset: None,
        }
    }

    pub fn eval(message: impl Into<String>) -> Self {
        CompError {
            phase: Phase::Eval,
            message: message.into(),
            offset: None,
        }
    }

    pub fn plan(message: impl Into<String>) -> Self {
        CompError {
            phase: Phase::Plan,
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for CompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
            Phase::Eval => "eval",
            Phase::Plan => "plan",
        };
        match self.offset {
            Some(o) => write!(f, "{phase} error at byte {o}: {}", self.message),
            None => write!(f, "{phase} error: {}", self.message),
        }
    }
}

impl std::error::Error for CompError {}
